"""Admission control, backpressure, and weighted fair-share dispatch.

The controller is the serving tier's single synchronization point: it
owns the per-tenant queues, the global depth bound, the coalescing index
and the stride scheduler, all under one lock, so every ordering decision
the service makes is taken atomically.

Backpressure is *refusal with guidance*, not blocking: a submission over
the tenant or global bound raises :class:`~repro.errors.QueueFull`
carrying ``retry_after_s`` — the controller's estimate of when capacity
frees, derived from an EWMA of observed service times and the depth of
work ahead — so clients implement retry loops without guessing.

Dispatch order under contention is stride scheduling: each tenant
advances a virtual-time "pass" by ``stride = K / weight`` per dispatch
and the ready tenant with the smallest pass goes next, which converges
to bandwidth proportional to weight while staying strictly
deterministic (ties break on tenant name).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from ..errors import QueueFull, ServeError
from ..trace import get_tracer
from .quota import TenantQuota, TenantState

__all__ = ["Request", "AdmissionController", "trace_count"]

#: Request lifecycle states (guarded by the controller lock).
QUEUED, RUNNING, DONE = "queued", "running", "done"


def trace_count(name: str, delta: float = 1.0) -> None:
    """Bump a serving-tier trace counter if tracing is enabled."""
    tracer = get_tracer()
    if tracer is not None:
        tracer.counter(name, delta=delta)


class Request:
    """One admitted unit of work (and every future fanned onto it).

    ``futures[0]`` is the *leader* — the submission that created the
    request and whose tenant is charged for queue depth and inflight
    accounting.  Later identical submissions attach as followers via the
    coalescing index; on success every future receives the shared
    result, on failure only the leader sees the error and followers are
    resubmitted privately (a follower must never inherit another
    tenant's failure).
    """

    __slots__ = (
        "kind", "label", "key", "tenant_name", "futures", "payload",
        "redispatches", "state",
    )

    def __init__(self, *, kind: str, label: str, key, tenant_name: str,
                 future, payload: dict) -> None:
        self.kind = kind
        self.label = label
        self.key = key
        self.tenant_name = tenant_name
        self.futures = [future]
        self.payload = payload
        self.redispatches = 0
        self.state = QUEUED

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Request {self.kind}:{self.label!r} tenant={self.tenant_name} "
            f"waiters={len(self.futures)} ({self.state})>"
        )


class AdmissionController:
    """Queues, quotas, coalescing index and stride scheduler in one lock."""

    #: EWMA smoothing for observed service times (new sample weight).
    _EWMA_ALPHA = 0.2

    def __init__(self, *, global_max_queued: int = 256,
                 dispatchers: int = 1,
                 default_quota: Optional[TenantQuota] = None) -> None:
        if global_max_queued < 1:
            raise ServeError(
                f"global_max_queued must be >= 1, got {global_max_queued}"
            )
        self._default_quota = default_quota or TenantQuota()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self.tenants: Dict[str, TenantState] = {}
        self._coalesce: Dict[object, Request] = {}
        self._global_max_queued = global_max_queued
        self._dispatchers = max(1, dispatchers)
        self._queued_total = 0
        self._closed = False
        #: Seed estimate until real completions arrive; any positive
        #: value works — retry_after_s converges with the EWMA.
        self._service_s = 0.01

    # --- tenant registry ----------------------------------------------------
    def register(self, name: str,
                 quota: Optional[TenantQuota] = None) -> TenantState:
        """Create (or fetch) the tenant ``name``; idempotent per name.

        Re-registering an existing tenant with a *different* quota is an
        error — quotas are a contract, not a per-session preference.
        A new tenant joins the stride scheduler at the current minimum
        pass value so it neither starves nor gets a catch-up burst.
        """
        with self._lock:
            state = self.tenants.get(name)
            if state is not None:
                if quota is not None and quota != state.quota:
                    raise ServeError(
                        f"tenant {name!r} is already registered with "
                        f"{state.quota}; open a session without a quota "
                        f"(or with the same one) to share it"
                    )
                return state
            state = TenantState(name, quota or self._default_quota)
            if self.tenants:
                state.pass_value = min(
                    t.pass_value for t in self.tenants.values()
                )
            self.tenants[name] = state
            return state

    # --- submission ---------------------------------------------------------
    def submit(self, tenant: TenantState, request: Request, *,
               count_submitted: bool = True) -> str:
        """Admit, coalesce, or refuse one request.

        Returns ``"queued"`` (the request now waits for dispatch) or
        ``"coalesced"`` (the request's future joined an identical
        in-flight request and ``request`` itself was discarded).  Raises
        :class:`QueueFull` with ``retry_after_s`` guidance when a bound
        is hit, :class:`ServeError` after :meth:`close`.
        """
        with self._cond:
            if count_submitted:
                tenant.stats["submitted"] += 1
            if self._closed:
                raise ServeError(
                    f"submission {request.label!r} arrived on a closed "
                    f"kernel service"
                )
            if request.key is not None:
                existing = self._coalesce.get(request.key)
                if existing is not None and existing.state != DONE:
                    existing.futures.append(request.futures[0])
                    request.futures[0].coalesced = True
                    tenant.stats["coalesced"] += 1
                    return "coalesced"
            if len(tenant.queue) >= tenant.quota.max_queued:
                tenant.stats["rejected"] += 1
                raise QueueFull(
                    f"tenant {tenant.name!r} already has "
                    f"{len(tenant.queue)} submissions queued "
                    f"(max_queued={tenant.quota.max_queued})",
                    tenant=tenant.name,
                    scope="tenant",
                    retry_after_s=self._retry_after_locked(tenant),
                )
            if self._queued_total >= self._global_max_queued:
                tenant.stats["rejected"] += 1
                raise QueueFull(
                    f"the service already has {self._queued_total} "
                    f"submissions queued "
                    f"(global_max_queued={self._global_max_queued})",
                    tenant=tenant.name,
                    scope="global",
                    retry_after_s=self._retry_after_locked(None),
                )
            tenant.queue.append(request)
            tenant.stats["admitted"] += 1
            self._queued_total += 1
            if request.key is not None:
                self._coalesce[request.key] = request
            self._cond.notify_all()
            return "queued"

    def _retry_after_locked(self, tenant: Optional[TenantState]) -> float:
        """Estimated seconds until the refused scope frees capacity."""
        if tenant is not None:
            ahead = len(tenant.queue) + tenant.inflight
            lanes = min(tenant.quota.max_inflight, self._dispatchers)
        else:
            ahead = self._queued_total + sum(
                t.inflight for t in self.tenants.values()
            )
            lanes = self._dispatchers
        return max(1e-3, self._service_s * ahead / max(1, lanes))

    # --- dispatch -----------------------------------------------------------
    def _pick_locked(self) -> Optional[TenantState]:
        best = None
        for state in self.tenants.values():
            if not state.queue or state.inflight >= state.quota.max_inflight:
                continue
            if best is None or (
                (state.pass_value, state.name)
                < (best.pass_value, best.name)
            ):
                best = state
        return best

    def next_ready(self) -> Optional[Request]:
        """Block for the next dispatchable request (fair-share order).

        Returns ``None`` only at shutdown: the controller is closed and
        every queue is empty.  The periodic re-check is a belt against
        lost wakeups, not a polling loop — every state change notifies.
        """
        with self._cond:
            while True:
                tenant = self._pick_locked()
                if tenant is not None:
                    request = tenant.queue.popleft()
                    self._queued_total -= 1
                    tenant.inflight += 1
                    tenant.pass_value += tenant.stride
                    request.state = RUNNING
                    return request
                if self._closed and self._queued_total == 0:
                    return None
                self._cond.wait(0.5)

    # --- completion ---------------------------------------------------------
    def finish(self, request: Request, *, elapsed_s: float,
               failed: bool) -> Tuple[List, List]:
        """Retire one dispatched request; split its waiters for fan-out.

        Returns ``(deliver, resubmit)``: futures that receive this
        execution's outcome, and follower futures that must be
        re-executed privately because the shared execution failed (only
        the leader inherits the failure — a follower's tenant did not
        cause it and must not observe it).
        """
        with self._cond:
            request.state = DONE
            if request.key is not None \
                    and self._coalesce.get(request.key) is request:
                del self._coalesce[request.key]
            leader = self.tenants[request.tenant_name]
            leader.inflight -= 1
            self._service_s += self._EWMA_ALPHA * (
                max(elapsed_s, 0.0) - self._service_s
            )
            futures = list(request.futures)
            if failed and len(futures) > 1:
                deliver, resubmit = futures[:1], futures[1:]
            else:
                deliver, resubmit = futures, []
            self._cond.notify_all()
            return deliver, resubmit

    def bump(self, tenant_name: str, key: str, count: int = 1) -> None:
        """Thread-safe increment of one tenant counter."""
        with self._lock:
            self.tenants[tenant_name].stats[key] += count

    # --- shutdown -----------------------------------------------------------
    def close(self) -> None:
        """Refuse new submissions; dispatchers drain what is queued."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def flush(self) -> List[Request]:
        """Pop every queued (undispatched) request; caller fails them."""
        with self._cond:
            drained: List[Request] = []
            for state in self.tenants.values():
                while state.queue:
                    request = state.queue.popleft()
                    request.state = DONE
                    if request.key is not None \
                            and self._coalesce.get(request.key) is request:
                        del self._coalesce[request.key]
                    drained.append(request)
                    self._queued_total -= 1
            self._cond.notify_all()
            return drained

    def wait_drained(self, timeout: Optional[float] = None) -> bool:
        """Block until no request is queued or inflight anywhere."""
        with self._cond:
            return self._cond.wait_for(
                lambda: self._queued_total == 0 and all(
                    t.inflight == 0 for t in self.tenants.values()
                ),
                timeout,
            )

    # --- introspection ------------------------------------------------------
    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def depth(self) -> int:
        """Total queued (not yet dispatched) requests."""
        with self._lock:
            return self._queued_total

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant counter copies (see :meth:`TenantState.snapshot`)."""
        with self._lock:
            return {
                name: state.snapshot()
                for name, state in self.tenants.items()
            }
