"""Per-tenant quotas and runtime state for the serving tier.

A :class:`TenantQuota` is the contract a tenant admission-controls
against — how much it may queue, how much it may run, and how big its
share of the backend is when tenants contend.  :class:`TenantState` is
the live bookkeeping behind one tenant: its queue, its stride-scheduler
position, its counters, and its own :class:`~repro.resilience.RecoveryReport`
— segregated per tenant so recovery caused by *your* job never shows up
in someone else's report (the serving tier's isolation contract).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict

from ..errors import ServeError
from ..resilience import RecoveryReport

__all__ = ["TenantQuota", "TenantState", "STAT_KEYS"]

#: Per-tenant counters, in the order the service summary prints them.
STAT_KEYS = (
    "submitted",
    "admitted",
    "rejected",
    "coalesced",
    "completed",
    "failed",
    "redispatched",
)

#: Stride-scheduling numerator: a tenant of weight ``w`` advances its
#: pass value by ``_STRIDE1 / w`` per dispatch, so dispatch frequency is
#: proportional to weight when tenants contend (Waldspurger & Weihl '95).
_STRIDE1 = float(1 << 16)


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits and fair-share weight for one tenant.

    * ``max_queued`` — submissions the tenant may have waiting; the
      next one is refused with :class:`~repro.errors.QueueFull`
      (``scope="tenant"``) until the queue drains.
    * ``max_inflight`` — submissions the tenant may have executing on
      the backend at once; excess admitted work waits in the queue even
      when dispatchers are idle, so one tenant cannot monopolize every
      device.
    * ``weight`` — relative share of dispatch bandwidth under
      contention (weight 3 is dispatched ~3x as often as weight 1).
    """

    max_queued: int = 32
    max_inflight: int = 4
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.max_queued < 1:
            raise ServeError(
                f"TenantQuota.max_queued must be >= 1, got {self.max_queued}"
            )
        if self.max_inflight < 1:
            raise ServeError(
                f"TenantQuota.max_inflight must be >= 1, "
                f"got {self.max_inflight}"
            )
        if not self.weight > 0:
            raise ServeError(
                f"TenantQuota.weight must be > 0, got {self.weight}"
            )


class TenantState:
    """Live serving state for one tenant (guarded by the controller lock).

    Not constructed directly — :meth:`KernelService.session` registers
    tenants and hands out :class:`~repro.serve.Session` handles bound to
    this state.
    """

    def __init__(self, name: str, quota: TenantQuota) -> None:
        self.name = name
        self.quota = quota
        #: Recovery actions attributable to THIS tenant's own jobs
        #: (retries of its submissions, resets its faults forced).
        #: Cross-tenant artifacts the dispatcher absorbs transparently
        #: are recorded on the service-level report instead.
        self.report = RecoveryReport()
        self.queue: Deque = deque()
        self.inflight = 0
        #: Stride-scheduler virtual time; the ready tenant with the
        #: smallest pass value is dispatched next.
        self.pass_value = 0.0
        self.stride = _STRIDE1 / quota.weight
        self.stats: Dict[str, int] = {key: 0 for key in STAT_KEYS}

    def snapshot(self) -> Dict[str, int]:
        """A copy of the tenant's counters plus live queue/inflight depth.

        Callers outside the controller lock get a point-in-time copy,
        never the live dicts.
        """
        snap = dict(self.stats)
        snap["queued"] = len(self.queue)
        snap["inflight"] = self.inflight
        return snap

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<TenantState {self.name!r} queued={len(self.queue)} "
            f"inflight={self.inflight} weight={self.quota.weight}>"
        )
