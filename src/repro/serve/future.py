"""ServeFuture: the client-side handle for one serving-tier submission.

Same single-assignment discipline as :class:`~repro.sched.KernelFuture`
— the first writer (dispatcher result, dispatcher exception, client
cancel) wins and later completions are dropped — but the failure a
ServeFuture resolves to is always the *tenant's own* outcome: the
dispatcher redispatches cross-tenant artifacts (inherited sticky
contexts, reset cancellations) transparently and only stores errors
attributable to this submission.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from ..errors import CancelledError, ServeError

__all__ = ["ServeFuture"]


class ServeFuture:
    """The result handle one :class:`~repro.serve.Session` submission returns.

    ``tenant`` and ``label`` identify the submission; ``coalesced`` is
    ``True`` when this future joined an identical in-flight request
    instead of enqueueing new work (its result is then the *shared*
    object of that execution — treat it as read-only).
    ``submitted_s``/``done_s`` are monotonic timestamps bounding the
    request's service latency, which is what the throughput benchmark
    aggregates into percentiles.
    """

    def __init__(self, tenant: str, label: str) -> None:
        self.tenant = tenant
        self.label = label
        self.coalesced = False
        self.submitted_s = time.monotonic()
        self.done_s: Optional[float] = None
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._result = None
        self._exception: Optional[BaseException] = None

    # --- dispatcher side ----------------------------------------------------
    def _set_result(self, value) -> bool:
        """Record success; ``False`` (stale, dropped) if already resolved."""
        with self._lock:
            if self._event.is_set():
                return False
            self._result = value
            self.done_s = time.monotonic()
            self._event.set()
        return True

    def _set_exception(self, exc: BaseException) -> bool:
        """Record failure; ``False`` (stale, dropped) if already resolved."""
        with self._lock:
            if self._event.is_set():
                return False
            self._exception = exc
            self.done_s = time.monotonic()
            self._event.set()
        return True

    # --- client side --------------------------------------------------------
    def cancel(self, reason: str = "cancelled by client") -> bool:
        """Resolve the future with a :class:`CancelledError` if still open.

        Returns ``True`` when the cancel won the race.  A queued request
        whose futures are all resolved is skipped by the dispatcher; an
        execution already in flight is not interrupted — its eventual
        completion is dropped as stale, exactly like a pool future the
        watchdog timed out.
        """
        return self._set_exception(
            CancelledError(
                f"serve job {self.label!r} (tenant {self.tenant}): {reason}"
            )
        )

    def cancelled(self) -> bool:
        """Whether the future resolved to a :class:`CancelledError`."""
        return self._event.is_set() and isinstance(
            self._exception, CancelledError
        )

    def done(self) -> bool:
        """Whether the submission has a final outcome."""
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until resolved; ``False`` on timeout."""
        return self._event.wait(timeout)

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The submission's exception (or ``None``), waiting first."""
        if not self._event.wait(timeout):
            raise ServeError(
                f"serve job {self.label!r} (tenant {self.tenant}) did not "
                f"complete within {timeout}s"
            )
        return self._exception

    def result(self, timeout: Optional[float] = None):
        """The submission's value; re-raises the tenant's own failure."""
        exc = self.exception(timeout)
        if exc is not None:
            raise exc
        return self._result

    @property
    def latency_s(self) -> Optional[float]:
        """Submit-to-completion wall time, or ``None`` while pending."""
        if self.done_s is None:
            return None
        return self.done_s - self.submitted_s

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            "pending" if not self._event.is_set()
            else "cancelled" if self.cancelled()
            else "failed" if self._exception is not None
            else "done"
        )
        extra = " coalesced" if self.coalesced else ""
        return (
            f"<ServeFuture {self.label!r} tenant={self.tenant}{extra} "
            f"({state})>"
        )
