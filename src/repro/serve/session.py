"""Session: one tenant's submission handle onto a KernelService.

A session is cheap client state — the service holds the tenant's queue,
quota and report; the session just stamps submissions with the tenant
identity and refuses use after :meth:`Session.close`.  Multiple sessions
may be opened for the same tenant name (they share the tenant's quota,
queue and counters), and sessions are safe to use from multiple threads.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..errors import SessionClosed
from .future import ServeFuture
from .quota import TenantQuota

__all__ = ["Session"]


class Session:
    """One tenant's view of the service: submit work, get futures.

    Created by :meth:`repro.serve.KernelService.session`, never
    directly.  All submission paths are asynchronous —
    they return a :class:`ServeFuture` immediately (or raise
    :class:`~repro.errors.QueueFull` when admission refuses) — with
    :meth:`run` and :meth:`run_app` as the blocking conveniences.
    """

    def __init__(self, service, state) -> None:
        self._service = service
        self._state = state
        self._closed = False

    # --- identity -----------------------------------------------------------
    @property
    def tenant(self) -> str:
        """The tenant name this session submits as."""
        return self._state.name

    @property
    def quota(self) -> TenantQuota:
        """The tenant's admission quota."""
        return self._state.quota

    @property
    def report(self):
        """The tenant's own :class:`~repro.resilience.RecoveryReport`.

        Records only recovery attributable to this tenant's jobs;
        another tenant's faults never appear here (isolation contract).
        """
        return self._state.report

    @property
    def stats(self) -> Mapping[str, int]:
        """Point-in-time copy of the tenant's serving counters."""
        return self._state.snapshot()

    # --- submission ---------------------------------------------------------
    def submit(self, kernel, config, *args, label: Optional[str] = None,
               coalesce: bool = True) -> ServeFuture:
        """Submit one kernel launch; returns its :class:`ServeFuture`.

        Mirrors :meth:`repro.sched.DevicePool.submit` (same kernel /
        config / args shape) so code written against a pool ports to the
        service by swapping the handle.  ``coalesce=False`` opts this
        submission out of request coalescing even when its arguments are
        digestable.
        """
        self._check_open()
        return self._service._submit_kernel(
            self._state, kernel, config, args, label=label, coalesce=coalesce
        )

    def submit_call(self, fn, *, label: Optional[str] = None) -> ServeFuture:
        """Submit an opaque host callable ``fn(device)``; never coalesced."""
        self._check_open()
        return self._service._submit_call(self._state, fn, label=label)

    def submit_app(self, app, *, variant: str = "ompx",
                   params: Optional[Mapping[str, object]] = None,
                   coalesce: bool = True) -> ServeFuture:
        """Submit one functional app run (the unified :func:`repro.apps.run`
        path over the service's backend); resolves to the
        :class:`~repro.apps.FunctionalResult`."""
        self._check_open()
        return self._service._submit_app(
            self._state, app, variant=variant, params=params,
            coalesce=coalesce,
        )

    # --- blocking conveniences ----------------------------------------------
    def run(self, kernel, config, *args, label: Optional[str] = None,
            timeout: Optional[float] = None):
        """Submit a kernel launch and block for its result."""
        return self.submit(kernel, config, *args, label=label).result(timeout)

    def run_app(self, app, *, variant: str = "ompx",
                params: Optional[Mapping[str, object]] = None,
                timeout: Optional[float] = None):
        """Submit an app run and block for its FunctionalResult."""
        return self.submit_app(
            app, variant=variant, params=params
        ).result(timeout)

    # --- lifecycle ----------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosed(
                f"session for tenant {self.tenant!r} is closed"
            )

    def close(self) -> None:
        """Refuse further submissions on this handle.

        Does not cancel work already submitted — futures in flight
        resolve normally — and does not unregister the tenant: a new
        session for the same name reuses its quota and counters.
        """
        self._closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return f"<Session tenant={self.tenant!r} ({state})>"
