"""KernelService: the multi-tenant serving tier over a device pool.

The service is the stack's MPS daemon: many client sessions submit
kernel launches, host calls and whole functional app runs through one
unified surface, and a fixed set of dispatcher threads executes them
over a shared backend — any :class:`~repro.sched.PoolProtocol`
implementation, so a plain :class:`~repro.sched.DevicePool` and a
self-healing :class:`~repro.resilience.ResilientPool` are
interchangeable.

What the service adds over the pool:

* **Admission control** — bounded per-tenant and global queues; an
  over-limit submission is refused with
  :class:`~repro.errors.QueueFull` carrying ``retry_after_s`` guidance
  instead of queueing unboundedly.
* **Weighted fair share** — under contention, dispatch bandwidth is
  proportional to tenant weight (stride scheduling), so a heavy tenant
  cannot starve a light one.
* **Request coalescing** — identical in-flight submissions (same
  kernel, geometry and argument values; same app, variant and
  parameters) share one execution and every waiter receives the
  result, like identical inference requests folded by a serving stack.
* **Tenant isolation** — a fault in one tenant's kernel surfaces on
  *that tenant's* future only.  The poisoned device is healed before
  other tenants' work lands on it, and cross-tenant artifacts (a sticky
  context inherited from someone else's fault, a queue drained by a
  device reset) are absorbed and redispatched transparently, never
  delivered.  Per-tenant :class:`~repro.resilience.RecoveryReport`\\ s
  record only recovery attributable to that tenant's own jobs.
"""

from __future__ import annotations

import threading
import time
import warnings
from typing import Dict, List, Optional

from ..errors import (
    CancelledError,
    KernelFault,
    ReproError,
    ServeError,
    StickyContextError,
)
from ..gpu.device import DeviceSpec
from ..resilience import RecoveryReport
from ..resilience.policy import exception_chain
from ..sched import DevicePool, PoolProtocol
from ..trace import get_tracer
from .admission import AdmissionController, Request, trace_count
from .coalesce import app_key, kernel_key
from .future import ServeFuture
from .quota import STAT_KEYS, TenantQuota
from .session import Session

__all__ = ["KernelService"]


class KernelService:
    """Multi-tenant kernel serving over a (resilient) device pool.

    ``KernelService(devices=4)`` owns a fresh
    :class:`~repro.sched.DevicePool`; ``resilient=True`` wraps it in a
    :class:`~repro.resilience.ResilientPool` (with ``verify``/``seed``
    forwarded) so backend faults are healed before tenants ever see
    them.  ``cluster=N`` serves over N supervised worker *processes*
    instead (:func:`repro.cluster.cluster_pool`, with ``resilient``
    meaning device healing inside each worker) — lost workers are
    quarantined and redispatched under the tenants transparently.
    Alternatively pass ``backend=`` — anything satisfying
    :class:`~repro.sched.PoolProtocol` — and the service will serve over
    it without taking ownership of its lifecycle.

    The service is a context manager; :meth:`close` drains queued work
    (``drain=False`` cancels it), stops the dispatchers, and tears down
    an owned backend.
    """

    def __init__(
        self,
        devices: int = 2,
        *,
        backend: Optional[PoolProtocol] = None,
        specs: Optional[List[DeviceSpec]] = None,
        placement: object = "round_robin",
        cluster: int = 0,
        resilient: bool = False,
        verify: int = 1,
        seed: int = 0,
        default_quota: Optional[TenantQuota] = None,
        global_max_queued: int = 256,
        dispatchers: Optional[int] = None,
        request_timeout_s: float = 120.0,
        max_redispatch: int = 8,
        tune: bool = False,
        tune_cache: Optional[str] = None,
        journal_dir: Optional[str] = None,
    ) -> None:
        #: Service-level recovery report: backend healing (when the
        #: service owns a resilient backend) plus cross-tenant artifacts
        #: the dispatchers absorbed.  Per-tenant reports live on the
        #: tenants; see :meth:`session`.
        self.report = RecoveryReport()
        self._owned = backend is None
        self._pool: Optional[DevicePool] = None
        if backend is None and cluster > 0:
            from ..cluster import cluster_pool
            from ..faults import active_plan

            backend = cluster_pool(
                cluster,
                specs=specs,
                resilient=resilient,
                verify=verify,
                seed=seed,
                report=self.report,
                plan=active_plan(),
            )
        elif backend is None:
            self._pool = DevicePool(devices, specs=specs, placement=placement)
            if resilient:
                from ..resilience import ResilientPool

                backend = ResilientPool(
                    self._pool, verify=verify, seed=seed, report=self.report
                )
            else:
                backend = self._pool
        elif not isinstance(backend, PoolProtocol):
            raise ServeError(
                f"backend must satisfy repro.sched.PoolProtocol "
                f"(submit/submit_call/devices/close), got "
                f"{type(backend).__name__}"
            )
        self.backend = backend
        self._resilient = hasattr(backend, "health")
        if max_redispatch < 1:
            raise ServeError(
                f"max_redispatch must be >= 1, got {max_redispatch}"
            )
        self._max_redispatch = max_redispatch
        self._request_timeout_s = request_timeout_s
        count = dispatchers if dispatchers is not None \
            else max(1, len(self.backend.devices))
        if count < 1:
            raise ServeError(f"dispatchers must be >= 1, got {count}")
        self._admission = AdmissionController(
            global_max_queued=global_max_queued,
            dispatchers=count,
            default_quota=default_quota,
        )
        # ``tune=True`` dispatches every served launch through the
        # repro.tune plan cache.  All tenants share one session — plans
        # are keyed on (kernel, shape, device spec), not on the tenant,
        # so coalesced requests and repeat submissions reuse one tuned
        # plan; the cache file itself is concurrency-safe (atomic
        # rename + in-process lock).  An already-active process session
        # is reused and left installed at close.
        self._tune_session = None
        self._owns_tune = False
        if tune:
            from .. import tune as tune_mod

            self._tune_session = tune_mod.active_session()
            if self._tune_session is None:
                self._tune_session = tune_mod.enable(tune_cache)
                self._owns_tune = True
        # ``journal_dir=`` journals every accepted app submission the
        # service can describe as JSON (app identity, variant, params,
        # tenant, coalescing key) and marks it done when its future is
        # delivered.  A service that crashes in between leaves pending
        # entries a fresh incarnation re-admits via :meth:`recover` —
        # deduped by coalescing key, so the replay is effectively-once.
        self._journal = None
        if journal_dir is not None:
            from ..ckpt import SubmissionJournal

            self._journal = SubmissionJournal(journal_dir)
        self._sessions: List[Session] = []
        self._closed = False
        self._close_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._executions = 0
        self._workers = [
            threading.Thread(
                target=self._dispatch_loop,
                name=f"serve-dispatch{i}",
                daemon=True,
            )
            for i in range(count)
        ]
        for worker in self._workers:
            worker.start()

    # --- client surface -----------------------------------------------------
    @property
    def devices(self):
        """The backend's (currently eligible) devices."""
        return list(self.backend.devices)

    def session(self, tenant: str, *,
                quota: Optional[TenantQuota] = None) -> Session:
        """Open a submission session for ``tenant``.

        First use of a tenant name registers it (with ``quota``, or the
        service default); later sessions for the same name share its
        quota, queue, counters and recovery report.
        """
        if self._closed:
            raise ServeError(
                f"cannot open a session for {tenant!r}: service is closed"
            )
        state = self._admission.register(tenant, quota)
        session = Session(self, state)
        self._sessions.append(session)
        return session

    # --- submission plumbing (called by Session) ----------------------------
    def _submit_kernel(self, state, kernel, config, args, *,
                       label: Optional[str], coalesce: bool) -> ServeFuture:
        name = label or getattr(
            getattr(kernel, "fn", None) or kernel, "__name__", "kernel"
        )
        key = kernel_key(kernel, config, args) if coalesce else None
        return self._submit(
            state, "kernel", name, key,
            {"kernel": kernel, "config": config, "args": tuple(args)},
        )

    def _submit_call(self, state, fn, *,
                     label: Optional[str]) -> ServeFuture:
        name = label or getattr(fn, "__name__", "call")
        return self._submit(state, "call", name, None, {"fn": fn})

    def _submit_app(self, state, app, *, variant: str, params,
                    coalesce: bool) -> ServeFuture:
        name = f"{app.name}:{variant}"
        key = app_key(app, variant, params) if coalesce else None
        journal_id = None
        if self._journal is not None:
            journal_id = self._journal_accept(state.name, app, variant,
                                              params, key)
        try:
            return self._submit(
                state, "app", name, key,
                {"app": app, "variant": variant, "params": params},
                journal_id=journal_id,
            )
        except ServeError:
            # The submission never entered the queue; nothing to recover.
            if journal_id is not None:
                self._journal.record_done(journal_id)
            raise

    def _journal_accept(self, tenant: str, app, variant: str, params,
                        key) -> Optional[int]:
        """Journal one app submission, or ``None`` if it defies JSON.

        Only JSON-describable submissions are recoverable: a prebuilt
        ndarray parameter set cannot be rebuilt from a journal line, so
        it is skipped (counted, not failed) — recovery is best-effort
        extra safety, never a new reason for a submission to be refused.
        """
        import json as json_mod

        descriptor = {
            "tenant": tenant,
            "app": [type(app).__module__, type(app).__qualname__],
            "variant": variant,
            "params": None if params is None else dict(params),
            "key": None if key is None else repr(key),
        }
        try:
            json_mod.dumps(descriptor)
        except (TypeError, ValueError):
            trace_count("serve_journal_skipped")
            return None
        return self._journal.record_accepted(descriptor)

    def _submit(self, state, kind: str, label: str, key,
                payload: dict, *, journal_id: Optional[int] = None) -> ServeFuture:
        future = ServeFuture(state.name, label)
        future.journal_id = journal_id
        request = Request(
            kind=kind, label=label, key=key, tenant_name=state.name,
            future=future, payload=payload,
        )
        trace_count("serve_submitted")
        trace_count(f"serve_submitted[{state.name}]")
        try:
            outcome = self._admission.submit(state, request)
        except ServeError:
            # QueueFull (backpressure) or closed-service refusal: the
            # caller gets the structured error, not a dead future.
            trace_count("serve_rejected")
            trace_count(f"serve_rejected[{state.name}]")
            raise
        if outcome == "coalesced":
            trace_count("serve_coalesced")
            trace_count(f"serve_coalesced[{state.name}]")
        else:
            trace_count("serve_admitted")
        return future

    # --- dispatcher ---------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            request = self._admission.next_ready()
            if request is None:
                return
            self._handle(request)

    def _handle(self, request: Request) -> None:
        start = time.monotonic()
        if all(future.done() for future in request.futures):
            # Every waiter cancelled while the request was queued; skip
            # the execution entirely (the pool-future cancel semantics).
            self._admission.finish(request, elapsed_s=0.0, failed=False)
            return
        value = None
        exc: Optional[BaseException] = None
        tracer = get_tracer()
        try:
            if tracer is None:
                value = self._run_guarded(request)
            else:
                with tracer.on_track("serve"):
                    with tracer.span(
                        f"serve:{request.label}", cat="serve", track="serve",
                        tenant=request.tenant_name, kind=request.kind,
                        waiters=len(request.futures),
                    ):
                        value = self._run_guarded(request)
        except BaseException as caught:  # noqa: BLE001 - handed to the futures
            exc = caught
        failed = exc is not None
        deliver, resubmit = self._admission.finish(
            request, elapsed_s=time.monotonic() - start, failed=failed
        )
        for future in deliver:
            written = future._set_exception(exc) if failed \
                else future._set_result(value)
            if written:
                self._record_outcome(future.tenant, failed)
                self._journal_done(future)
        for future in resubmit:
            self._resubmit(future, request)

    def _journal_done(self, future: ServeFuture) -> None:
        """Mark a delivered future's journal entry finished (either way).

        Delivery — success *or* failure — means the service will never
        run this submission again on its own, so recovery must not
        either.  Cancelled-before-dispatch futures are deliberately NOT
        marked: the service never ran them, and a restarted incarnation
        re-admitting them is the journal working as intended.
        """
        entry_id = getattr(future, "journal_id", None)
        if self._journal is not None and entry_id is not None:
            self._journal.record_done(entry_id)

    def _resubmit(self, future: ServeFuture, request: Request) -> None:
        """Re-enqueue a follower privately after its shared execution failed.

        The leader's failure belongs to the leader alone; each follower
        re-runs uncoalesced (``key=None``) so its own future reflects
        its own outcome.
        """
        tenant = self._admission.tenants[future.tenant]
        retry = Request(
            kind=request.kind, label=request.label, key=None,
            tenant_name=tenant.name, future=future, payload=request.payload,
        )
        self._admission.bump(tenant.name, "redispatched")
        trace_count("serve_redispatches")
        try:
            self._admission.submit(tenant, retry, count_submitted=False)
        except ReproError as refused:
            if future._set_exception(refused):
                self._record_outcome(future.tenant, True)
                self._journal_done(future)

    def _record_outcome(self, tenant_name: str, failed: bool) -> None:
        key = "failed" if failed else "completed"
        self._admission.bump(tenant_name, key)
        trace_count(f"serve_{key}")
        trace_count(f"serve_{key}[{tenant_name}]")

    # --- execution with the isolation guard ---------------------------------
    def _run_guarded(self, request: Request):
        """Execute one request, absorbing cross-tenant artifacts.

        The isolation contract, mechanically:

        * A :class:`KernelFault` raised by the tenant's own execution is
          the tenant's own failure — surface it, but first heal the
          device it poisoned so no other tenant inherits the sticky
          context (the resets land in the *faulting* tenant's report).
        * A :class:`StickyContextError` whose chain shows no fault of
          our own is inherited poison from another tenant's job that
          landed on the device first — heal and redispatch
          transparently; this tenant never observes it.
        * A retryable :class:`CancelledError` is a scheduler artifact
          (the queue drained by a device reset during someone else's
          heal) — redispatch transparently.
        * Everything else is the tenant's own outcome and surfaces
          unchanged, exactly as a direct pool submission would fail.
        """
        with self._stats_lock:
            self._executions += 1
        trace_count("serve_executions")
        trace_count(f"serve_executions[{request.tenant_name}]")
        while True:
            try:
                return self._execute_once(request)
            except ReproError as exc:
                action = self._classify(exc)
                if action == "own-fault":
                    self._heal_backend(self._tenant_report(request))
                    raise
                if action == "fatal":
                    raise
                if request.redispatches >= self._max_redispatch:
                    raise ServeError(
                        f"serve job {request.label!r} (tenant "
                        f"{request.tenant_name}) was redispatched "
                        f"{request.redispatches} times without completing; "
                        f"giving up"
                    ) from exc
                request.redispatches += 1
                self._admission.bump(request.tenant_name, "redispatched")
                trace_count("serve_redispatches")
                if action == "inherited-poison":
                    self._heal_backend(self.report)
                # Cross-tenant artifact: recorded on the service report,
                # NOT the tenant's (its jobs caused none of this).
                self.report.record(
                    "retries",
                    f"{request.label}: transparent redispatch after "
                    f"cross-tenant {type(exc).__name__}",
                )

    def _execute_once(self, request: Request):
        payload = request.payload
        if request.kind == "app":
            # The unified app entry point over our backend: sharded
            # decomposition, and run_to_completion when it is resilient.
            from ..apps.common import ExecutionConfig
            from ..apps.common import run as run_app

            return run_app(
                payload["app"],
                ExecutionConfig(
                    variant=payload["variant"],
                    params=payload["params"],
                    pool=self.backend,
                ),
            )
        if request.kind == "kernel":
            inner = self.backend.submit(
                payload["kernel"], payload["config"], *payload["args"],
                label=request.label,
            )
        else:
            inner = self.backend.submit_call(
                payload["fn"], label=request.label
            )
        value = inner.result(timeout=self._request_timeout_s)
        # A resilient backend may have retried the submission behind the
        # future; attribute those retries to the submitting tenant.
        attempts = getattr(inner, "attempts", 1)
        if attempts > 1:
            self._tenant_report(request).record(
                "retries",
                f"{request.label}: backend retried "
                f"{attempts - 1} time(s)",
                count=attempts - 1,
            )
        return value

    def _classify(self, exc: BaseException) -> str:
        # StickyContextError outranks the KernelFault in its chain: a
        # sticky-context refusal is always *secondhand* (the context was
        # poisoned before this job touched the device — the original
        # fault already surfaced on its own tenant's launch), while a
        # firsthand fault raises bare, without the sticky wrapper.
        chain = list(exception_chain(exc))
        if any(isinstance(e, StickyContextError) for e in chain):
            return "inherited-poison"
        if any(isinstance(e, KernelFault) for e in chain):
            return "own-fault"
        if any(
            isinstance(e, CancelledError) and getattr(e, "retryable", False)
            for e in chain
        ):
            return "requeued"
        return "fatal"

    def _tenant_report(self, request: Request) -> RecoveryReport:
        return self._admission.tenants[request.tenant_name].report

    def _heal_backend(self, report: RecoveryReport) -> None:
        """Reset any poisoned backend device (non-resilient backends).

        A resilient backend owns its device recovery (quarantine, reset,
        canary probe); over a plain pool the service itself must clear
        sticky contexts so one tenant's fault cannot poison the next
        tenant's placement.
        """
        if self._resilient:
            return
        from ..ompx.host import ompx_device_reset

        for device in self.backend.devices:
            if device.is_poisoned:
                ompx_device_reset(device=device.ordinal)
                report.record(
                    "resets",
                    f"device {device.ordinal}: serve heal after a fault",
                )

    # --- crash recovery -----------------------------------------------------
    def recover(self) -> List[ServeFuture]:
        """Re-admit accepted-but-unfinished submissions from the journal.

        Call this on a *fresh* service incarnation pointed at the dead
        one's ``journal_dir``.  Every pending entry — accepted by the
        old service, never marked done — is resubmitted under its
        original tenant through the normal session surface, so quotas,
        fair share and coalescing all apply; entries that would have
        coalesced in the old process are deduped by coalescing key
        before re-admission.  Together: effectively-once, not
        at-least-once.

        The old entries are marked done as they are re-admitted (the new
        incarnation's own accepted/done pair takes over responsibility),
        so a second crash replays the re-admissions, not the originals
        twice.  Returns the futures of the re-admitted submissions.
        """
        import importlib

        if self._journal is None:
            raise ServeError(
                "recover() requires the service to be built with "
                "journal_dir="
            )
        futures: List[ServeFuture] = []
        every_pending = self._journal.pending(dedupe=False)
        for entry in self._journal.pending():
            module_name, qualname = entry["app"]
            obj = importlib.import_module(module_name)
            for part in qualname.split("."):
                obj = getattr(obj, part)
            app = obj()
            session = self.session(str(entry.get("tenant", "recovered")))
            futures.append(
                session.submit_app(
                    app,
                    variant=str(entry["variant"]),
                    params=entry.get("params"),
                )
            )
            trace_count("serve_recovered")
        # Retire every old pending entry — re-admitted leaders AND the
        # duplicates they deduped (the one re-admission covers them all;
        # the new incarnation's own accepted/done pair takes over).
        for entry in every_pending:
            self._journal.record_done(int(entry["id"]))
        return futures

    # --- introspection ------------------------------------------------------
    def stats(self) -> Dict[str, dict]:
        """Structured counters: per-tenant snapshots plus service totals."""
        tenants = self._admission.snapshot()
        totals = {key: sum(t[key] for t in tenants.values())
                  for key in STAT_KEYS}
        with self._stats_lock:
            executions = self._executions
        stats = {
            "service": {
                "tenants": len(tenants),
                "devices": len(self.backend.devices),
                "dispatchers": len(self._workers),
                "resilient": self._resilient,
                "queued": self._admission.depth(),
                "executions": executions,
                **totals,
            },
            "tenants": tenants,
        }
        if self._tune_session is not None:
            stats["tune"] = self._tune_session.summary()
        return stats

    def summary(self) -> str:
        """Human-readable service report, printed by the CLI."""
        stats = self.stats()
        service = stats["service"]
        mode = "resilient backend" if service["resilient"] else "plain pool"
        lines = [
            f"kernel service: {service['tenants']} tenant(s) over "
            f"{service['devices']} device(s), {service['dispatchers']} "
            f"dispatcher(s), {mode}",
        ]
        for name in sorted(stats["tenants"]):
            tenant = stats["tenants"][name]
            fields = " ".join(f"{key}={tenant[key]}" for key in STAT_KEYS)
            lines.append(f"  {name}: {fields}")
        saved = service["coalesced"]
        lines.append(
            f"  totals: {service['submitted']} submitted, "
            f"{service['executions']} executed "
            f"({saved} coalesced away), {service['failed']} failed, "
            f"{service['rejected']} rejected"
        )
        if self._tune_session is not None:
            lines.append(f"  {self._tune_session.describe()}")
        return "\n".join(lines)

    # --- lifecycle ----------------------------------------------------------
    def close(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop serving; tear down an owned backend.

        ``drain=True`` lets queued submissions execute first;
        ``drain=False`` fails every undispatched future with
        :class:`~repro.errors.CancelledError`.  In-flight executions
        always run to completion (pool workers cannot be interrupted).
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        for session in self._sessions:
            session.close()
        self._admission.close()
        if not drain:
            for request in self._admission.flush():
                refused = CancelledError(
                    f"serve job {request.label!r} cancelled: service "
                    f"closed before dispatch"
                )
                for future in request.futures:
                    if future._set_exception(refused):
                        self._record_outcome(future.tenant, True)
        stuck = []
        for worker in self._workers:
            worker.join(timeout=timeout)
            if worker.is_alive():
                stuck.append(worker.name)
        if stuck:
            warnings.warn(
                f"KernelService.close: {len(stuck)} dispatcher(s) failed "
                f"to join within {timeout}s: {', '.join(stuck)}",
                RuntimeWarning,
                stacklevel=2,
            )
        if self._owned:
            if self.backend is not self._pool:
                self.backend.close()
            if self._pool is not None:
                self._pool.close()
        if self._journal is not None:
            self._journal.close()
        if self._owns_tune:
            from .. import tune as tune_mod

            if tune_mod.active_session() is self._tune_session:
                tune_mod.disable()
            else:
                self._tune_session.save()

    def __enter__(self) -> "KernelService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return (
            f"<KernelService {len(self._admission.tenants)} tenant(s) "
            f"over {self.backend!r} ({state})>"
        )
