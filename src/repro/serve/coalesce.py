"""Request coalescing keys: deciding when two submissions are one job.

The serving tier collapses identical concurrent submissions onto a
single execution and fans the result out to every waiter — the
MPS-daemon behaviour that makes N tenants requesting the same kernel
cost one launch.  Two submissions are *identical* when their coalesce
keys match: a structural digest of the kernel identity, the launch
geometry, and the argument **values** (not object identities, so two
tenants building equal arrays coalesce).

Safety rule: anything whose value cannot be digested — device pointers,
open streams, arbitrary host objects, a submission bound to an explicit
stream — yields **no** key (``None``) and is never coalesced.
Correctness first, deduplication second: an opaque argument might be
mutated by the launch, and sharing that execution would leak one
tenant's state into another's result.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping, Sequence
from typing import Optional, Tuple

import numpy as np

__all__ = ["digest", "kernel_key", "app_key"]


def digest(value) -> Optional[Tuple]:
    """A hashable structural fingerprint of ``value``, or ``None`` if opaque.

    Digestable: ``None``, booleans, numbers, strings, bytes, NumPy
    arrays (shape + dtype + content hash), and tuples/lists/mappings of
    digestable values.  Anything else — device pointers, handles,
    callables, app objects — returns ``None``, which poisons the whole
    containing key: the submission is executed privately.
    """
    if value is None:
        return ("none",)
    if isinstance(value, np.ndarray):
        body = hashlib.sha256()
        body.update(np.ascontiguousarray(value).tobytes())
        return ("ndarray", value.shape, str(value.dtype), body.hexdigest())
    if isinstance(value, (bool, int, float, complex, str, bytes)):
        return ("scalar", type(value).__name__, value)
    if isinstance(value, np.generic):
        return ("scalar", str(value.dtype), value.item())
    if isinstance(value, Mapping):
        items = []
        for key in sorted(value, key=repr):
            sub = digest(value[key])
            if sub is None:
                return None
            items.append((repr(key), sub))
        return ("mapping", tuple(items))
    if isinstance(value, Sequence):
        items = []
        for element in value:
            sub = digest(element)
            if sub is None:
                return None
            items.append(sub)
        return ("seq", tuple(items))
    return None


def _kernel_identity(kernel) -> Tuple[str, str]:
    """A stable name for the kernel function itself (not its wrapper)."""
    entry = getattr(kernel, "entry", kernel)
    fn = getattr(entry, "fn", None) or entry
    return (
        getattr(fn, "__module__", ""),
        getattr(fn, "__qualname__", repr(fn)),
    )


def kernel_key(kernel, config, args) -> Optional[Tuple]:
    """Coalesce key for a raw kernel launch, or ``None`` (never coalesce).

    Keyed on (kernel identity, grid, block, shared bytes, engine,
    argument digest).  A submission bound to an explicit stream is never
    coalesced — stream order is per-tenant state the service must not
    share.
    """
    if getattr(config, "stream", None) is not None:
        return None
    arg_digest = digest(tuple(args))
    if arg_digest is None:
        return None
    engine = getattr(config, "engine", None)
    return (
        "kernel",
        _kernel_identity(kernel),
        getattr(config, "grid", None),
        getattr(config, "block", None),
        getattr(config, "shared_bytes", 0),
        None if engine is None else repr(engine),
        arg_digest,
    )


def app_key(app, variant: str, params) -> Optional[Tuple]:
    """Coalesce key for a functional app run, or ``None``.

    Keyed on the app *class* (two instances of the same benchmark are
    the same program), the variant, and the parameter digest — which
    covers prebuilt problem arrays, so two tenants asking for the same
    reduced-scale run coalesce while different problem sizes do not.
    """
    params_digest = digest(params)
    if params_digest is None:
        return None
    return (
        "app",
        type(app).__module__,
        type(app).__qualname__,
        variant,
        params_digest,
    )
