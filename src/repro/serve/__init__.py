"""repro.serve — multi-tenant kernel serving over the simulated stack.

The paper's extensions make one program performance-portable; this
package makes the *stack* shareable: a :class:`KernelService` is the
MPS-daemon analogue for the simulated GPUs, accepting concurrent client
:class:`Session`\\ s that submit raw kernel launches, host calls and
whole functional app runs through one unified surface, executed over a
shared backend — a plain :class:`~repro.sched.DevicePool` or a
self-healing :class:`~repro.resilience.ResilientPool`, interchangeable
via :class:`~repro.sched.PoolProtocol`.

Quickstart
----------
::

    from repro.serve import KernelService
    from repro.apps import XSBench

    with KernelService(devices=2, resilient=True) as service:
        alice = service.session("alice")
        bob = service.session("bob")
        fa = alice.submit_app(XSBench(), variant="ompx")
        fb = bob.submit_app(XSBench(), variant="ompx")   # coalesces
        assert fb.result().checksum == fa.result().checksum
        print(service.summary())

or from the command line::

    python -m repro.apps xsbench --serve --tenants 4

What the tier guarantees
------------------------
* **Backpressure, not unbounded queues** — per-tenant and global
  admission bounds; refusals raise :class:`~repro.errors.QueueFull`
  with ``retry_after_s`` guidance.
* **Weighted fair share** — stride scheduling gives contending tenants
  dispatch bandwidth proportional to their
  :class:`TenantQuota.weight`.
* **Request coalescing** — identical in-flight submissions share one
  execution and fan the result to every waiter; failures never fan out
  (followers re-execute privately).
* **Tenant isolation** — one tenant's kernel fault surfaces on that
  tenant's :class:`ServeFuture` only; inherited sticky contexts and
  reset-drained queues are healed and redispatched transparently, and
  per-tenant recovery reports stay segregated.
"""

from .future import ServeFuture
from .quota import TenantQuota
from .service import KernelService
from .session import Session

__all__ = [
    "KernelService",
    "Session",
    "ServeFuture",
    "TenantQuota",
]
