"""Exception hierarchy shared across the :mod:`repro` package.

Every subsystem raises exceptions rooted at :class:`ReproError` so callers
can catch library failures without also swallowing programming errors from
their own code.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GpuError",
    "LaunchError",
    "KernelFault",
    "MemcheckError",
    "StickyContextError",
    "MemoryError_",
    "InvalidPointerError",
    "OutOfMemoryError",
    "SyncError",
    "CompileError",
    "FaultSpecError",
    "OpenMPError",
    "MappingError",
    "DependenceError",
    "InteropError",
    "PortError",
    "PerfModelError",
    "SchedulerError",
    "CancelledError",
    "WatchdogTimeout",
    "ClusterError",
    "WorkerLost",
    "HeartbeatTimeout",
    "ServeError",
    "QueueFull",
    "SessionClosed",
    "TuneError",
    "PlanCacheError",
    "VendorError",
    "BlasDimensionError",
    "UnknownVendorError",
    "HandleDestroyedError",
    "CheckpointError",
    "CorruptCheckpointError",
    "AppError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GpuError(ReproError):
    """Base class for errors raised by the virtual GPU substrate."""


class LaunchError(GpuError):
    """A kernel launch configuration is invalid for the target device.

    Engine guard rails attach structured context so callers (and error
    messages) can name the refusing engine, its cap, the requested size
    and the suggested remediation path.  The launch path additionally
    attaches the selected engine and the engine-plan memoization key
    (``key``) so error text agrees with what trace spans and the profile
    summary report for the same launch.
    """

    def __init__(
        self,
        message: str = "",
        *,
        engine: "str | None" = None,
        cap: "int | None" = None,
        requested: "int | None" = None,
        hint: "str | None" = None,
        key: "tuple | None" = None,
    ) -> None:
        super().__init__(message)
        self.engine = engine
        self.cap = cap
        self.requested = requested
        self.hint = hint
        self.key = key

    def __str__(self) -> str:
        base = super().__str__()
        extra = []
        if self.engine is not None:
            extra.append(f"engine={self.engine}")
        if self.key is not None:
            extra.append(f"plan_key={self.key!r}")
        if extra:
            base = f"{base} [{', '.join(extra)}]"
        if self.hint is not None:
            base = f"{base} (hint: {self.hint})"
        return base

    # Structured context must survive pickling (stream workers hand errors
    # across threads; test harnesses hand them across processes).  The
    # default BaseException reduction re-calls ``cls(*args)``, which would
    # drop every keyword-only field, so reduce to (message, state) instead.
    def _state(self) -> dict:
        return {
            "engine": self.engine,
            "cap": self.cap,
            "requested": self.requested,
            "hint": self.hint,
            "key": self.key,
        }

    def __reduce__(self):
        return (type(self), (self.args[0] if self.args else "",), self._state())

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def __eq__(self, other) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.args == other.args and self._state() == other._state()

    def __ne__(self, other) -> bool:
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    def __hash__(self) -> int:
        return hash((type(self), self.args))


class KernelFault(GpuError):
    """A device-side fault raised while a kernel was executing.

    The analogue of the CUDA/HIP "illegal address in kernel" family
    (``cudaErrorIllegalAddress``, ``hipErrorIllegalAddress``): unlike a
    launch-configuration error, a kernel fault *poisons* the owning device
    context — every subsequent launch/memcpy/sync on the device re-reports
    it until ``device_reset()`` (see :meth:`repro.gpu.device.Device.reset`).

    ``injected=True`` marks faults raised by the :mod:`repro.faults`
    injection framework, so retry/fallback policies can tell a scripted
    failure from an organic one.
    """

    def __init__(
        self,
        message: str = "",
        *,
        kernel: "str | None" = None,
        block: "object | None" = None,
        address: "int | None" = None,
        injected: bool = False,
    ) -> None:
        super().__init__(message)
        self.kernel = kernel
        self.block = block
        self.address = address
        self.injected = injected

    def __str__(self) -> str:
        base = super().__str__()
        extra = []
        if self.kernel is not None:
            extra.append(f"kernel={self.kernel}")
        if self.block is not None:
            extra.append(f"block={self.block}")
        if self.address is not None:
            extra.append(f"address=0x{self.address:x}")
        if self.injected:
            extra.append("injected")
        return f"{base} [{', '.join(extra)}]" if extra else base

    def _state(self) -> dict:
        return {
            "kernel": self.kernel,
            "block": self.block,
            "address": self.address,
            "injected": self.injected,
        }

    def __reduce__(self):
        return (type(self), (self.args[0] if self.args else "",), self._state())

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def __eq__(self, other) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.args == other.args and self._state() == other._state()

    def __ne__(self, other) -> bool:
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    def __hash__(self) -> int:
        return hash((type(self), self.args))


class MemcheckError(KernelFault):
    """A memory-safety violation caught by the memcheck sanitizer.

    Subclasses :class:`KernelFault` because an out-of-bounds device access
    is exactly the fault class that poisons a real GPU context — running
    under the sanitizer makes it *observable*, not less severe.
    """


class StickyContextError(GpuError):
    """The device context was poisoned by an earlier unhandled kernel fault.

    Mirrors CUDA's sticky-error contract: after an illegal access, every
    API call on the context returns the original error until the context
    is torn down.  ``original`` is the captured fault (also chained as
    ``__cause__``); recover with ``ompx_device_reset``/``cudaDeviceReset``/
    ``hipDeviceReset`` or :meth:`repro.gpu.device.Device.reset`.
    """

    def __init__(
        self,
        message: str = "",
        *,
        device: "int | None" = None,
        original: "BaseException | None" = None,
    ) -> None:
        super().__init__(message)
        self.device = device
        self.original = original


class FaultSpecError(ReproError):
    """A ``--faults`` specification string could not be parsed."""


class MemoryError_(GpuError):
    """Base class for device memory errors.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError`.
    """


class InvalidPointerError(MemoryError_):
    """A device pointer does not refer to a live allocation."""


class OutOfMemoryError(MemoryError_):
    """The device allocator cannot satisfy a request."""


class SyncError(GpuError):
    """A synchronization primitive was used incorrectly.

    Examples: barrier divergence inside a thread block, or a warp
    collective executed by only part of a warp without a matching mask.
    """


class CompileError(ReproError):
    """The compiler model rejected a kernel/toolchain combination."""


class OpenMPError(ReproError):
    """Base class for errors raised by the OpenMP runtime model."""


class MappingError(OpenMPError):
    """An inconsistent map clause or device data environment operation."""


class DependenceError(OpenMPError):
    """An invalid ``depend`` clause (unknown type, bad item, cycle)."""


class InteropError(OpenMPError):
    """An interop object was used before init or after destroy."""


class PortError(ReproError):
    """The CUDA->ompx source translator could not translate an input."""


class PerfModelError(ReproError):
    """The performance model received inconsistent inputs."""


class SchedulerError(ReproError):
    """The multi-device scheduler was misused or a pool operation failed.

    Raised for bad pool configuration, submissions to a closed pool,
    unknown placement policies, and future timeouts.  Kernel failures
    *inside* a pool worker are not wrapped: the worker stores the
    original :class:`GpuError`/:class:`KernelFault` on the future so
    callers see exactly what a single-device run would have seen."""


class CancelledError(SchedulerError):
    """A pool job was cancelled before it started executing.

    Raised from :meth:`KernelFuture.result` when the future was cancelled
    explicitly (:meth:`KernelFuture.cancel`), when its pool was closed
    with ``drain=False``, or when its device was reset while the job was
    still queued.  ``retryable`` marks cancellations the resilience layer
    may transparently re-execute (a device reset during recovery); an
    explicit user cancel is never retried.
    """

    def __init__(self, message: str = "", *, retryable: bool = False) -> None:
        super().__init__(message)
        self.retryable = retryable


class WatchdogTimeout(GpuError):
    """A pool job exceeded its execution deadline and was timed out.

    The structured failure the :mod:`repro.resilience` watchdog converts a
    hung kernel into: it names the offending kernel label, the device it
    hung on, and the deadline that expired.  The job's worker thread may
    still be running (threads cannot be killed); the device is pulled
    from placement until it drains and passes a canary probe.
    """

    def __init__(
        self,
        message: str = "",
        *,
        kernel: "str | None" = None,
        device: "int | None" = None,
        deadline_s: "float | None" = None,
    ) -> None:
        super().__init__(message)
        self.kernel = kernel
        self.device = device
        self.deadline_s = deadline_s

    def __str__(self) -> str:
        base = super().__str__()
        extra = []
        if self.kernel is not None:
            extra.append(f"kernel={self.kernel}")
        if self.device is not None:
            extra.append(f"device={self.device}")
        if self.deadline_s is not None:
            extra.append(f"deadline={self.deadline_s}s")
        return f"{base} [{', '.join(extra)}]" if extra else base


class ClusterError(SchedulerError):
    """The multi-process cluster layer was misused or failed to start.

    Raised for bad :class:`~repro.cluster.ClusterPool` configuration,
    submissions to a closed cluster, payloads that cannot cross a process
    boundary (device-resident pointers, unpicklable callables), and
    spawn failures.  Failures *inside* a worker's job are not wrapped:
    the worker pickles the original error back, so a clustered run fails
    exactly like an in-process pooled run would.
    """


class WorkerLost(ClusterError):
    """A cluster worker process died (or was declared dead) with jobs on it.

    The cross-process analogue of a retired device: supervision detected
    the loss (process exit, broken pipe, or a missed liveness deadline —
    see :class:`HeartbeatTimeout`), quarantined the worker as a
    super-device, and redispatched its relocatable jobs to survivors.
    This error surfaces only on futures that could *not* be relocated:
    jobs pinned to the lost worker's devices, jobs over the redispatch
    budget, or any job when no workers survive.
    """

    def __init__(
        self,
        message: str = "",
        *,
        worker: "int | None" = None,
        reason: "str | None" = None,
        jobs_lost: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.worker = worker
        self.reason = reason
        self.jobs_lost = jobs_lost

    def __str__(self) -> str:
        base = super().__str__()
        extra = []
        if self.worker is not None:
            extra.append(f"worker={self.worker}")
        if self.reason is not None:
            extra.append(f"reason={self.reason}")
        if self.jobs_lost is not None:
            extra.append(f"jobs_lost={self.jobs_lost}")
        return f"{base} [{', '.join(extra)}]" if extra else base

    # Workers hand these across process boundaries; like LaunchError, the
    # structured context must survive pickling, so reduce to
    # (message, state) instead of the default cls(*args) re-call.
    def _state(self) -> dict:
        return {
            "worker": self.worker,
            "reason": self.reason,
            "jobs_lost": self.jobs_lost,
        }

    def __reduce__(self):
        return (type(self), (self.args[0] if self.args else "",), self._state())

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def __eq__(self, other) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.args == other.args and self._state() == other._state()

    def __ne__(self, other) -> bool:
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    def __hash__(self) -> int:
        return hash((type(self), self.args))


class HeartbeatTimeout(WorkerLost):
    """A worker missed its liveness deadline (hung, not crashed).

    A worker's heartbeat thread beats on its own schedule, so a silent
    worker is one whose *process* stopped making progress — a hard hang,
    a stop signal, severe starvation.  Supervision treats it exactly
    like a crash (quarantine + redispatch), but reports the deadline
    that expired and when the worker was last heard from, because a hung
    worker — unlike a dead one — is also force-killed to reclaim it.
    """

    def __init__(
        self,
        message: str = "",
        *,
        worker: "int | None" = None,
        reason: "str | None" = None,
        jobs_lost: "int | None" = None,
        deadline_s: "float | None" = None,
        last_seen_s: "float | None" = None,
    ) -> None:
        super().__init__(
            message, worker=worker, reason=reason, jobs_lost=jobs_lost
        )
        self.deadline_s = deadline_s
        self.last_seen_s = last_seen_s

    def __str__(self) -> str:
        base = super().__str__()
        extra = []
        if self.deadline_s is not None:
            extra.append(f"deadline={self.deadline_s}s")
        if self.last_seen_s is not None:
            extra.append(f"last_seen={self.last_seen_s:.3f}s ago")
        return f"{base} [{', '.join(extra)}]" if extra else base

    def _state(self) -> dict:
        state = super()._state()
        state.update(
            {"deadline_s": self.deadline_s, "last_seen_s": self.last_seen_s}
        )
        return state


class ServeError(ReproError):
    """The kernel-serving tier was misused or a service operation failed.

    Raised for bad service configuration, submissions to a closed
    service, and dispatch failures the service cannot attribute to the
    submitting tenant's own job.  Failures *inside* a tenant's job are
    not wrapped: the dispatcher stores the original
    :class:`GpuError`/:class:`KernelFault` on the tenant's future so a
    served run fails exactly like a direct one would."""


class QueueFull(ServeError):
    """A submission was refused by admission control (backpressure).

    Carries the structured context a client needs to retry sensibly:
    which ``tenant`` was refused, which limit (``scope`` is ``"tenant"``
    or ``"global"``), and ``retry_after_s`` — the service's estimate of
    when capacity frees up, derived from its observed service times.
    """

    def __init__(
        self,
        message: str = "",
        *,
        tenant: "str | None" = None,
        scope: str = "tenant",
        retry_after_s: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.scope = scope
        self.retry_after_s = retry_after_s

    def __str__(self) -> str:
        base = super().__str__()
        extra = [f"scope={self.scope}"]
        if self.tenant is not None:
            extra.append(f"tenant={self.tenant}")
        extra.append(f"retry_after={self.retry_after_s:.3f}s")
        return f"{base} [{', '.join(extra)}]"


class SessionClosed(ServeError):
    """A submission arrived on a closed :class:`repro.serve.Session`."""


class TuneError(ReproError):
    """The autotuner was misconfigured or a tuning operation failed.

    Raised for bad tuning configuration (non-positive budgets, unknown
    candidate engines) and for misuse of the tuning session API.  Kernel
    failures *during* candidate measurement are never wrapped in this:
    an infeasible candidate is simply discarded, and a device fault
    aborts the search so the real launch surfaces it through the normal
    path.
    """


class PlanCacheError(TuneError):
    """The persistent plan cache was misused (bad directory, bad key).

    Note the asymmetry with I/O problems: a *corrupted or
    schema-mismatched cache file* is never an error — it is ignored with
    a :class:`RuntimeWarning` and rebuilt, because a stale cache must
    not be able to take down a run that would succeed without one.
    """


class _StructuredError(ReproError):
    """Shared machinery for errors whose context must survive pickling.

    Subclasses declare their structured context in ``_FIELDS`` and
    inherit the (message, state) reduction, field-sensitive equality and
    the ``[k=v, ...]`` rendering.  The default BaseException reduction
    re-calls ``cls(*args)``, which would drop every keyword-only field,
    so this base reduces to (message, state) instead — the same contract
    :class:`LaunchError` and :class:`WorkerLost` implement by hand.

    Not exported: catch the concrete families (:class:`VendorError`,
    :class:`CheckpointError`, ...) instead.
    """

    _FIELDS: "tuple[str, ...]" = ()

    def __init__(self, message: str = "", **fields) -> None:
        super().__init__(message)
        for name in self._FIELDS:
            setattr(self, name, fields.pop(name, None))
        if fields:
            raise TypeError(
                f"{type(self).__name__} got unexpected fields: "
                f"{', '.join(sorted(fields))}"
            )

    def __str__(self) -> str:
        base = super().__str__()
        extra = [
            f"{name}={getattr(self, name)!r}"
            for name in self._FIELDS
            if getattr(self, name) is not None
        ]
        return f"{base} [{', '.join(extra)}]" if extra else base

    def _state(self) -> dict:
        return {name: getattr(self, name) for name in self._FIELDS}

    def __reduce__(self):
        return (type(self), (self.args[0] if self.args else "",), self._state())

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def __eq__(self, other) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.args == other.args and self._state() == other._state()

    def __ne__(self, other) -> bool:
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    def __hash__(self) -> int:
        return hash((type(self), self.args))


class VendorError(_StructuredError):
    """Base class for §3.6 vendor-library wrapper errors.

    Stream-bound handles run BLAS calls on stream worker threads and the
    cluster layer hands failures across processes, so — like
    :class:`LaunchError` — the structured context must survive pickling.
    Subclasses declare their context in ``_FIELDS`` and inherit the
    (message, state) reduction, field-sensitive equality and the
    ``[k=v, ...]`` rendering.
    """


class BlasDimensionError(VendorError):
    """A BLAS argument violates its dimension contract.

    Covers the classic cuBLAS ``CUBLAS_STATUS_INVALID_VALUE`` family: a
    leading dimension smaller than the matrix's row count, a vector
    increment below one, or a negative batch count.  ``param`` names the
    offending argument (``"lda"``, ``"incx"``, ``"batch_count"``, ...),
    ``value`` is what the caller passed and ``minimum`` the smallest
    legal value for this call; ``op`` is the BLAS entry point.
    """

    _FIELDS = ("op", "param", "value", "minimum")


class UnknownVendorError(VendorError):
    """No BLAS backend is registered for a device's vendor tag.

    ``vendor`` is the tag that failed to dispatch; ``known`` lists the
    tags the registry can serve (extend it with
    :func:`repro.ompx.vendor.register_backend`).
    """

    _FIELDS = ("vendor", "known")


class HandleDestroyedError(VendorError):
    """A BLAS call arrived on a destroyed handle (use-after-destroy).

    Mirrors ``CUBLAS_STATUS_NOT_INITIALIZED``: after
    ``ompxblas_destroy`` the handle is invalid, and any further call —
    including a second destroy — reports the ``op`` attempted and the
    ``device`` ordinal the handle belonged to, instead of silently
    computing on a dangling context.
    """

    _FIELDS = ("op", "device")


class CheckpointError(_StructuredError):
    """The checkpoint layer was misused or a checkpoint operation failed.

    Raised for bad :class:`repro.ckpt.CheckpointSession` configuration
    (a directory path occupied by a regular file, a non-positive
    cadence) and for resume-identity mismatches: resuming a chain that
    was written by a *different* run (other app, variant, params digest,
    shard count, or fault plan) is an error, never a silent restart,
    because the snapshots would be meaningless for the new run.

    Chains cross process boundaries (the supervisor that resumes is a
    fresh process, and chaos tests hand failures back over pipes), so —
    like :class:`VendorError` — the structured context must survive
    pickling.  ``path`` names the checkpoint file or directory involved.
    """

    _FIELDS = ("path",)


class CorruptCheckpointError(CheckpointError):
    """A snapshot file failed validation when read back.

    Covers every way bytes on disk can lie: a truncated payload
    (``length`` short of the header's promise), a digest mismatch
    (bit-rot or an injected ``checkpoint_read`` corruption), an
    unparseable header, or an unknown schema version.  The reader treats
    this as a *fallback* signal — older snapshots in the chain are tried
    before the run restarts from step zero — so in normal operation this
    error is caught, logged as a :class:`RuntimeWarning`, and counted,
    not surfaced.

    ``step`` is the snapshot's step index if the header survived,
    ``reason`` the validation stage that failed, and
    ``expected_digest``/``actual_digest`` the content fingerprints when
    the mismatch was digest-level.
    """

    _FIELDS = ("path", "step", "reason", "expected_digest", "actual_digest")


class AppError(ReproError):
    """A benchmark application failed (bad arguments, failed checksum)."""
