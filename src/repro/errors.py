"""Exception hierarchy shared across the :mod:`repro` package.

Every subsystem raises exceptions rooted at :class:`ReproError` so callers
can catch library failures without also swallowing programming errors from
their own code.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GpuError",
    "LaunchError",
    "MemoryError_",
    "InvalidPointerError",
    "OutOfMemoryError",
    "SyncError",
    "CompileError",
    "OpenMPError",
    "MappingError",
    "DependenceError",
    "InteropError",
    "PortError",
    "PerfModelError",
    "AppError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GpuError(ReproError):
    """Base class for errors raised by the virtual GPU substrate."""


class LaunchError(GpuError):
    """A kernel launch configuration is invalid for the target device.

    Engine guard rails attach structured context so callers (and error
    messages) can name the refusing engine, its cap, the requested size
    and the suggested remediation path.  The launch path additionally
    attaches the selected engine and the engine-plan memoization key
    (``key``) so error text agrees with what trace spans and the profile
    summary report for the same launch.
    """

    def __init__(
        self,
        message: str = "",
        *,
        engine: "str | None" = None,
        cap: "int | None" = None,
        requested: "int | None" = None,
        hint: "str | None" = None,
        key: "tuple | None" = None,
    ) -> None:
        super().__init__(message)
        self.engine = engine
        self.cap = cap
        self.requested = requested
        self.hint = hint
        self.key = key

    def __str__(self) -> str:
        base = super().__str__()
        extra = []
        if self.engine is not None:
            extra.append(f"engine={self.engine}")
        if self.key is not None:
            extra.append(f"plan_key={self.key!r}")
        return f"{base} [{', '.join(extra)}]" if extra else base


class MemoryError_(GpuError):
    """Base class for device memory errors.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError`.
    """


class InvalidPointerError(MemoryError_):
    """A device pointer does not refer to a live allocation."""


class OutOfMemoryError(MemoryError_):
    """The device allocator cannot satisfy a request."""


class SyncError(GpuError):
    """A synchronization primitive was used incorrectly.

    Examples: barrier divergence inside a thread block, or a warp
    collective executed by only part of a warp without a matching mask.
    """


class CompileError(ReproError):
    """The compiler model rejected a kernel/toolchain combination."""


class OpenMPError(ReproError):
    """Base class for errors raised by the OpenMP runtime model."""


class MappingError(OpenMPError):
    """An inconsistent map clause or device data environment operation."""


class DependenceError(OpenMPError):
    """An invalid ``depend`` clause (unknown type, bad item, cycle)."""


class InteropError(OpenMPError):
    """An interop object was used before init or after destroy."""


class PortError(ReproError):
    """The CUDA->ompx source translator could not translate an input."""


class PerfModelError(ReproError):
    """The performance model received inconsistent inputs."""


class AppError(ReproError):
    """A benchmark application failed (bad arguments, failed checksum)."""
