"""Hot-path dispatch-overhead profiling.

At serving scale the Python dispatcher *is* the hardware: the simulated
kernels are cheap, so time-per-launch of ``launch_kernel``'s own
bookkeeping (placement resolution, geometry validation, cache lookup)
is the number the tune subsystem must not regress.  The launch path
records it here whenever a tuning session is active — search time is
excluded (the launch that pays for a search reports only its dispatch
share), so warm-cache and untuned dispatch are directly comparable.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

__all__ = ["DispatchProfiler"]


class DispatchProfiler:
    """Thread-safe accumulator of per-launch dispatch nanoseconds."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0
        self._total_ns = 0
        self._min_ns: Optional[int] = None
        self._max_ns = 0

    def record(self, ns: int) -> None:
        """Fold one launch's dispatch time (nanoseconds) into the stats."""
        ns = max(int(ns), 0)
        with self._lock:
            self._count += 1
            self._total_ns += ns
            self._max_ns = max(self._max_ns, ns)
            self._min_ns = ns if self._min_ns is None else min(self._min_ns, ns)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def mean_us(self) -> float:
        """Mean dispatch time per launch, in microseconds."""
        with self._lock:
            if self._count == 0:
                return 0.0
            return self._total_ns / self._count / 1e3

    def summary(self) -> Dict[str, float]:
        """Snapshot: launches plus total/mean/min/max microseconds."""
        with self._lock:
            count = self._count
            total = self._total_ns
            low = self._min_ns or 0
            high = self._max_ns
        return {
            "launches": count,
            "total_us": total / 1e3,
            "mean_us": (total / count / 1e3) if count else 0.0,
            "min_us": low / 1e3,
            "max_us": high / 1e3,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DispatchProfiler(launches={self.count}, "
            f"mean_us={self.mean_us:.2f})"
        )
