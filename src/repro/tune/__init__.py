"""repro.tune — trace-guided autotuning with a persistent plan cache.

The subsystem that closes the predict -> measure -> commit loop
(ROADMAP item 2): :mod:`repro.perf` predicts candidate execution plans,
real launches measure them with :class:`~repro.gpu.engine.KernelStats`
feedback, and the winner is persisted in a :class:`PlanCache` keyed on
(kernel identity, launch geometry, device spec, toolchain version) so
later runs — and later *processes* — dispatch straight to the tuned
engine with zero derivation.

Typical use::

    from repro import tune

    with tune.tuning():                      # or: --tune on the CLI
        run(app)                             # first run searches + caches
        run(app)                             # second run: cache hits only

    session = tune.enable(cache_dir="/tmp/plans")   # long-lived services
    ...
    tune.disable()                                   # saves the cache

Key invariants:

* **Bit identity.**  Tuning selects among engines that are bit-identical
  by construction (the PR-1 equivalence guarantee) and never re-shapes a
  launch, so ``--tune`` output equals untuned output exactly.
* **Crash safety.**  The cache file is schema-versioned, written
  atomically, and a corrupted file is ignored with a
  :class:`RuntimeWarning` — never an error.
* **Zero cost when disabled.**  The launch hot path does one global
  read; no tune module is even imported until a session is installed.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from ..errors import PlanCacheError, TuneError
from .cache import SCHEMA_VERSION, Plan, PlanCache, default_cache_dir
from .key import (
    device_fingerprint,
    kernel_identity,
    plan_cache_key,
    toolchain_version,
)
from .overhead import DispatchProfiler
from .session import COUNTER_NAMES, TuneSession
from .state import active_session, set_session
from .tuner import ENGINE_PRIORS, Autotuner

__all__ = [
    "TuneError",
    "PlanCacheError",
    "SCHEMA_VERSION",
    "Plan",
    "PlanCache",
    "default_cache_dir",
    "plan_cache_key",
    "kernel_identity",
    "device_fingerprint",
    "toolchain_version",
    "Autotuner",
    "ENGINE_PRIORS",
    "DispatchProfiler",
    "TuneSession",
    "COUNTER_NAMES",
    "active_session",
    "enable",
    "disable",
    "tuning",
    "warm",
]


def enable(
    cache_dir: Optional[str] = None,
    *,
    budget: int = 4,
    seed: int = 0,
    toolchain: Optional[str] = None,
) -> TuneSession:
    """Install a process-wide tuning session; returns it.

    Raises :class:`TuneError` if one is already active — nested owners
    must either share the active session (check :func:`active_session`)
    or scope themselves with :func:`tuning`.
    """
    if active_session() is not None:
        raise TuneError(
            "a tuning session is already active; call repro.tune.disable() "
            "first or share the existing session"
        )
    session = TuneSession(
        cache_dir, budget=budget, seed=seed, toolchain=toolchain
    )
    set_session(session)
    return session


def disable() -> Optional[TuneSession]:
    """Uninstall the active session (saving its cache); returns it."""
    session = set_session(None)
    if session is not None:
        session.save()
    return session


@contextmanager
def tuning(
    cache_dir: Optional[str] = None,
    *,
    budget: int = 4,
    seed: int = 0,
    toolchain: Optional[str] = None,
) -> Iterator[TuneSession]:
    """Scoped tuning: enable on entry, save + restore on exit.

    Unlike :func:`enable` this composes with an already-active session
    by reusing it (the common case when ``--tune`` wraps a serving tier
    that also asked for tuning).
    """
    existing = active_session()
    if existing is not None:
        yield existing
        return
    session = enable(cache_dir, budget=budget, seed=seed, toolchain=toolchain)
    try:
        yield session
    finally:
        if active_session() is session:
            disable()
        else:  # someone swapped sessions underneath; still persist ours
            session.save()


def warm(pool, kernel, config, args=(), *, args_factory=None, session=None):
    """Pre-tune one launch for every distinct device spec in a pool.

    Pool workers read per-device-spec cache entries (the spec
    fingerprint is part of the key), so warming once per *spec* — not
    per device — is enough for a mixed A100/MI250 pool to dispatch every
    shard from the cache.  ``args_factory(device) -> args`` builds
    per-device arguments when the launch needs live device pointers;
    plain ``args`` covers pointer-free launches.  Returns
    ``{spec name: engine name}``.
    """
    session = session or active_session()
    if session is None:
        raise TuneError(
            "tune.warm() needs an active tuning session; call "
            "repro.tune.enable() (or pass session=) first"
        )
    plans = {}
    for device in pool.distinct_specs():
        launch_args = args_factory(device) if args_factory is not None else args
        engine, _ = session.resolve(kernel, config, launch_args, device)
        plans[device.spec.name] = engine.name if engine is not None else None
    return plans
