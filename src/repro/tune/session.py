"""TuneSession: the live tuning state the launch fast path consults.

One session owns a :class:`~repro.tune.cache.PlanCache`, an
:class:`~repro.tune.tuner.Autotuner`, a
:class:`~repro.tune.overhead.DispatchProfiler`, and the ``tune_*``
counters.  Install it with :func:`repro.tune.enable` (or the
``tuning()`` context manager) and every
:func:`~repro.gpu.launch.launch_kernel` call without an explicit engine
pin resolves its engine here:

* **hit** — the persisted plan supplies the engine; zero derivation and
  zero tuning launches (the second-process acceptance criterion).
* **miss** — a search runs (budget-bounded, seeded, side-effect free)
  and the winner is **promoted** into the cache, which is saved
  immediately so concurrent processes see it.

Searches are skipped — and the engine-selection derived plan cached
instead — whenever measurement could perturb semantics: a fault plan or
the memcheck sanitizer is active (probe launches would consume injection
triggers and break seeded replay), or an argument is opaque (its side
effects could not be rolled back).  Either way the cached plan equals
what an untuned run would execute, preserving bit-identity.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Sequence, Tuple

from ..trace import get_tracer
from .cache import Plan, PlanCache
from .key import plan_cache_key
from .overhead import DispatchProfiler
from .tuner import Autotuner, SearchAborted, searchable_args

__all__ = ["TuneSession", "COUNTER_NAMES"]

#: The trace-counter names the acceptance criteria key off.
COUNTER_NAMES = (
    "tune_hits",
    "tune_misses",
    "tune_searches",
    "tune_promotes",
    "tune_uncacheable",
)


def _injection_active() -> bool:
    from ..faults.inject import active_plan
    from ..faults.memcheck import get_memcheck

    return active_plan() is not None or get_memcheck() is not None


class TuneSession:
    """Everything ``--tune`` turns on, bundled for one process/service."""

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        *,
        budget: int = 4,
        seed: int = 0,
        toolchain: Optional[str] = None,
    ) -> None:
        self.cache = PlanCache(cache_dir)
        self.tuner = Autotuner(budget=budget, seed=seed)
        self.toolchain = toolchain
        self.overhead = DispatchProfiler()
        self._counters: Dict[str, int] = {name: 0 for name in COUNTER_NAMES}
        self._counter_lock = threading.Lock()
        # One search at a time: concurrent launches of the same cold
        # kernel (serving dispatchers, pool workers) must not race
        # duplicate measurements; the loser of the lock re-checks the
        # cache and takes the winner's plan as a hit.
        self._search_lock = threading.Lock()

    # -- counters ------------------------------------------------------

    def _bump(self, name: str) -> None:
        with self._counter_lock:
            self._counters[name] += 1
        tracer = get_tracer()
        if tracer is not None:
            tracer.counter(name)

    def counters(self) -> Dict[str, int]:
        """Snapshot of the ``tune_*`` counters."""
        with self._counter_lock:
            return dict(self._counters)

    # -- the launch fast path ------------------------------------------

    def resolve(self, kernel, config, args: Sequence, device) -> Tuple[object, int]:
        """Resolve the engine for one launch; returns ``(engine, search_ns)``.

        ``engine`` is ``None`` when the launch is uncacheable (no stable
        kernel identity) — the caller falls through to ordinary
        selection.  ``search_ns`` is the time spent in this call, which
        the dispatch-overhead profiler subtracts so a launch that paid
        for a cold search does not skew the per-launch dispatch figure.
        """
        from ..gpu.engine import _ENGINES_BY_NAME

        begin = time.perf_counter_ns()
        key = plan_cache_key(
            kernel, config.grid, config.block, config.shared_bytes,
            device.spec, toolchain=self.toolchain,
        )
        if key is None:
            self._bump("tune_uncacheable")
            return None, time.perf_counter_ns() - begin
        plan = self.cache.get(key)
        engine = _ENGINES_BY_NAME.get(plan.engine) if plan is not None else None
        if engine is not None:
            self._bump("tune_hits")
            return engine, time.perf_counter_ns() - begin
        self._bump("tune_misses")
        with self._search_lock:
            plan = self.cache.get(key)
            engine = _ENGINES_BY_NAME.get(plan.engine) if plan is not None else None
            if engine is not None:
                # A concurrent launch searched while we waited.
                self._bump("tune_hits")
                return engine, time.perf_counter_ns() - begin
            engine = self._plan_and_promote(kernel, config, args, device, key)
        return engine, time.perf_counter_ns() - begin

    def _plan_and_promote(self, kernel, config, args, device, key: str):
        from ..gpu.engine import _ENGINES_BY_NAME, select_engine

        reason = None
        if _injection_active():
            reason = "fault injection or memcheck active"
        elif not searchable_args(args):
            reason = "opaque argument state"
        if reason is None:
            self._bump("tune_searches")
            try:
                plan = self.tuner.search(kernel, config, args, device)
            except SearchAborted:
                # A device fault fired mid-probe; do not cache anything
                # and let the real launch surface (and poison with) it.
                return select_engine(kernel, device, config.block)
        else:
            derived = select_engine(kernel, device, config.block)
            plan = Plan(
                engine=derived.name,
                grid=config.grid.as_tuple(),
                block=config.block.as_tuple(),
                shared_bytes=config.shared_bytes,
                flags={"searched": False, "reason": reason},
            )
        self.cache.put(key, plan)
        self._bump("tune_promotes")
        self.cache.save()
        return _ENGINES_BY_NAME[plan.engine]

    # -- lifecycle / reporting -----------------------------------------

    def save(self) -> None:
        """Flush the plan cache to disk (idempotent)."""
        self.cache.save()

    def summary(self) -> Dict[str, object]:
        """Counters + dispatch overhead + cache shape, for CLI/stats."""
        return {
            "counters": self.counters(),
            "dispatch": self.overhead.summary(),
            "cache_dir": self.cache.cache_dir,
            "cached_plans": len(self.cache),
        }

    def describe(self) -> str:
        """One-paragraph human rendering of :meth:`summary`."""
        counters = self.counters()
        dispatch = self.overhead.summary()
        return (
            f"tune: {counters['tune_hits']} hit(s), "
            f"{counters['tune_misses']} miss(es), "
            f"{counters['tune_searches']} search(es), "
            f"{counters['tune_promotes']} promote(s); "
            f"{len(self.cache)} plan(s) in {self.cache.cache_dir}; "
            f"dispatch {dispatch['mean_us']:.1f} us/launch over "
            f"{int(dispatch['launches'])} launch(es)"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TuneSession cache={self.cache.cache_dir!r} {self.counters()}>"
