"""The persistent compiled-plan cache.

A :class:`PlanCache` maps :func:`~repro.tune.key.plan_cache_key` strings
to :class:`Plan` records — the chosen engine, the launch geometry the
plan was tuned for, and specialization flags — persisted as one JSON
file (``plans.json``) under a configurable cache directory.

Durability contract (the serving tier depends on every clause):

* **Versioned schema.**  The file carries ``schema`` and is discarded
  wholesale on mismatch — old caches are rebuilt, never migrated.
* **Corruption is a warning, not an error.**  A truncated, garbage or
  wrong-shape file is ignored with a :class:`RuntimeWarning` and
  rebuilt.  A stale cache must never take down a run that would succeed
  without one (:class:`~repro.errors.PlanCacheError` is reserved for
  *misuse*: a cache path that is a file, an unwritable directory).
* **Atomic publication.**  Saves write a sibling temp file and
  ``os.replace`` it over ``plans.json``, so a reader never observes a
  half-written file even mid-crash.
* **Merge-on-save.**  Before replacing, the on-disk file is re-read and
  unknown entries are merged in, so two processes tuning different
  kernels against one cache dir both keep their work (last writer wins
  only on identical keys).
* **In-process locking.**  All cache instances for the same resolved
  path share one :class:`threading.Lock`, serializing concurrent
  serving sessions in one process.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import PlanCacheError

__all__ = ["SCHEMA_VERSION", "Plan", "PlanCache", "default_cache_dir"]

#: Bump when the on-disk layout changes; mismatched files are rebuilt.
SCHEMA_VERSION = 1

_FILENAME = "plans.json"

#: One lock per resolved cache file path, shared by every PlanCache
#: instance in the process (serving sessions each construct their own).
_PATH_LOCKS: Dict[str, threading.Lock] = {}
_PATH_LOCKS_GUARD = threading.Lock()


def default_cache_dir() -> str:
    """The cache directory used when ``--tune-cache`` is not given."""
    root = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(root, "repro", "tune")


def _lock_for(path: str) -> threading.Lock:
    with _PATH_LOCKS_GUARD:
        lock = _PATH_LOCKS.get(path)
        if lock is None:
            lock = _PATH_LOCKS[path] = threading.Lock()
        return lock


@dataclass(frozen=True)
class Plan:
    """One tuned execution plan: the decision, not the measurement.

    ``engine`` is the execution engine name (``"vector"``, ``"map"``,
    ``"block-thread"``, ...); ``grid``/``block``/``shared_bytes`` record
    the geometry the plan was tuned for (the tuner never re-shapes a
    launch, so these always equal the key's geometry — they are stored
    so a cache file is self-describing); ``flags`` carries
    specialization metadata (``searched``, candidate count, the winning
    measured nanoseconds) for reporting and tests.
    """

    engine: str
    grid: Tuple[int, ...]
    block: Tuple[int, ...]
    shared_bytes: int = 0
    flags: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> dict:
        """JSON-serializable dict form (inverse of :meth:`from_json`)."""
        return {
            "engine": self.engine,
            "grid": list(self.grid),
            "block": list(self.block),
            "shared_bytes": self.shared_bytes,
            "flags": dict(self.flags),
        }

    @classmethod
    def from_json(cls, obj: dict) -> "Plan":
        return cls(
            engine=str(obj["engine"]),
            grid=tuple(int(d) for d in obj["grid"]),
            block=tuple(int(d) for d in obj["block"]),
            shared_bytes=int(obj.get("shared_bytes", 0)),
            flags=dict(obj.get("flags", {})),
        )


class PlanCache:
    """A persistent key -> :class:`Plan` store under one cache directory."""

    def __init__(self, cache_dir: Optional[str] = None) -> None:
        self.cache_dir = os.path.abspath(cache_dir or default_cache_dir())
        if os.path.exists(self.cache_dir) and not os.path.isdir(self.cache_dir):
            raise PlanCacheError(
                f"plan cache path exists and is not a directory: {self.cache_dir!r}"
            )
        self.path = os.path.join(self.cache_dir, _FILENAME)
        self._lock = _lock_for(self.path)
        self._plans: Dict[str, Plan] = {}
        self._dirty = False
        self._cleared = False
        self._load()

    # -- persistence ---------------------------------------------------

    def _read_file(self, *, warn: bool) -> Optional[Dict[str, Plan]]:
        """Parse the on-disk file; ``None`` for absent/invalid content."""
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                raw = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            if warn:
                warnings.warn(
                    f"ignoring unreadable plan cache {self.path!r} "
                    f"({exc}); it will be rebuilt",
                    RuntimeWarning,
                    stacklevel=4,
                )
            return None
        try:
            if raw.get("schema") != SCHEMA_VERSION:
                if warn:
                    warnings.warn(
                        f"ignoring plan cache {self.path!r} with schema "
                        f"{raw.get('schema')!r} (expected {SCHEMA_VERSION}); "
                        f"it will be rebuilt",
                        RuntimeWarning,
                        stacklevel=4,
                    )
                return None
            return {
                str(k): Plan.from_json(v) for k, v in raw["plans"].items()
            }
        except (AttributeError, KeyError, TypeError, ValueError) as exc:
            if warn:
                warnings.warn(
                    f"ignoring malformed plan cache {self.path!r} "
                    f"({exc!r}); it will be rebuilt",
                    RuntimeWarning,
                    stacklevel=4,
                )
            return None

    def _load(self) -> None:
        with self._lock:
            loaded = self._read_file(warn=True)
            if loaded:
                self._plans.update(loaded)

    def save(self) -> None:
        """Atomically publish in-memory plans, merging concurrent writers."""
        with self._lock:
            if not self._dirty:
                return
            os.makedirs(self.cache_dir, exist_ok=True)
            # Merge-on-save: adopt entries another process published since
            # we loaded, then overlay our own (ours win on shared keys).
            # An explicit clear() is the one exception — it means "drop
            # everything", so the next save must not resurrect the file.
            if self._cleared:
                self._cleared = False
            else:
                on_disk = self._read_file(warn=False) or {}
                on_disk.update(self._plans)
                self._plans = on_disk
            payload = {
                "schema": SCHEMA_VERSION,
                "plans": {k: p.to_json() for k, p in self._plans.items()},
            }
            fd, tmp = tempfile.mkstemp(
                prefix=_FILENAME + ".", dir=self.cache_dir
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh, indent=1, sort_keys=True)
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self._dirty = False

    # -- access --------------------------------------------------------

    def get(self, key: Optional[str]) -> Optional[Plan]:
        """The cached :class:`Plan` for ``key`` (``None``-key safe)."""
        if key is None:
            return None
        with self._lock:
            return self._plans.get(key)

    def put(self, key: str, plan: Plan) -> None:
        """Store ``plan`` under ``key``; persisted by the next :meth:`save`."""
        if not isinstance(key, str) or not key:
            raise PlanCacheError(f"plan cache keys are non-empty strings, got {key!r}")
        with self._lock:
            self._plans[key] = plan
            self._dirty = True

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._plans

    def keys(self):
        """Snapshot list of every cached key."""
        with self._lock:
            return list(self._plans)

    def clear(self) -> None:
        """Drop every plan; the next :meth:`save` truncates the file too."""
        with self._lock:
            self._plans.clear()
            self._dirty = True
            self._cleared = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlanCache({self.cache_dir!r}, entries={len(self)})"
