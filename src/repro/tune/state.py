"""The process-global tuning session slot.

This module exists so the launch hot path (:mod:`repro.gpu.launch`) can
ask "is tuning on?" without importing the rest of :mod:`repro.tune` —
the same zero-cost-when-disabled contract the tracer follows: the
disabled path is one global read and an ``is None`` test, and no tuning
module is imported until a session is actually installed.

It deliberately imports nothing from the gpu/perf layers (they import
*us*), which is what keeps the tune <-> launch dependency acyclic.
"""

from __future__ import annotations

import threading
from typing import Optional

__all__ = ["active_session", "set_session"]

_lock = threading.Lock()
_active = None


def active_session():
    """The installed :class:`~repro.tune.TuneSession`, or ``None``."""
    return _active


def set_session(session) -> Optional[object]:
    """Install (or with ``None``, clear) the process tuning session.

    Returns the previously installed session so callers can detect a
    double-enable and restore on teardown.
    """
    global _active
    with _lock:
        previous = _active
        _active = session
        return previous
