"""Plan-cache keys: what makes two launches "the same tuning problem".

A cached plan is only transferable between launches that agree on every
input the plan decision depended on (the Fridman et al. portability
study in PAPERS.md is blunt about this: tuned choices do not transfer
across accelerators).  The key therefore covers:

* **kernel identity** — module-qualified name *plus a source hash*, so
  editing a kernel's body invalidates its plans without any manual
  version bump;
* **problem shape/geometry** — grid, block and dynamic-shared bytes of
  the requested launch (the tuner never silently re-shapes a launch;
  geometry is part of the problem statement);
* **device spec** — a fingerprint over every architectural field of the
  :class:`~repro.gpu.device.DeviceSpec`, so an A100 plan is invisible
  on an MI250 and a *re-parameterized* A100 (e.g. a bandwidth recal)
  re-tunes;
* **toolchain version** — plans are artifacts of the stack that
  produced them; a version bump invalidates everything at once.

Keys are plain strings so they survive the JSON round trip unchanged.
"""

from __future__ import annotations

import hashlib
import inspect
from dataclasses import fields
from typing import Callable, Optional
from weakref import WeakKeyDictionary

from .. import __version__ as _repro_version

__all__ = [
    "kernel_identity",
    "device_fingerprint",
    "toolchain_version",
    "plan_cache_key",
]

#: Stack version stamped into every cache key.  Derived from the package
#: version; bump ``_PLAN_REVISION`` when a change invalidates existing
#: plans without a release (e.g. an engine-selection semantics change).
_PLAN_REVISION = 1

#: Memoized per-kernel identity strings — source hashing is not free and
#: the launch fast path computes a key per launch.
_IDENTITY_MEMO: "WeakKeyDictionary[Callable, str]" = WeakKeyDictionary()

#: Memoized per-spec fingerprints, keyed by the (frozen, hashable) spec.
_SPEC_MEMO: dict = {}


def toolchain_version() -> str:
    """The toolchain/stack version cached plans are keyed under."""
    return f"repro-{_repro_version}+plan{_PLAN_REVISION}"


def _source_hash(fn: Callable) -> str:
    try:
        source = inspect.getsource(fn)
    except (OSError, TypeError):
        # No retrievable source (REPL lambdas, C callables): fall back to
        # the name alone.  Such kernels still cache; they just will not
        # self-invalidate on edit.
        return "nosrc"
    return hashlib.sha256(source.encode()).hexdigest()[:12]


def kernel_identity(kernel: Callable) -> Optional[str]:
    """Stable identity of the kernel *function* (through its wrappers).

    ``None`` for objects that cannot be identified (or weak-referenced),
    which makes the launch untunable — it is planned fresh every time,
    exactly like :func:`~repro.gpu.engine.plan_key` treats unhashable
    kernels.
    """
    entry = getattr(kernel, "entry", kernel)
    fn = getattr(entry, "fn", None) or entry
    try:
        cached = _IDENTITY_MEMO.get(fn)
    except TypeError:
        return None
    if cached is not None:
        return cached
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if module is None or qualname is None:
        return None
    identity = f"{module}:{qualname}#{_source_hash(fn)}"
    try:
        _IDENTITY_MEMO[fn] = identity
    except TypeError:
        pass
    return identity


def device_fingerprint(spec) -> str:
    """A short digest over every field of a :class:`DeviceSpec`.

    Any architectural difference — not just the name — changes the
    fingerprint, so two specs that merely *share a name* never share
    plans.
    """
    cached = _SPEC_MEMO.get(spec)
    if cached is not None:
        return cached
    body = hashlib.sha256()
    for f in fields(spec):
        body.update(f.name.encode())
        body.update(repr(getattr(spec, f.name)).encode())
    fingerprint = f"{spec.name}@{body.hexdigest()[:12]}"
    _SPEC_MEMO[spec] = fingerprint
    return fingerprint


def plan_cache_key(
    kernel: Callable,
    grid,
    block,
    shared_bytes: int,
    spec,
    *,
    toolchain: Optional[str] = None,
) -> Optional[str]:
    """The persistent cache key for one (kernel, shape, device, toolchain).

    ``None`` when the kernel has no stable identity (never cached).
    ``toolchain`` defaults to :func:`toolchain_version`; tests pass an
    explicit value to exercise invalidation-on-bump.
    """
    identity = kernel_identity(kernel)
    if identity is None:
        return None
    grid_t = grid.as_tuple() if hasattr(grid, "as_tuple") else tuple(grid)
    block_t = block.as_tuple() if hasattr(block, "as_tuple") else tuple(block)
    return "|".join((
        identity,
        "g" + "x".join(str(d) for d in grid_t),
        "b" + "x".join(str(d) for d in block_t),
        f"s{int(shared_bytes)}",
        device_fingerprint(spec),
        toolchain or toolchain_version(),
    ))
