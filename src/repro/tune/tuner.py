"""The autotuner: model-seeded, measurement-committed engine search.

The search closes the loop ROADMAP item 2 describes: the perf model
(:mod:`repro.perf.occupancy` / :mod:`repro.perf.roofline`) *predicts* a
candidate ordering, real launches *measure* it, and the winner is
committed as a :class:`~repro.tune.cache.Plan`.  Concretely:

1. **Candidates** are the execution engines that can run this kernel at
   all — derived from the same declared flags and static analysis
   :func:`~repro.gpu.engine.select_engine` consults, plus each engine's
   thread-count guard rail.  The tuner never re-shapes the launch:
   grid/block/shared are part of the problem statement (and of the cache
   key), so every candidate is bit-identical by the PR-1 engine
   equivalence guarantee — which is what makes ``--tune`` runs safe to
   compare checksum-for-checksum against untuned runs.
2. **Prediction** orders candidates by a per-engine simulator-throughput
   prior scaled by the occupancy saturation of the requested geometry,
   with a deterministic seeded jitter breaking ties.  Predictions are
   recorded via :meth:`~repro.trace.Tracer.prediction` so trace exports
   can join predicted-vs-observed per candidate (the PR-2 feature).
3. **Measurement** runs the top ``budget`` candidates for real, on the
   real arguments, between a device-memory snapshot and restore — so a
   non-idempotent kernel (Adam's in-place moment updates) measures
   safely and the subsequent committed launch starts from pristine
   state.  Time is wall-clock of the simulator: on this substrate the
   interpreter *is* the hardware, and the 40-250x engine spread is
   exactly what is being tuned.

A candidate that fails its guard rail or raises from the kernel body is
discarded (the launch path would have the same problem; the search just
learned it early).  A :class:`~repro.errors.KernelFault` aborts the
whole search instead — faults must poison the device through the real
launch path, not be half-observed by a measurement probe.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import KernelFault, LaunchError, PerfModelError, TuneError
from ..gpu.engine import (
    _ENGINES_BY_NAME,
    _MAX_COOPERATIVE_THREADS,
    _MAX_MAP_THREADS,
    _MAX_VECTOR_THREADS,
    _analyze_or_none,
    select_engine,
)
from ..trace import get_tracer
from .cache import Plan

__all__ = ["Autotuner", "SearchAborted", "ENGINE_PRIORS"]

#: Relative simulator throughput of each engine — the PR-1 benchmark
#: ordering (vector 40-250x over block-thread; map ~ a few x).  These
#: seed the *search order* only; measurement decides the winner.
ENGINE_PRIORS: Dict[str, float] = {
    "vector": 250.0,
    "wave": 40.0,
    "map": 3.0,
    "block-thread": 1.0,
}

_ENGINE_CAPS: Dict[str, int] = {
    "block-thread": _MAX_COOPERATIVE_THREADS,
    "map": _MAX_MAP_THREADS,
    "vector": _MAX_VECTOR_THREADS,
    "wave": _MAX_VECTOR_THREADS,
}

#: Register pressure assumed for occupancy seeding when the kernel has
#: not been through the compiler model (typical for functional runs).
_DEFAULT_REGISTERS = 32


class SearchAborted(Exception):
    """Internal: a device fault fired during candidate measurement.

    Not a :class:`~repro.errors.TuneError` and never user-visible: the
    session catches it, skips caching, and lets the real launch
    reproduce (and properly poison the device with) the fault.
    """


def _kernel_flags(kernel: Callable) -> Tuple[bool, object]:
    # Same attribute lookups select_engine's _plan does, so the tuner and
    # the automatic path always agree about what the kernel declared.
    return (
        bool(getattr(kernel, "sync_free", False)),
        getattr(kernel, "vectorize", None),
    )


class Autotuner:
    """Engine search with a tunable budget and seeded deterministic order."""

    def __init__(
        self,
        *,
        budget: int = 4,
        seed: int = 0,
        registers_per_thread: int = _DEFAULT_REGISTERS,
    ) -> None:
        if budget < 1:
            raise TuneError(f"exploration budget must be >= 1, got {budget}")
        if registers_per_thread < 1:
            raise TuneError(
                f"registers_per_thread must be >= 1, got {registers_per_thread}"
            )
        self.budget = budget
        self.seed = seed
        self.registers_per_thread = registers_per_thread

    # -- candidate enumeration ----------------------------------------

    def candidates(self, kernel: Callable, config, device) -> List[str]:
        """Engine names that can correctly execute this launch.

        Mirrors :func:`~repro.gpu.engine.select_engine`'s reasoning, but
        keeps *every* legal engine instead of picking one: block-thread
        is always legal (full SIMT reference); map needs a sync-free
        body; vector/wave need the static analysis to prove the kernel
        batchable.  Each engine's thread guard rail filters by size.
        ``vectorize=False`` pins the legacy engines, exactly as it does
        for automatic selection.
        """
        sync_free, vectorize = _kernel_flags(kernel)
        traits = _analyze_or_none(kernel)
        names = ["block-thread"]
        barrier_free = traits is not None and not (
            traits.uses_barrier or traits.uses_shared or traits.uses_warp_collectives
        )
        if sync_free or barrier_free:
            names.append("map")
        if vectorize is not False and traits is not None and traits.vectorizable \
                and not (traits.uses_warp_collectives or traits.uses_atomics):
            if not (traits.uses_barrier or traits.uses_shared):
                names.append("vector")
            names.append("wave")
        total = config.total_threads
        feasible = [n for n in names if total <= _ENGINE_CAPS[n]]
        derived = select_engine(kernel, device, config.block).name
        if derived not in feasible and total <= _ENGINE_CAPS.get(derived, 0):
            feasible.append(derived)
        return feasible

    # -- prediction ----------------------------------------------------

    def predicted_order(
        self, kernel: Callable, config, device, names: Sequence[str]
    ) -> List[Tuple[str, float]]:
        """``(engine, predicted score)`` best-first, deterministically.

        Score = engine throughput prior x occupancy saturation of the
        requested geometry (cooperative engines live or die by
        residency; the model supplies the knee).  The seeded jitter is a
        sub-percent perturbation: it fixes the order among engines the
        model cannot separate without ever overriding a real gap.
        """
        from ..perf.occupancy import compute_occupancy
        from ..perf.roofline import saturation

        try:
            occ = compute_occupancy(
                device.spec,
                config.block.volume,
                self.registers_per_thread,
                config.shared_bytes,
            )
            sat = saturation(occ.occupancy)
        except PerfModelError:
            sat = 0.5  # geometry outside the model's envelope; order by prior
        rng = random.Random(self.seed)
        scored = [
            (name, ENGINE_PRIORS.get(name, 1.0) * sat * (1.0 + 1e-3 * rng.random()))
            for name in names
        ]
        scored.sort(key=lambda item: -item[1])
        return scored

    # -- measurement ---------------------------------------------------

    def search(self, kernel: Callable, config, args: Sequence, device) -> Plan:
        """Measure candidates and commit the fastest as a :class:`Plan`.

        Device memory (on the launch device and on every device an
        argument pointer lives on) plus raw ndarray arguments are
        snapshotted around each probe, so measurement is side-effect
        free.  Raises :class:`SearchAborted` on a device fault.
        """
        ordered = self.predicted_order(
            kernel, config, device, self.candidates(kernel, config, device)
        )
        kernel_name = getattr(
            getattr(kernel, "fn", None) or kernel, "__name__", "kernel"
        )
        tracer = get_tracer()
        if tracer is not None:
            for rank, (name, score) in enumerate(ordered):
                tracer.prediction(
                    kernel_name, tune_engine=name, tune_rank=rank,
                    tune_score=score,
                )
        grid_t = config.grid.as_tuple()
        block_t = config.block.as_tuple()
        if len(ordered) == 1:
            # Nothing to race; commit the only legal engine unmeasured.
            return Plan(
                engine=ordered[0][0], grid=grid_t, block=block_t,
                shared_bytes=config.shared_bytes,
                flags={"searched": True, "candidates": 1, "measured": 0,
                       "seed": self.seed},
            )
        measured: List[Tuple[int, str]] = []
        probes = 0
        snap = _snapshot(device, args)
        try:
            for name, _score in ordered[: self.budget]:
                engine = _ENGINES_BY_NAME[name]
                probes += 1
                begin = time.perf_counter_ns()
                try:
                    if tracer is None:
                        engine.run(
                            kernel, config.grid, config.block, tuple(args),
                            device, config.shared_bytes,
                        )
                    else:
                        with tracer.span(
                            f"tune:probe:{kernel_name}", cat="tune",
                            engine=name,
                        ):
                            engine.run(
                                kernel, config.grid, config.block, tuple(args),
                                device, config.shared_bytes,
                            )
                except LaunchError as exc:
                    if isinstance(exc.__cause__, KernelFault):
                        raise SearchAborted(name) from exc
                    continue  # infeasible candidate; the rail spoke
                finally:
                    elapsed = time.perf_counter_ns() - begin
                    _restore(snap)
                measured.append((elapsed, name))
                if tracer is not None:
                    tracer.prediction(
                        kernel_name, tune_engine=name,
                        tune_measured_ns=elapsed,
                    )
        finally:
            _restore(snap)
        if not measured:
            # Every probe refused; fall back to the derived engine and
            # let the real launch surface whatever is wrong.
            derived = select_engine(kernel, device, config.block)
            return Plan(
                engine=derived.name, grid=grid_t, block=block_t,
                shared_bytes=config.shared_bytes,
                flags={"searched": False, "reason": "no feasible candidate"},
            )
        best_ns, winner = min(measured)
        return Plan(
            engine=winner, grid=grid_t, block=block_t,
            shared_bytes=config.shared_bytes,
            flags={
                "searched": True,
                "candidates": len(ordered),
                "measured": probes,
                "best_ns": best_ns,
                "seed": self.seed,
            },
        )


# -- measurement isolation ---------------------------------------------


def searchable_args(args: Sequence) -> bool:
    """Whether every argument's state can be snapshotted and restored.

    Device pointers are handles (state lives in the allocator, which we
    snapshot); numbers/strings are immutable; raw ndarrays are copied.
    Anything opaque (the classic-OpenMP accessor objects, user callables)
    disables the search — the derived plan is cached instead, because
    re-executing a kernel whose side effects we cannot roll back would
    break the bit-identity guarantee.
    """
    from ..gpu.memory import DevicePointer

    import numpy as np

    def ok(value) -> bool:
        if value is None or isinstance(
            value, (bool, int, float, complex, str, bytes,
                    DevicePointer, np.ndarray, np.generic)
        ):
            return True
        if isinstance(value, (tuple, list)):
            return all(ok(v) for v in value)
        return False

    return all(ok(a) for a in args)


def _snapshot(device, args: Sequence):
    """Capture every store a measurement probe could mutate."""
    from ..gpu.device import get_device
    from ..gpu.memory import DevicePointer

    import numpy as np

    ordinals = {device.ordinal}
    arrays = []
    for arg in args:
        if isinstance(arg, DevicePointer):
            ordinals.add(arg.device_ordinal)
        elif isinstance(arg, np.ndarray):
            arrays.append((arg, arg.copy()))
    allocators = []
    for ordinal in sorted(ordinals):
        allocator = get_device(ordinal).allocator
        allocators.append((allocator, allocator.snapshot()))
    return allocators, arrays


def _restore(snap) -> None:
    allocators, arrays = snap
    for allocator, saved in allocators:
        allocator.restore(saved)
    for array, saved in arrays:
        array[...] = saved
