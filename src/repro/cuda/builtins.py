"""CUDA device-side built-ins: the kernel's view of the machine.

A CUDA kernel in this library is a Python function whose first parameter
is a :class:`CudaThread` — conventionally named ``t`` — carrying the exact
CUDA spellings: ``t.threadIdx.x``, ``t.blockDim``, ``t.syncthreads()``,
``t.shfl_down_sync(mask, v, d)``, ``t.atomicAdd(arr, i, v)``,
``t.shared(...)`` for ``__shared__``.  It is a thin renaming façade over
:class:`repro.gpu.ThreadCtx`; the ompx layer wraps the same object with
OpenMP spellings, which is how the paper's "porting is text replacement"
claim becomes literally true in this codebase.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..gpu.context import ThreadCtx
from ..gpu.dim import Dim3
from ..gpu.memory import DevicePointer

__all__ = ["CudaThread", "FULL_MASK"]

FULL_MASK = 0xFFFFFFFF


class CudaThread:
    """CUDA-spelled façade over one simulated GPU thread."""

    __slots__ = ("_ctx",)

    def __init__(self, ctx: ThreadCtx) -> None:
        self._ctx = ctx

    # --- indexing (CUDA built-in variables) --------------------------------
    @property
    def threadIdx(self) -> Dim3:  # noqa: N802 - CUDA spelling
        return self._ctx.thread_idx

    @property
    def blockIdx(self) -> Dim3:  # noqa: N802
        return self._ctx.block_idx

    @property
    def blockDim(self) -> Dim3:  # noqa: N802
        return self._ctx.block_dim

    @property
    def gridDim(self) -> Dim3:  # noqa: N802
        return self._ctx.grid_dim

    @property
    def warpSize(self) -> int:  # noqa: N802
        return self._ctx.warp_size

    @property
    def laneid(self) -> int:
        return self._ctx.lane_id

    @property
    def global_thread_id(self) -> int:
        """The ubiquitous ``blockIdx.x * blockDim.x + threadIdx.x``."""
        return self._ctx.global_id_x

    # --- memory --------------------------------------------------------------
    def array(self, ptr: DevicePointer, shape, dtype) -> np.ndarray:
        """Dereference a global-memory pointer argument as an array."""
        return self._ctx.deref(ptr, shape, dtype)

    def shared(self, name: str, shape, dtype) -> np.ndarray:
        """``__shared__ dtype name[shape];``"""
        return self._ctx.shared_array(name, shape, dtype)

    def extern_shared(self, dtype) -> np.ndarray:
        """``extern __shared__ dtype name[];`` (dynamic shared memory)."""
        return self._ctx.dynamic_shared(dtype)

    def constant(self, name: str) -> np.ndarray:
        """``__constant__`` symbol access (uploaded via cudaMemcpyToSymbol)."""
        return self._ctx.constant(name)

    # --- synchronization -------------------------------------------------------
    def syncthreads(self) -> None:
        """``__syncthreads()``: block-level barrier."""
        self._ctx.sync_threads()

    def syncwarp(self, mask: int = FULL_MASK) -> None:
        """``__syncwarp(mask)``: warp-level barrier."""
        self._ctx.sync_warp(self._narrow(mask))

    def _narrow(self, mask: int) -> Optional[int]:
        """Map CUDA's 32-bit FULL_MASK onto the device's warp width."""
        if mask == FULL_MASK:
            return None  # all lanes of this device's warp, whatever its width
        return mask

    # --- warp primitives ----------------------------------------------------------
    def shfl_sync(self, mask: int, var, src_lane: int):
        """``__shfl_sync`` / ``ompx_shfl_sync``: read ``var`` from ``src_lane``."""
        return self._ctx.shfl_sync(var, src_lane, self._narrow(mask))

    def shfl_up_sync(self, mask: int, var, delta: int):
        """``__shfl_up_sync``: read from the lane ``delta`` below."""
        return self._ctx.shfl_up_sync(var, delta, self._narrow(mask))

    def shfl_down_sync(self, mask: int, var, delta: int):
        """``__shfl_down_sync``: read from the lane ``delta`` above."""
        return self._ctx.shfl_down_sync(var, delta, self._narrow(mask))

    def shfl_xor_sync(self, mask: int, var, lane_mask: int):
        """``__shfl_xor_sync``: butterfly exchange with lane ``lane_id ^ lane_mask``."""
        return self._ctx.shfl_xor_sync(var, lane_mask, self._narrow(mask))

    def ballot_sync(self, mask: int, predicate) -> int:
        """``__ballot_sync``: bitmask of lanes whose predicate is true."""
        return self._ctx.ballot_sync(bool(predicate), self._narrow(mask))

    def any_sync(self, mask: int, predicate) -> bool:
        """``__any_sync``: true iff any participating lane's predicate is true."""
        return self._ctx.any_sync(bool(predicate), self._narrow(mask))

    def all_sync(self, mask: int, predicate) -> bool:
        """``__all_sync``: true iff every participating lane's predicate is true."""
        return self._ctx.all_sync(bool(predicate), self._narrow(mask))

    def match_any_sync(self, mask: int, value) -> int:
        """``__match_any_sync``: mask of lanes holding the same value."""
        return self._ctx.match_any_sync(value, self._narrow(mask))

    def match_all_sync(self, mask: int, value):
        """``__match_all_sync``: (mask, pred) — full mask iff all lanes agree."""
        return self._ctx.match_all_sync(value, self._narrow(mask))

    # --- atomics ----------------------------------------------------------------
    def atomicAdd(self, array, index, value):  # noqa: N802
        """``atomicAdd``: fetch-and-add; returns the old value."""
        return self._ctx.atomic.add(array, index, value)

    def atomicSub(self, array, index, value):  # noqa: N802
        """``atomicSub``: fetch-and-subtract; returns the old value."""
        return self._ctx.atomic.sub(array, index, value)

    def atomicMax(self, array, index, value):  # noqa: N802
        """``atomicMax``: fetch-and-max; returns the old value."""
        return self._ctx.atomic.max(array, index, value)

    def atomicMin(self, array, index, value):  # noqa: N802
        """``atomicMin``: fetch-and-min; returns the old value."""
        return self._ctx.atomic.min(array, index, value)

    def atomicExch(self, array, index, value):  # noqa: N802
        """``atomicExch``: atomic exchange; returns the old value."""
        return self._ctx.atomic.exchange(array, index, value)

    def atomicCAS(self, array, index, compare, value):  # noqa: N802
        """``atomicCAS``: compare-and-swap; returns the old value."""
        return self._ctx.atomic.cas(array, index, compare, value)

    def atomicAnd(self, array, index, value):  # noqa: N802
        """``atomicAnd``: atomic bitwise AND; returns the old value."""
        return self._ctx.atomic.and_(array, index, value)

    def atomicOr(self, array, index, value):  # noqa: N802
        """``atomicOr``: atomic bitwise OR; returns the old value."""
        return self._ctx.atomic.or_(array, index, value)

    def atomicXor(self, array, index, value):  # noqa: N802
        """``atomicXor``: atomic bitwise XOR; returns the old value."""
        return self._ctx.atomic.xor(array, index, value)

    def atomicInc(self, array, index, limit):  # noqa: N802
        """``atomicInc``: wrap-around increment; returns the old value."""
        return self._ctx.atomic.inc(array, index, limit)

    # --- portable vector intrinsics ---------------------------------------------
    def select(self, cond, a, b):
        """Branch-free conditional; vectorizes as ``np.where`` per lane."""
        return self._ctx.select(cond, a, b)

    def load(self, view, index, fill=0):
        """Bounds-guarded gather: ``view[index]`` where in range, else ``fill``."""
        return self._ctx.load(view, index, fill)

    def store(self, view, index, value, mask=True):
        """Bounds-guarded masked scatter: ``view[index] = value`` where allowed."""
        return self._ctx.store(view, index, value, mask)

    def loop_max(self, count):
        """Upper trip-count bound for a lane-varying loop."""
        return self._ctx.loop_max(count)

    # --- escape hatch ---------------------------------------------------------------
    @property
    def ctx(self) -> ThreadCtx:
        """The underlying substrate context (for layer-crossing tests)."""
        return self._ctx
