"""CUDA host runtime API (``cudaMalloc``, ``cudaMemcpy``, streams, events).

The subset Figure 1 of the paper uses, plus the stream/event APIs §2.4
describes.  All functions default to the caller's current CUDA device
(ordinal 0, the A100 preset) and may be pointed at another device with
``cudaSetDevice``.
"""

from __future__ import annotations

import threading
from typing import Optional

import numpy as np

from ..errors import GpuError
from ..gpu.device import Device, Placement, get_device, resolve_placement
from ..gpu.memory import DevicePointer, MemcpyKind, memcpy_peer, peer_copy
from ..gpu.stream import Event, Stream

__all__ = [
    "cudaMalloc",
    "cudaFree",
    "cudaMemcpy",
    "cudaMemcpyAsync",
    "cudaMemcpyPeer",
    "cudaMemcpyPeerAsync",
    "cudaDeviceCanAccessPeer",
    "cudaDeviceEnablePeerAccess",
    "cudaDeviceDisablePeerAccess",
    "cudaMemset",
    "cudaMemcpyToSymbol",
    "cudaMemcpyFromSymbol",
    "cudaDeviceSynchronize",
    "cudaDeviceReset",
    "cudaSetDevice",
    "cudaGetDevice",
    "cudaStreamCreate",
    "cudaStreamDestroy",
    "cudaStreamSynchronize",
    "cudaEventCreate",
    "cudaEventRecord",
    "cudaEventSynchronize",
    "cudaOccupancyMaxActiveBlocksPerMultiprocessor",
    "cudaMemcpyHostToDevice",
    "cudaMemcpyDeviceToHost",
    "cudaMemcpyDeviceToDevice",
    "current_cuda_device",
]

cudaMemcpyHostToDevice = MemcpyKind.HOST_TO_DEVICE
cudaMemcpyDeviceToHost = MemcpyKind.DEVICE_TO_HOST
cudaMemcpyDeviceToDevice = MemcpyKind.DEVICE_TO_DEVICE

_state = threading.local()
_DEFAULT_ORDINAL = 0  # the NVIDIA A100 preset


def current_cuda_device() -> Device:
    """The calling thread's current CUDA device."""
    ordinal = getattr(_state, "ordinal", _DEFAULT_ORDINAL)
    return get_device(ordinal)


def cudaSetDevice(device: Placement) -> None:  # noqa: N802 - CUDA spelling
    """``cudaSetDevice``: select this thread's current device.

    Accepts an ordinal, a :class:`Device`, or ``None`` (reset to the
    default CUDA ordinal) — the library-wide placement contract.
    """
    if device is None:
        _state.ordinal = _DEFAULT_ORDINAL
        return
    _state.ordinal = resolve_placement(device).ordinal


def cudaGetDevice() -> int:  # noqa: N802
    """``cudaGetDevice``: ordinal of this thread's current device."""
    return getattr(_state, "ordinal", _DEFAULT_ORDINAL)


def cudaMalloc(size: int) -> DevicePointer:  # noqa: N802
    """Allocate ``size`` bytes of device global memory."""
    return current_cuda_device().allocator.malloc(size)


def cudaFree(ptr: DevicePointer) -> None:  # noqa: N802
    """``cudaFree``: release device memory."""
    current_cuda_device().allocator.free(ptr)


#: Short direction tags for trace spans (matches the ompx host API's).
_TRACE_DIRECTION = {
    MemcpyKind.HOST_TO_DEVICE: "h2d",
    MemcpyKind.DEVICE_TO_HOST: "d2h",
    MemcpyKind.DEVICE_TO_DEVICE: "d2d",
    MemcpyKind.HOST_TO_HOST: "h2h",
}


def _do_memcpy(device: Device, dst, src, count: int, kind: str) -> None:
    alloc = device.allocator
    if kind == MemcpyKind.HOST_TO_DEVICE:
        host = np.ascontiguousarray(src).view(np.uint8).reshape(-1)[:count]
        alloc.memcpy_h2d(dst, host)
    elif kind == MemcpyKind.DEVICE_TO_HOST:
        host = dst.view(np.uint8).reshape(-1)[:count]
        alloc.memcpy_d2h(host, src)
    elif kind == MemcpyKind.DEVICE_TO_DEVICE:
        # cudaMemcpyDefault-style inference on the pointers themselves:
        # a cross-device pair routes through the peer path rather than
        # faulting on the current device's allocator.
        if (isinstance(dst, DevicePointer) and isinstance(src, DevicePointer)
                and dst.device_ordinal != src.device_ordinal):
            memcpy_peer(dst, src, count)
        else:
            alloc.memcpy_d2d(dst, src, count)
    else:
        raise GpuError(f"unsupported memcpy kind {kind!r}")


def cudaMemcpy(dst, src, count: int, kind: str) -> None:  # noqa: N802
    """Synchronous memcpy: drains the default stream first, like CUDA.

    ``dst``/``src`` are :class:`DevicePointer` or NumPy arrays depending on
    ``kind``.  ``count`` is in bytes.
    """
    device = current_cuda_device()
    device.default_stream.synchronize()
    _do_memcpy(device, dst, src, count, kind)


def cudaMemcpyAsync(dst, src, count: int, kind: str, stream: Stream) -> None:  # noqa: N802
    """Enqueue a memcpy on ``stream``; returns immediately."""
    device = current_cuda_device()
    stream.enqueue(
        lambda: _do_memcpy(device, dst, src, count, kind),
        label="cudaMemcpyAsync",
        trace_cat="memcpy",
        trace_args={"bytes": int(count),
                    "direction": _TRACE_DIRECTION.get(kind, str(kind))},
    )


def _validate_peer_args(api: str, dst: DevicePointer, dst_device: Placement,
                        src: DevicePointer, src_device: Placement) -> None:
    """Catch the classic peer-copy porting bug: wrong device ordinals."""
    dst_ord = resolve_placement(dst_device).ordinal
    src_ord = resolve_placement(src_device).ordinal
    if dst_ord != dst.device_ordinal:
        raise GpuError(
            f"{api}: dst pointer belongs to device {dst.device_ordinal}, "
            f"not device {dst_ord}"
        )
    if src_ord != src.device_ordinal:
        raise GpuError(
            f"{api}: src pointer belongs to device {src.device_ordinal}, "
            f"not device {src_ord}"
        )


def cudaMemcpyPeer(  # noqa: N802
    dst: DevicePointer,
    dst_device: Placement,
    src: DevicePointer,
    src_device: Placement,
    count: int,
) -> None:
    """``cudaMemcpyPeer``: copy ``count`` bytes between two devices.

    Works whether or not peer access is enabled (as on real CUDA); the
    modeled cost is a direct-link DMA when it is, a staged-through-host
    round trip when it is not.
    """
    _validate_peer_args("cudaMemcpyPeer", dst, dst_device, src, src_device)
    peer_copy(dst, src, count, api="cudaMemcpyPeer")


def cudaMemcpyPeerAsync(  # noqa: N802
    dst: DevicePointer,
    dst_device: Placement,
    src: DevicePointer,
    src_device: Placement,
    count: int,
    stream: Stream,
) -> None:
    """``cudaMemcpyPeerAsync``: enqueue a peer copy on ``stream``."""
    _validate_peer_args("cudaMemcpyPeerAsync", dst, dst_device, src, src_device)
    stream.enqueue(
        lambda: peer_copy(dst, src, count, api="cudaMemcpyPeerAsync"),
        label="cudaMemcpyPeerAsync",
        trace_cat="memcpy",
        trace_args={"bytes": int(count), "direction": "p2p",
                    "src_device": src.device_ordinal,
                    "dst_device": dst.device_ordinal},
    )


def cudaDeviceCanAccessPeer(device: Placement, peer: Placement) -> bool:  # noqa: N802
    """``cudaDeviceCanAccessPeer``: does a direct interconnect exist?"""
    return resolve_placement(device).can_access_peer(peer)


def cudaDeviceEnablePeerAccess(peer: Placement) -> None:  # noqa: N802
    """``cudaDeviceEnablePeerAccess``: map ``peer``'s memory into the
    current device's address space (directional, like real CUDA)."""
    current_cuda_device().enable_peer_access(peer)


def cudaDeviceDisablePeerAccess(peer: Placement) -> None:  # noqa: N802
    """``cudaDeviceDisablePeerAccess``: unmap ``peer``'s memory."""
    current_cuda_device().disable_peer_access(peer)


def cudaMemset(ptr: DevicePointer, value: int, count: int) -> None:  # noqa: N802
    """``cudaMemset``: fill device memory with a byte value."""
    device = current_cuda_device()
    device.default_stream.synchronize()
    device.allocator.memset(ptr, value, count)


def cudaDeviceSynchronize() -> None:  # noqa: N802
    """Block until all streams of the current device are idle."""
    current_cuda_device().synchronize()


def cudaDeviceReset() -> None:  # noqa: N802
    """``cudaDeviceReset``: destroy the current device's context.

    Streams, allocations and constant symbols are torn down and the
    sticky error (if the context was poisoned by a kernel fault) is
    cleared; the next API call re-initializes a fresh context.
    """
    current_cuda_device().reset()


def cudaMemcpyToSymbol(symbol: str, src) -> None:  # noqa: N802
    """Upload a ``__constant__`` symbol (kernels read it via t.constant)."""
    device = current_cuda_device()
    device.default_stream.synchronize()
    device.write_constant(symbol, src)


def cudaMemcpyFromSymbol(dst: np.ndarray, symbol: str) -> None:  # noqa: N802
    """Read a ``__constant__`` symbol back to the host."""
    device = current_cuda_device()
    device.default_stream.synchronize()
    np.copyto(dst, device.read_constant(symbol).reshape(dst.shape))


def cudaStreamCreate(name: str = "") -> Stream:  # noqa: N802
    """``cudaStreamCreate``: new asynchronous work queue."""
    return Stream(current_cuda_device(), name=name)


def cudaStreamDestroy(stream: Stream) -> None:  # noqa: N802
    """``cudaStreamDestroy``: drain and close a stream."""
    stream.synchronize()
    stream.close()


def cudaStreamSynchronize(stream: Stream) -> None:  # noqa: N802
    """``cudaStreamSynchronize``: wait for a stream to drain."""
    stream.synchronize()


def cudaEventCreate(name: str = "") -> Event:  # noqa: N802
    """``cudaEventCreate``: new event marker."""
    return Event(name)


def cudaEventRecord(event: Event, stream: Optional[Stream] = None) -> None:  # noqa: N802
    """``cudaEventRecord``: enqueue an event record on a stream."""
    (stream or current_cuda_device().default_stream).record_event(event)


def cudaEventSynchronize(event: Event) -> None:  # noqa: N802
    """``cudaEventSynchronize``: host-wait for an event.

    A synchronization point: re-raises (and clears) a sticky error
    captured by earlier work on the stream that recorded the event.
    """
    event.synchronize()


def cudaOccupancyMaxActiveBlocksPerMultiprocessor(  # noqa: N802
    kernel, block_threads: int, shared_bytes: int = 0
) -> int:
    """Resident blocks per SM for a kernel at a block size (driver query)."""
    from ..compiler.compile import compile_kernel
    from ..perf.occupancy import compute_occupancy

    spec = current_cuda_device().spec
    compiled = compile_kernel(kernel, spec, shared_bytes=shared_bytes)
    info = compute_occupancy(spec, block_threads, compiled.registers,
                             compiled.effective_shared_bytes)
    return info.blocks_per_sm
