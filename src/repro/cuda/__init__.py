"""CUDA kernel-language layer — the paper's "native" baseline on NVIDIA.

A faithful-in-shape subset of the CUDA runtime API and kernel model over
the virtual GPU: ``@kernel`` (``__global__``), :func:`launch` (chevron
syntax), ``cudaMalloc``/``cudaMemcpy``/``cudaDeviceSynchronize``, streams
and events.  Kernels see CUDA spellings through :class:`CudaThread`.
"""

from .builtins import FULL_MASK, CudaThread
from .kernel import KernelFunction, kernel, launch
from .runtime import (
    cudaDeviceReset,
    cudaDeviceSynchronize,
    cudaEventCreate,
    cudaEventRecord,
    cudaEventSynchronize,
    cudaFree,
    cudaGetDevice,
    cudaMalloc,
    cudaMemcpy,
    cudaMemcpyAsync,
    cudaMemcpyDeviceToDevice,
    cudaMemcpyDeviceToHost,
    cudaMemcpyHostToDevice,
    cudaMemcpyToSymbol,
    cudaMemcpyFromSymbol,
    cudaMemset,
    cudaOccupancyMaxActiveBlocksPerMultiprocessor,
    cudaSetDevice,
    cudaStreamCreate,
    cudaStreamDestroy,
    cudaStreamSynchronize,
    current_cuda_device,
)

__all__ = [
    "FULL_MASK",
    "CudaThread",
    "KernelFunction",
    "kernel",
    "launch",
    "cudaDeviceReset",
    "cudaDeviceSynchronize",
    "cudaEventCreate",
    "cudaEventRecord",
    "cudaEventSynchronize",
    "cudaFree",
    "cudaGetDevice",
    "cudaMalloc",
    "cudaMemcpy",
    "cudaMemcpyAsync",
    "cudaMemcpyDeviceToDevice",
    "cudaMemcpyDeviceToHost",
    "cudaMemcpyHostToDevice",
    "cudaMemcpyToSymbol",
    "cudaMemcpyFromSymbol",
    "cudaMemset",
    "cudaOccupancyMaxActiveBlocksPerMultiprocessor",
    "cudaSetDevice",
    "cudaStreamCreate",
    "cudaStreamDestroy",
    "cudaStreamSynchronize",
    "current_cuda_device",
]
