"""CUDA kernel definition and launch (``__global__`` + chevron syntax).

``@kernel`` marks a function as a ``__global__`` entry point; ``launch``
is the chevron ``kernel<<<grid, block, shared, stream>>>(args...)``.
Launches are asynchronous with respect to the host — work is enqueued on a
stream (the default stream if none is given) — matching the behaviour the
paper contrasts with OpenMP's synchronous ``target`` in §2.3.
"""

from __future__ import annotations

import functools
from typing import Callable, Optional, Sequence

from ..errors import LaunchError
from ..gpu.device import Device, Placement
from ..gpu.dim import DimLike
from ..gpu.launch import LaunchConfig, launch_kernel
from ..gpu.stream import Stream
from .builtins import CudaThread

__all__ = ["kernel", "launch", "KernelFunction"]


class KernelFunction:
    """A compiled-in-spirit ``__global__`` function.

    Wraps the user's ``fn(t, *args)`` so the engine's ``(ctx, *args)``
    calling convention is adapted to the CUDA façade.  Carries metadata the
    compiler model reads: ``language``, ``sync_free`` and the original
    Python function (for source analysis).
    """

    def __init__(
        self,
        fn: Callable,
        *,
        sync_free: bool = False,
        language: str = "cuda",
        vectorize: Optional[bool] = None,
    ) -> None:
        functools.update_wrapper(self, fn)
        self.fn = fn
        self.language = language
        self.sync_free = sync_free
        self.vectorize = vectorize

        def adapter(ctx, *args):
            return fn(CudaThread(ctx), *args)

        adapter.sync_free = sync_free
        adapter.vectorize = vectorize
        adapter.fn = fn  # what engine selection / compile analysis reads
        self._adapter = adapter

    @property
    def entry(self) -> Callable:
        """The engine-facing callable."""
        return self._adapter

    def __call__(self, t, *args):
        """Direct call — usable as a ``__device__`` function from other kernels."""
        return self.fn(t, *args)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.language} kernel {self.fn.__name__}>"


def kernel(
    fn: Optional[Callable] = None,
    *,
    sync_free: bool = False,
    language: str = "cuda",
    vectorize: Optional[bool] = None,
):
    """Decorator marking a ``__global__`` kernel.

    ``sync_free=True`` asserts the kernel never synchronizes within a
    block, unlocking the fast sequential engine.  Misuse is caught: any
    sync call under the fast engine raises ``SyncError``.

    ``vectorize=True`` vouches that the body is written against the
    portable lane-batched intrinsics (``select``/``load``/``store``/
    ``loop_max``) so the :class:`~repro.gpu.engine.WaveVectorEngine` may
    run it; ``vectorize=False`` pins the legacy scalar engines; ``None``
    (default) lets static analysis decide.
    """
    if fn is None:
        return lambda f: KernelFunction(
            f, sync_free=sync_free, language=language, vectorize=vectorize
        )
    return KernelFunction(fn, sync_free=sync_free, language=language, vectorize=vectorize)


def launch(
    kern: KernelFunction,
    grid: DimLike,
    block: DimLike,
    args: Sequence = (),
    *,
    device: Placement = None,
    shared_bytes: int = 0,
    stream: Optional[Stream] = None,
    engine: Optional[str] = None,
) -> None:
    """``kern<<<grid, block, shared_bytes, stream>>>(*args)``.

    Asynchronous: returns as soon as the work is enqueued.  Synchronize
    with ``cudaDeviceSynchronize``/``cudaStreamSynchronize`` before reading
    results on the host (Figure 1's ``cudaDeviceSynchronize`` call).
    ``device`` defaults to the caller's current CUDA device, like the
    chevron syntax.
    """
    if not isinstance(kern, KernelFunction):
        raise LaunchError(
            f"launch() needs a @kernel-decorated function, got {kern!r}; "
            f"plain Python functions cannot be __global__ entry points"
        )
    from ..gpu.device import resolve_placement
    from .runtime import current_cuda_device

    device = resolve_placement(device, default=current_cuda_device)
    config = LaunchConfig.create(
        grid, block, shared_bytes,
        stream=stream if stream is not None else device.default_stream,
        engine=engine,
    )
    launch_kernel(config, kern.entry, tuple(args), device, synchronous=False)
