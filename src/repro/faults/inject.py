"""Activation of fault plans: one process-wide plan, context-managed.

Mirrors the :mod:`repro.trace` enable/disable design so the runtime pays
the same disabled cost: every instrumented call site does one module
global read (:func:`active_plan`) and an ``is None`` test.  Plans are
process-wide rather than thread-local because faults must be observable
across threads — an injected kernel fault fires on engine worker
threads, a delayed enqueue on the stream worker — while activation
happens on the host thread.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Union

from .plan import FaultPlan

__all__ = ["inject", "active_plan", "fire", "kernel_scope", "current_kernel"]

_active: Optional[FaultPlan] = None
_lock = threading.Lock()
_local = threading.local()


def active_plan() -> Optional[FaultPlan]:
    """The currently injected :class:`FaultPlan`, or ``None``.

    This is the fast path — instrumentation points call it on every
    malloc/launch/enqueue, so it must stay a bare global read.
    """
    return _active


@contextmanager
def inject(plan: Union[FaultPlan, str], *, seed: Optional[int] = None) -> Iterator[FaultPlan]:
    """Activate ``plan`` (a :class:`FaultPlan` or a spec string) within a scope.

    ::

        with faults.inject("malloc:oom@3;seed=7") as plan:
            run_workload()
        print(plan.summary())

    Plans do not nest: activating a second plan while one is live raises,
    because two plans racing for the same call sites would make the
    injected sequence depend on scheduling — the opposite of the
    deterministic-replay contract.
    """
    global _active
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    if seed is not None:
        plan = FaultPlan(plan.rules, seed=seed)
    with _lock:
        if _active is not None:
            from ..errors import FaultSpecError

            raise FaultSpecError(
                "a fault plan is already active; faults.inject() does not nest"
            )
        _active = plan
    try:
        yield plan
    finally:
        with _lock:
            _active = None


def fire(site: str, **context: Any) -> Dict[str, Any]:
    """Fire the active plan at ``site`` (no-op empty dict when inactive).

    Convenience for call sites that want one call instead of the
    read-then-fire pair; hot paths inline the ``active_plan()`` check.
    """
    plan = _active
    if plan is None:
        return {}
    return plan.fire(site, **context)


@contextmanager
def kernel_scope(name: str) -> Iterator[None]:
    """Tag the current thread as executing kernel ``name``.

    Lets rules with ``kernel=`` selectors match sites that do not receive
    the kernel name directly (e.g. a memcpy issued from host code between
    launches is *not* tagged; one issued inside an instrumented launch
    wrapper is).
    """
    prev = getattr(_local, "kernel", None)
    _local.kernel = name
    try:
        yield
    finally:
        _local.kernel = prev


def current_kernel() -> Optional[str]:
    """Kernel name tagged on this thread by :func:`kernel_scope`, if any."""
    return getattr(_local, "kernel", None)
