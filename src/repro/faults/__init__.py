"""Deterministic fault injection and sanitizers for the simulated GPU.

Three tools for exercising the failure paths the rest of the library
implements (CUDA-sticky contexts, OOM, invalid pointers, stream aborts):

* :func:`inject` — activate a seeded :class:`FaultPlan` ("fail the 3rd
  malloc with OOM", "raise a kernel fault in block 2 after 1 barrier").
  Same spec + seed ⇒ byte-identical fault sequence.
* :func:`memcheck` — compute-sanitizer-style validation of device
  loads/stores against live allocation bounds, with leak/double-free
  reporting at scope exit.
* The ``--faults=SPEC`` / ``--memcheck`` flags on ``python -m repro.apps``
  wire both into the benchmark harness.

See README "Fault injection and sanitizers" for the CLI walkthrough and
the mapping from our exception types to CUDA/HIP error codes.
"""

from __future__ import annotations

from ..errors import FaultSpecError, KernelFault, MemcheckError, StickyContextError
from .inject import active_plan, current_kernel, fire, inject, kernel_scope
from .memcheck import Memcheck, MemcheckReport, get_memcheck, memcheck
from .plan import SITES, FaultPlan, FaultRule

__all__ = [
    "FaultPlan",
    "FaultRule",
    "SITES",
    "inject",
    "active_plan",
    "fire",
    "kernel_scope",
    "current_kernel",
    "memcheck",
    "get_memcheck",
    "Memcheck",
    "MemcheckReport",
    "FaultSpecError",
    "KernelFault",
    "MemcheckError",
    "StickyContextError",
]
