"""Compute-sanitizer-style memory checking for the simulated GPU.

Under ``memcheck()``, the bounds-guarded device intrinsics
(:meth:`ThreadCtx.load`/``store`` and their vectorized counterparts) stop
*papering over* out-of-bounds accesses and start *reporting* them: an OOB
store — which the un-sanitized simulator silently drops, exactly like
real GPU hardware silently corrupts — raises :class:`MemcheckError`
carrying the offending virtual address, the allocation it missed, and
(once the launch layer annotates it) the kernel name.  This mirrors
``compute-sanitizer --tool memcheck`` / ``rocgdb``'s address watchpoints.

OOB *loads* are not flagged by default: the portable ``load(view, i,
fill=0)`` intrinsic is *specified* to return ``fill`` out of range, and
tail lanes of vectorized kernels rely on it.  Pass ``check_loads=True``
to flag them anyway (useful when porting kernels that should never read
past their extent).

At scope exit the checker reports allocations made inside the window
that were never freed (leaks), plus any double-frees / bad frees it was
notified of, via :attr:`MemcheckReport`.

Zero cost when disabled: the intrinsics read one module global and test
``is None`` — the same discipline as :func:`repro.trace.get_tracer`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import MemcheckError

__all__ = ["Memcheck", "MemcheckReport", "memcheck", "get_memcheck"]

_active: Optional["Memcheck"] = None
_lock = threading.Lock()


def get_memcheck() -> Optional["Memcheck"]:
    """The active :class:`Memcheck`, or ``None`` (the common, free case)."""
    return _active


@dataclass
class MemcheckReport:
    """What the sanitizer found over one ``memcheck()`` window."""

    oob_stores: int = 0
    oob_loads: int = 0
    double_frees: List[str] = field(default_factory=list)
    bad_frees: List[str] = field(default_factory=list)
    #: ``(device_ordinal, base_address, size_bytes, alloc_site)`` per leak.
    leaks: List[Tuple[int, int, int, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (self.oob_stores or self.oob_loads or self.double_frees
                    or self.bad_frees or self.leaks)

    def summary(self) -> str:
        """Human-readable report, one line per finding."""
        if self.clean:
            return "memcheck: no errors"
        lines = ["memcheck report:"]
        if self.oob_stores:
            lines.append(f"  {self.oob_stores} out-of-bounds store(s)")
        if self.oob_loads:
            lines.append(f"  {self.oob_loads} out-of-bounds load(s)")
        for msg in self.double_frees:
            lines.append(f"  double free: {msg}")
        for msg in self.bad_frees:
            lines.append(f"  invalid free: {msg}")
        for ordinal, base, size, site in self.leaks:
            lines.append(
                f"  leak: {size} B at 0x{base:x} on device {ordinal} "
                f"(allocated at {site})"
            )
        return "\n".join(lines)


class Memcheck:
    """Validates device accesses against live allocation bounds."""

    def __init__(self, *, check_loads: bool = False) -> None:
        self.check_loads = check_loads
        self.report = MemcheckReport()
        # Per-device bump-pointer watermark at window entry; allocations at
        # or above it were made inside the window and count as leaks if
        # still live at exit.  Addresses are never reused, so a watermark
        # is exact.
        self._watermarks: Dict[int, int] = {}

    # --- window lifecycle -------------------------------------------------
    def _enter(self) -> None:
        for ordinal, device in _registered_devices().items():
            allocator = device._allocator
            if allocator is not None:
                self._watermarks[ordinal] = allocator._next
            else:
                self._watermarks[ordinal] = None  # type: ignore[assignment]

    def _exit(self) -> None:
        for ordinal, device in _registered_devices().items():
            allocator = device._allocator
            if allocator is None:
                continue
            mark = self._watermarks.get(ordinal)
            with allocator._lock:
                for base, alloc in allocator._allocations.items():
                    if mark is None or base >= mark:
                        site = allocator._alloc_sites.get(base, "<unknown>")
                        self.report.leaks.append(
                            (ordinal, base, alloc.size, site)
                        )

    # --- access validation (called from ThreadCtx / VectorThreadCtx) ------
    def check_store(self, view: np.ndarray, index: Any, mask: Any,
                    value: Any = None) -> None:
        """Flag any masked-in store whose index falls outside ``view``.

        The un-sanitized intrinsic silently drops such writes; here they
        become a :class:`MemcheckError` naming the first offending lane.
        """
        bad = self._first_bad(view, index, mask)
        if bad is None:
            return
        self.report.oob_stores += 1
        raise self._violation("store", view, bad)

    def check_load(self, view: np.ndarray, index: Any) -> None:
        """Flag OOB reads when ``check_loads`` is on (else free no-op)."""
        if not self.check_loads:
            return
        bad = self._first_bad(view, index, True)
        if bad is None:
            return
        self.report.oob_loads += 1
        raise self._violation("load", view, bad)

    @staticmethod
    def _first_bad(view: np.ndarray, index: Any, mask: Any) -> Optional[int]:
        n = view.shape[0]
        if np.ndim(index) == 0 and np.ndim(mask) == 0:
            idx = int(index)
            if mask and not 0 <= idx < n:
                return idx
            return None
        idx = np.asarray(index)
        active = np.broadcast_to(np.asarray(mask, dtype=bool), idx.shape)
        oob = active & ((idx < 0) | (idx >= n))
        if not oob.any():
            return None
        return int(idx[oob].flat[0])

    def _violation(self, what: str, view: np.ndarray, index: int) -> MemcheckError:
        located = self._locate(view)
        itemsize = view.dtype.itemsize
        if located is None:
            return MemcheckError(
                f"out-of-bounds {what}: index {index} in a view of "
                f"{view.shape[0]} element(s) (host-backed array)",
            )
        device, alloc, base_offset = located
        address = alloc.base + base_offset + index * itemsize
        site = device.allocator._alloc_sites.get(alloc.base, "<unknown>")
        return MemcheckError(
            f"out-of-bounds {what} of {itemsize} B at 0x{address:x}: index "
            f"{index} outside view of {view.shape[0]} element(s); nearest "
            f"allocation is {alloc.size} B at 0x{alloc.base:x} on device "
            f"{device.ordinal} (allocated at {site})",
            address=address,
        )

    @staticmethod
    def _locate(view: np.ndarray):
        """Find (device, allocation, byte offset) backing a NumPy view.

        Device views are slices of an allocation's ``uint8`` buffer, so the
        view's memory address falls inside exactly one live allocation's
        buffer; host arrays fall in none and return ``None``.
        """
        start = view.__array_interface__["data"][0]
        for device in _registered_devices().values():
            allocator = device._allocator
            if allocator is None:
                continue
            located = allocator.locate_buffer(start, view.nbytes)
            if located is not None:
                return device, located[0], located[1]
        return None

    # --- allocator notifications ------------------------------------------
    def note_double_free(self, message: str) -> None:
        """Record a double free the allocator diagnosed (it still raises)."""
        self.report.double_frees.append(message)

    def note_bad_free(self, message: str) -> None:
        """Record an invalid free the allocator diagnosed (it still raises)."""
        self.report.bad_frees.append(message)


@contextmanager
def memcheck(*, check_loads: bool = False) -> Iterator[Memcheck]:
    """Run the enclosed block under the memory sanitizer.

    ::

        with faults.memcheck() as mc:
            launch_kernel(cfg, kernel, args, device)
        assert mc.report.clean, mc.report.summary()
    """
    global _active
    checker = Memcheck(check_loads=check_loads)
    with _lock:
        if _active is not None:
            from ..errors import FaultSpecError

            raise FaultSpecError("memcheck() does not nest")
        checker._enter()
        _active = checker
    try:
        yield checker
    finally:
        with _lock:
            _active = None
        checker._exit()


def _registered_devices():
    # Lazy import: faults.* must stay importable without the gpu package
    # (and gpu.context imports this module for its hot-path check).
    from ..gpu.device import registered_devices

    return registered_devices()
