"""Deterministic, seedable fault-injection plans.

A :class:`FaultPlan` is a list of :class:`FaultRule` objects plus an
explicit RNG seed.  Each rule names an instrumentation *site* (the same
choke points :mod:`repro.trace` instruments), an *action* to take there,
and a trigger (the Nth matching call, every k-th call, or a seeded
probability).  Plans are pure data + counters: given the same workload
and the same ``(spec, seed)``, the injected-fault sequence — recorded in
:attr:`FaultPlan.log` — replays byte-identically.

Sites and actions
-----------------
================ ===========================================================
site             actions
================ ===========================================================
malloc           ``oom`` (raise OutOfMemoryError), ``error``
free             ``invalid_pointer`` (raise InvalidPointerError), ``error``
memcpy           ``truncate`` (copy only ``bytes=`` bytes), ``error``
memset           ``error``
launch           ``kernel_fault`` (raise KernelFault — optionally only in
                 block ``block=`` and only after ``after_barriers=``
                 barriers), ``delay`` (sleep ``delay=`` seconds before the
                 kernel runs), ``error``
enqueue          ``delay`` (sleep ``delay=`` seconds before the op runs),
                 ``abort`` (refuse the enqueue)
checkpoint_write ``truncate`` (cut the published snapshot to ``bytes=``
                 bytes — a torn write), ``corrupt`` (flip ``bytes=`` bytes
                 of the published snapshot — media bit-rot), ``delay``,
                 ``error`` (the write itself fails)
checkpoint_read  ``truncate`` / ``corrupt`` (damage the bytes as read, not
                 on disk), ``delay``, ``error``
================ ===========================================================

Spec strings
------------
The CLI flag ``--faults=SPEC`` and :meth:`FaultPlan.parse` accept a
semicolon-separated rule list::

    seed=42;malloc:oom@3;memcpy:truncate@2,bytes=16
    launch:kernel_fault,kernel=stencil,block=2,after_barriers=1
    enqueue:delay,stream=copyq,delay=0.01,every=2;enqueue:abort,p=0.1

``@N`` fires on the Nth matching call; ``every=K`` fires on every K-th;
``p=X`` fires with probability X drawn from the plan's seeded RNG;
``kernel=``/``stream=``/``device=`` restrict matching; remaining
``key=value`` pairs are the action payload.

Two leniencies keep hand-typed specs short.  Options may be separated by
whitespace as well as commas (``'kernel_fault@3 device=1'``), and the
``site:`` prefix may be dropped when the action names it uniquely —
``oom`` means ``malloc:oom``, ``invalid_pointer`` → ``free:``,
``truncate`` → ``memcpy:``, ``kernel_fault`` → ``launch:``, ``delay``
and ``abort`` → ``enqueue:``.  ``error`` is valid at several sites and
always needs the explicit prefix.

``device=`` selectors compare against global registry ordinals.  A
harness running on a :class:`~repro.sched.DevicePool` (whose devices get
fresh ordinals above the defaults) can call
:meth:`FaultPlan.bind_devices` to re-map spec-level selectors — e.g. the
pool-relative indices the CLI exposes — onto the ordinals actually in
play, without rewriting the rules.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from random import Random
from typing import Any, Dict, List, Optional, Tuple

from ..errors import (
    FaultSpecError,
    GpuError,
    InvalidPointerError,
    KernelFault,
    OutOfMemoryError,
)

__all__ = ["FaultRule", "FaultPlan", "SITES"]

#: Instrumentation points a rule may attach to, mirroring repro.trace.
SITES = (
    "malloc",
    "free",
    "memcpy",
    "memset",
    "launch",
    "enqueue",
    "checkpoint_write",
    "checkpoint_read",
)

_ACTIONS: Dict[str, Tuple[str, ...]] = {
    "malloc": ("oom", "error"),
    "free": ("invalid_pointer", "error"),
    "memcpy": ("truncate", "error"),
    "memset": ("error",),
    "launch": ("kernel_fault", "delay", "error"),
    "enqueue": ("delay", "abort", "error"),
    "checkpoint_write": ("truncate", "corrupt", "delay", "error"),
    "checkpoint_read": ("truncate", "corrupt", "delay", "error"),
}

#: Bare-action shorthand: actions that name their site uniquely, so the
#: ``site:`` prefix may be omitted in spec fragments.  ``error`` and
#: ``corrupt`` are deliberately absent (valid at several sites), and
#: ``truncate``/``delay``/``abort`` resolve to their original homes
#: (``memcpy``/``enqueue``) even though the checkpoint sites now accept
#: them too — changing an established shorthand would silently rewrite
#: existing specs.
_SITE_FOR_ACTION: Dict[str, str] = {
    "oom": "malloc",
    "invalid_pointer": "free",
    "truncate": "memcpy",
    "kernel_fault": "launch",
    "delay": "enqueue",
    "abort": "enqueue",
}

#: Rule keys that select *which* calls match, compared as strings against
#: the context the instrumentation point passes to :meth:`FaultPlan.fire`.
_MATCH_KEYS = ("kernel", "stream", "device", "direction", "op")


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: where to fire, when, and what to do."""

    site: str
    action: str
    nth: Optional[int] = None
    every: Optional[int] = None
    probability: Optional[float] = None
    max_fires: Optional[int] = None
    match: Tuple[Tuple[str, str], ...] = ()
    payload: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise FaultSpecError(
                f"unknown fault site {self.site!r}; choose one of {SITES}"
            )
        if self.action not in _ACTIONS[self.site]:
            raise FaultSpecError(
                f"site {self.site!r} does not support action {self.action!r}; "
                f"choose one of {_ACTIONS[self.site]}"
            )
        if self.nth is not None and self.nth < 1:
            raise FaultSpecError(f"@N trigger must be >= 1, got {self.nth}")
        if self.every is not None and self.every < 1:
            raise FaultSpecError(f"every= trigger must be >= 1, got {self.every}")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise FaultSpecError(
                f"p= trigger must be in [0, 1], got {self.probability}"
            )

    @property
    def key(self) -> str:
        """Compact spec-like rendering, used in logs and trace spans."""
        parts = [f"{self.site}:{self.action}"]
        if self.nth is not None:
            parts[0] += f"@{self.nth}"
        if self.every is not None:
            parts.append(f"every={self.every}")
        if self.probability is not None:
            parts.append(f"p={self.probability}")
        parts.extend(f"{k}={v}" for k, v in self.match)
        parts.extend(f"{k}={v}" for k, v in self.payload)
        return ",".join(parts)

    def payload_dict(self) -> Dict[str, str]:
        """The action's ``key=value`` payload options as a plain dict."""
        return dict(self.payload)

    @staticmethod
    def _tokenize(text: str) -> List[str]:
        """Split a fragment into head + option tokens.

        Commas always separate options; whitespace separates them only
        when the next token is itself a ``key=value`` pair, so payload
        values containing spaces (``message=synthetic ENOMEM``) keep
        working under the lenient whitespace syntax.
        """
        pieces: List[str] = []
        for chunk in text.split(","):
            start = len(pieces)
            for token in chunk.split():
                if len(pieces) == start or "=" in token:
                    pieces.append(token)
                else:
                    pieces[-1] += f" {token}"
        return pieces

    @classmethod
    def parse(cls, text: str) -> "FaultRule":
        """Parse one ``[site:]action[@N][,k=v...]`` rule fragment."""
        pieces = cls._tokenize(text)
        if not pieces:
            raise FaultSpecError(f"rule {text!r} is empty")
        head, tail = pieces[0], pieces[1:]
        site, sep, action = head.partition(":")
        if not sep:
            # Bare action: infer the site when the action names it uniquely.
            action = site
            site = _SITE_FOR_ACTION.get(action.partition("@")[0].strip())
            if site is None:
                raise FaultSpecError(
                    f"rule {text!r} must start with 'site:action' (e.g. "
                    f"'malloc:oom'); only "
                    f"{tuple(sorted(_SITE_FOR_ACTION))} may omit the site"
                )
        elif not action:
            raise FaultSpecError(
                f"rule {text!r} must start with 'site:action', e.g. 'malloc:oom'"
            )
        nth: Optional[int] = None
        action, at, nth_text = action.partition("@")
        if at:
            try:
                nth = int(nth_text)
            except ValueError:
                raise FaultSpecError(
                    f"rule {text!r}: '@' must be followed by an integer"
                ) from None
        every: Optional[int] = None
        probability: Optional[float] = None
        max_fires: Optional[int] = None
        match: List[Tuple[str, str]] = []
        payload: List[Tuple[str, str]] = []
        for item in tail:
            k, sep, v = item.partition("=")
            k, v = k.strip(), v.strip()
            if not sep or not k or not v:
                raise FaultSpecError(
                    f"rule {text!r}: options must be 'key=value', got {item!r}"
                )
            try:
                if k == "every":
                    every = int(v)
                elif k == "p":
                    probability = float(v)
                elif k == "max":
                    max_fires = int(v)
                elif k in _MATCH_KEYS:
                    match.append((k, v))
                else:
                    payload.append((k, v))
            except ValueError:
                raise FaultSpecError(
                    f"rule {text!r}: bad value for {k!r}: {v!r}"
                ) from None
        return cls(
            site=site.strip(),
            action=action.strip(),
            nth=nth,
            every=every,
            probability=probability,
            max_fires=max_fires,
            match=tuple(match),
            payload=tuple(payload),
        )


class FaultPlan:
    """A seeded set of fault rules with deterministic replay.

    Firing decisions depend only on per-rule match counters and the
    plan's seeded RNG, so two plans built from the same ``(rules, seed)``
    inject the same fault sequence for the same workload.  Every fired
    fault is appended to :attr:`log` as a plain tuple
    ``(sequence, site, rule_key, action, detail)``.
    """

    def __init__(self, rules, seed: int = 0) -> None:
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.seed = int(seed)
        self._rng = Random(self.seed)
        self._matches: List[int] = [0] * len(self.rules)
        self._fires: List[int] = [0] * len(self.rules)
        self._device_alias: Dict[str, str] = {}
        self.log: List[Tuple[int, str, str, str, str]] = []

    # --- construction -----------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a ``--faults`` spec string (see module docs)."""
        seed = 0
        rules: List[FaultRule] = []
        for fragment in spec.split(";"):
            fragment = fragment.strip()
            if not fragment:
                continue
            if fragment.startswith("seed="):
                try:
                    seed = int(fragment[len("seed="):])
                except ValueError:
                    raise FaultSpecError(
                        f"bad seed in {fragment!r}; expected seed=<int>"
                    ) from None
                continue
            rules.append(FaultRule.parse(fragment))
        if not rules:
            raise FaultSpecError(
                f"fault spec {spec!r} contains no rules; expected "
                f"'site:action' fragments separated by ';'"
            )
        return cls(rules, seed=seed)

    def reset(self) -> None:
        """Re-arm counters, RNG and log for a fresh, identical replay.

        Device bindings (:meth:`bind_devices`) survive a reset: they
        describe the topology the plan runs against, not replay state.
        """
        self._rng = Random(self.seed)
        self._matches = [0] * len(self.rules)
        self._fires = [0] * len(self.rules)
        self.log.clear()

    # --- deterministic-resume cursor --------------------------------------
    def snapshot_cursor(self) -> Dict[str, Any]:
        """Capture the plan's replay position as plain picklable data.

        The cursor holds everything :meth:`fire` consults when deciding
        whether a rule triggers — per-rule match/fire counters and the
        seeded RNG's internal state — plus the ``(seed, rule keys)``
        identity so a restore can refuse a cursor taken from a different
        plan.  A plan restored from a cursor fires the remaining ``@N``/
        ``every=``/``p=`` triggers byte-identically to an uninterrupted
        run: this is what lets a resumed checkpointed run replay the same
        fault sequence the crashed run would have seen.
        """
        return {
            "seed": self.seed,
            "rules": [rule.key for rule in self.rules],
            "matches": list(self._matches),
            "fires": list(self._fires),
            "rng_state": self._rng.getstate(),
            "log": list(self.log),
        }

    def restore_cursor(self, cursor: Dict[str, Any]) -> None:
        """Rewind/fast-forward the plan to a :meth:`snapshot_cursor` point.

        Raises :class:`FaultSpecError` if the cursor identifies a
        different plan (other seed or rule set): silently adopting it
        would desynchronize the RNG stream from the counters and make
        "deterministic" replay quietly wrong.  Device bindings are left
        alone, as with :meth:`reset`.
        """
        want = [rule.key for rule in self.rules]
        if cursor.get("seed") != self.seed or list(cursor.get("rules", ())) != want:
            raise FaultSpecError(
                "fault-plan cursor does not match this plan "
                f"(cursor seed={cursor.get('seed')!r} rules="
                f"{list(cursor.get('rules', ()))!r}; plan seed={self.seed!r} "
                f"rules={want!r})"
            )
        self._matches = list(cursor["matches"])
        self._fires = list(cursor["fires"])
        # Random.setstate wants the exact nested-tuple shape getstate
        # produced; a cursor that crossed a JSON boundary arrives as
        # lists, so rebuild the tuples first.
        state = cursor["rng_state"]
        self._rng.setstate((state[0], tuple(state[1]), state[2]))
        self.log[:] = [tuple(entry) for entry in cursor["log"]]

    def bind_devices(self, mapping: Dict[Any, Any]) -> None:
        """Re-map ``device=`` selectors onto live registry ordinals.

        ``mapping`` takes spec-level selector values (e.g. pool-relative
        indices ``0..N-1``) to the registry ordinals the workload actually
        uses; both sides are compared as strings.  Selectors absent from
        the mapping keep matching raw ordinals, so registry-level specs
        still work on a bound plan.
        """
        self._device_alias = {str(k): str(v) for k, v in mapping.items()}

    # --- firing -----------------------------------------------------------
    def fire(self, site: str, **context: Any) -> Dict[str, Any]:
        """Evaluate every rule for ``site`` against one instrumented call.

        Raise-type actions raise the injected error here (tagged with
        ``injected=True``); effect-type actions return a dict the call
        site applies (``truncate_bytes``, ``delay_s``, ``kernel_fault``).
        """
        effects: Dict[str, Any] = {}
        for index, rule in enumerate(self.rules):
            if rule.site != site or not self._rule_matches(rule, context):
                continue
            self._matches[index] += 1
            if not self._should_fire(rule, index):
                continue
            self._fires[index] += 1
            self._apply(rule, index, context, effects)
        return effects

    def _rule_matches(self, rule: FaultRule, context: Dict[str, Any]) -> bool:
        for key, want in rule.match:
            if key == "device":
                want = self._device_alias.get(want, want)
            have = context.get(key)
            if have is None or str(have) != want:
                return False
        return True

    def _should_fire(self, rule: FaultRule, index: int) -> bool:
        if rule.max_fires is not None and self._fires[index] >= rule.max_fires:
            return False
        count = self._matches[index]
        if rule.nth is not None:
            return count == rule.nth
        if rule.every is not None:
            return count % rule.every == 0
        if rule.probability is not None:
            # The RNG is consumed only here, in deterministic call order.
            return self._rng.random() < rule.probability
        return True

    def _record(self, rule: FaultRule, index: int, detail: str) -> None:
        entry = (len(self.log), rule.site, rule.key, rule.action, detail)
        self.log.append(entry)
        tracer = _get_tracer()
        if tracer is not None:
            tracer.add_span(
                f"fault:{rule.site}:{rule.action}", "fault", "faults",
                tracer.now_us(), 0.0,
                {"rule": rule.key, "detail": detail, "seq": entry[0]},
            )
            tracer.counter("faults_injected")

    def _apply(
        self,
        rule: FaultRule,
        index: int,
        context: Dict[str, Any],
        effects: Dict[str, Any],
    ) -> None:
        payload = rule.payload_dict()
        n = self._matches[index]
        message = payload.get(
            "message", f"[injected] {rule.action} at {rule.site} call #{n}"
        )
        if rule.action == "oom":
            self._record(rule, index, f"call #{n} size={context.get('size')}")
            raise _tag(OutOfMemoryError(message))
        if rule.action == "invalid_pointer":
            self._record(rule, index, f"call #{n} ptr={context.get('ptr')}")
            raise _tag(InvalidPointerError(message))
        if rule.action == "abort":
            self._record(rule, index, f"call #{n} op={context.get('op')}")
            raise _tag(GpuError(message))
        if rule.action == "error":
            self._record(rule, index, f"call #{n}")
            raise _tag(GpuError(message))
        if rule.action == "truncate":
            size = int(context.get("size", 0))
            keep = int(payload.get("bytes", max(size // 2, 0)))
            keep = max(0, min(keep, size))
            self._record(rule, index, f"call #{n} {size}B->{keep}B")
            effects["truncate_bytes"] = keep
            return
        if rule.action == "delay":
            delay_s = float(payload.get("delay", 0.001))
            self._record(rule, index, f"call #{n} delay={delay_s}s")
            effects["delay_s"] = effects.get("delay_s", 0.0) + delay_s
            return
        if rule.action == "corrupt":
            count = max(1, int(payload.get("bytes", 1)))
            self._record(rule, index, f"call #{n} corrupt={count}B")
            effects["corrupt_bytes"] = effects.get("corrupt_bytes", 0) + count
            return
        if rule.action == "kernel_fault":
            # Always delivered as an effect, never raised here: the fault
            # must fire *inside* the kernel, on the engine's threads, so
            # it takes the same wrap-and-poison path an organic device
            # fault does.
            block = payload.get("block")
            after = payload.get("after_barriers")
            detail = f"call #{n} kernel={context.get('kernel')}"
            self._record(rule, index, f"{detail} block={block} after={after}")
            effects["kernel_fault"] = {
                "block": None if block is None else int(block),
                "after_barriers": 0 if after is None else int(after),
                "message": message,
            }
            return
        raise FaultSpecError(f"unhandled action {rule.action!r}")  # pragma: no cover

    # --- introspection ----------------------------------------------------
    @property
    def fired(self) -> int:
        """Total faults injected so far."""
        return len(self.log)

    def summary(self) -> str:
        """Human-readable rendering of the injected-fault log."""
        if not self.log:
            return "no faults injected"
        lines = [f"{self.fired} fault(s) injected (seed={self.seed}):"]
        for seq, site, key, action, detail in self.log:
            lines.append(f"  #{seq}: {site}:{action} [{key}] {detail}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan(rules={len(self.rules)}, seed={self.seed}, fired={self.fired})"


def _tag(exc: BaseException) -> BaseException:
    """Mark an exception as injected so policies can tell it from organic."""
    exc.injected = True  # type: ignore[attr-defined]
    return exc


def _get_tracer():
    # Local import: repro.trace is dependency-free, but keeping it lazy
    # makes the plan module importable from anywhere without cycles.
    from ..trace import get_tracer

    return get_tracer()


# ``time`` is imported for call sites applying delay effects; re-exported
# here so stream instrumentation does not need its own import dance.
sleep = time.sleep
