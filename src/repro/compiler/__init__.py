"""The toolchain model: what each compiler makes of a kernel.

Python cannot reproduce the paper's compiler-level contribution directly,
so this package models the *observable outputs* of compilation the paper's
profiling discusses — registers, binary size, codegen mode, instruction
quality — from syntactic kernel traits plus per-toolchain behaviour.
"""

from .analysis import KernelTraits, analyze_kernel
from .compile import CompiledKernel, compile_kernel, default_toolchain
from .toolchain import (
    HIPCC,
    LLVM_CLANG,
    NVCC,
    OMP_LLVM,
    OMPX_PROTO,
    Toolchain,
    toolchain_for,
)

__all__ = [
    "KernelTraits",
    "analyze_kernel",
    "CompiledKernel",
    "compile_kernel",
    "default_toolchain",
    "HIPCC",
    "LLVM_CLANG",
    "NVCC",
    "OMP_LLVM",
    "OMPX_PROTO",
    "Toolchain",
    "toolchain_for",
]
