"""The compile step: kernel + language + toolchain + device -> CompiledKernel.

A :class:`CompiledKernel` is everything the performance model needs to
price a launch: per-thread registers, static shared memory, binary size,
the OpenMP codegen facts (runtime init? state machine? globalization?) and
the toolchain's instruction-stream quality.

Language rules:

* ``cuda``/``hip`` — native kernel languages; no OpenMP device runtime at
  all, so the codegen info is the bare one.
* ``ompx`` — the paper's extension: also bare (§3.1), compiled by the
  prototype toolchain.
* ``omp`` — classic target offloading; requires :class:`RegionTraits` so
  the lowering can decide SPMD vs generic, globalization, etc.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from ..errors import CompileError
from ..gpu.device import DeviceSpec
from ..openmp.codegen import CodegenInfo, RegionTraits, lower_region
from .analysis import KernelTraits, analyze_kernel
from .toolchain import HIPCC, LLVM_CLANG, NVCC, OMP_LLVM, OMPX_PROTO, Toolchain

__all__ = [
    "CompiledKernel",
    "compile_kernel",
    "default_toolchain",
    "clear_compile_cache",
]

_LANGUAGES = ("cuda", "hip", "ompx", "omp")

#: Memoized build artifacts: compiles are pure functions of their inputs,
#: and the launch path may compile the same kernel once per launch.
_COMPILE_CACHE: dict = {}


def clear_compile_cache() -> None:
    """Drop every memoized compile artifact (tests and hot-reload hooks)."""
    _COMPILE_CACHE.clear()


@dataclass(frozen=True)
class CompiledKernel:
    """The artifact of one (kernel, language, toolchain, device) build."""

    name: str
    language: str
    toolchain: Toolchain
    device: DeviceSpec
    traits: KernelTraits
    codegen: CodegenInfo
    registers: int
    static_shared_bytes: int
    binary_bytes: int
    efficiency: float
    hints: Mapping[str, bool] = field(default_factory=dict)

    @property
    def effective_shared_bytes(self) -> int:
        """Static shared memory plus heap-to-shared relocations."""
        return self.static_shared_bytes + self.codegen.heap_to_shared_bytes


def default_toolchain(language: str, vendor_compiler: bool = False) -> Toolchain:
    """The toolchain the paper pairs with each version label.

    ``vendor_compiler=True`` selects the ``cuda-nvcc``/``hip-hipcc`` bars.
    """
    if language == "cuda":
        return NVCC if vendor_compiler else LLVM_CLANG
    if language == "hip":
        return HIPCC if vendor_compiler else LLVM_CLANG
    if language == "ompx":
        return OMPX_PROTO
    if language == "omp":
        return OMP_LLVM
    raise CompileError(f"unknown language {language!r}; expected one of {_LANGUAGES}")


def compile_kernel(
    kernel: Callable,
    device: DeviceSpec,
    *,
    language: Optional[str] = None,
    toolchain: Optional[Toolchain] = None,
    shared_bytes: int = 0,
    region_traits: Optional[RegionTraits] = None,
    hints: Optional[Mapping[str, bool]] = None,
) -> CompiledKernel:
    """Build a kernel for a device.

    ``language`` defaults to the kernel wrapper's own (``@cuda.kernel``
    sets "cuda", ``@ompx.bare_kernel`` sets "ompx").  ``shared_bytes`` is
    the kernel's static shared usage (the simulator knows the truth at run
    time; the compile step takes it as a declaration, like ``__shared__``
    sizes in real source).  ``hints`` are the documented perf hints
    (``lto_inlining``, ``shared_demotable``).
    """
    language = language or getattr(kernel, "language", None)
    if language not in _LANGUAGES:
        raise CompileError(
            f"cannot determine language for {kernel!r}; pass language= or use "
            f"a layer decorator"
        )
    toolchain = toolchain or default_toolchain(language)
    hints = dict(hints or {})
    try:
        cache_key = (
            kernel, device, language, toolchain, int(shared_bytes),
            region_traits, tuple(sorted(hints.items())),
        )
        cached = _COMPILE_CACHE.get(cache_key)
    except TypeError:  # unhashable input somewhere — just compile
        cache_key, cached = None, None
    if cached is not None:
        return cached
    traits = analyze_kernel(kernel)

    if language in ("cuda", "hip", "ompx"):
        if language == "ompx" and toolchain is not OMPX_PROTO and toolchain.name != "ompx-proto":
            raise CompileError(
                f"ompx kernels need the prototype toolchain, not {toolchain.name!r} "
                f"(only the prototype implements the §3.1/§3.3 extensions)"
            )
        # Retention of inlined device functions is the *toolchain's*
        # behaviour (binary_bytes accounts for it); the bare codegen itself
        # adds nothing.
        codegen = lower_region(RegionTraits(style="bare"))
    else:
        if region_traits is None:
            region_traits = RegionTraits(style="worksharing")
        if region_traits.style == "bare":
            raise CompileError(
                "bare region traits with language='omp': bare is the ompx "
                "extension; use language='ompx'"
            )
        codegen = lower_region(region_traits)

    compiled = CompiledKernel(
        name=traits.name,
        language=language,
        toolchain=toolchain,
        device=device,
        traits=traits,
        codegen=codegen,
        registers=toolchain.registers(traits, codegen),
        static_shared_bytes=shared_bytes,
        binary_bytes=toolchain.binary_bytes(traits, codegen),
        efficiency=toolchain.instruction_efficiency(traits, codegen, device, hints),
        hints=hints,
    )
    if cache_key is not None:
        _COMPILE_CACHE[cache_key] = compiled
    return compiled
