"""Static analysis of kernel bodies.

The performance differences the paper explains all trace back to facts a
compiler derives from the kernel *source*: how many registers the body
wants, whether device functions survive inlining cleanup (SU3's 29 KB
binary, §4.2.3), whether shared variables can be demoted (AIDW, §4.2.4),
how much thread-local state might escape (RSBench's heap-to-shared,
§4.2.2).  This module derives the same structural facts from the Python
kernel DSL by walking its AST.

The analysis is deliberately *syntactic* — it looks at what the kernel
says, the way a front end would, and never at runtime values.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass
from typing import Callable, Optional, Set

from ..errors import CompileError

__all__ = ["KernelTraits", "analyze_kernel", "clear_traits_cache"]

# Method names on the kernel façades, bucketed by what they tell a compiler.
_BARRIER_CALLS = {"syncthreads", "sync_threads", "sync_thread_block", "sync_block", "barrier"}
_WARP_CALLS = {
    "syncwarp", "sync_warp",
    "shfl_sync", "shfl_up_sync", "shfl_down_sync", "shfl_xor_sync",
    "ballot_sync", "any_sync", "all_sync", "warp_reduce",
    "match_any_sync", "match_all_sync",
}
_SHARED_CALLS = {
    "shared", "shared_array", "groupprivate", "extern_shared",
    "dynamic_groupprivate", "dynamic_shared",
}
_ATOMIC_PREFIXES = ("atomic", "atomicAdd")
#: Index/query intrinsics: exact names plus their _x/_y/_z variants.
_INDEX_PREFIXES = (
    "thread_id", "block_id", "block_dim", "grid_dim", "global_thread_id",
    "lane_id", "warp_id", "warp_size", "omp_get_",
)
_FACADE_CALLS = (
    _BARRIER_CALLS
    | _WARP_CALLS
    | _SHARED_CALLS
    | {"array", "deref", "mapped", "device_ptr"}
    # Portable vector intrinsics (ThreadCtx and VectorThreadCtx alike).
    | {"select", "load", "store", "loop_max"}
)
#: Calls that are safe inside a lane-batched (vectorized) kernel body:
#: façade intrinsics plus elementwise NumPy/math names and shape-free
#: builtins.  Anything else defeats automatic vectorization.
_VECTOR_SAFE_CALLS = frozenset({
    "where", "sqrt", "abs", "fabs", "floor", "ceil", "exp", "log",
    "minimum", "maximum", "clip", "sum", "len", "int", "float",
    "min", "max", "range", "arange",
    "float64", "float32", "int32", "int64", "uint32", "uint64", "dtype",
})


def _is_facade(name: str) -> bool:
    """Is this call a kernel-façade intrinsic rather than a device function?"""
    return name in _FACADE_CALLS or name.startswith(_INDEX_PREFIXES)


@dataclass(frozen=True)
class KernelTraits:
    """Structural facts about one kernel body."""

    name: str
    #: Rough operation count: arithmetic + comparison + call AST nodes.
    body_ops: int
    #: Maximum loop nesting depth.
    loop_depth: int
    #: Number of conditional branches.
    branches: int
    uses_barrier: bool
    uses_warp_collectives: bool
    uses_shared: bool
    uses_atomics: bool
    #: Calls to functions that are *not* façade built-ins — device functions
    #: the toolchain must inline and then (ideally) eliminate.
    device_fn_calls: int
    #: Distinct local variables assigned in the body (register candidates).
    local_vars: int
    #: True when the body is straight-line (no branches, loops or early
    #: returns) and every call is a façade intrinsic or an elementwise
    #: whitelisted function — i.e. it can run lane-batched as-is.
    vectorizable: bool = False

    @property
    def register_demand(self) -> int:
        """Registers the body itself wants, before toolchain effects.

        A simple live-value estimate: locals plus a share of the expression
        temporaries, floored at the ABI minimum.  Toolchains then add their
        own overheads (runtime state, spill behaviour).
        """
        return max(16, self.local_vars * 2 + self.body_ops // 24)


class _KernelVisitor(ast.NodeVisitor):
    def __init__(self) -> None:
        self.ops = 0
        self.loop_depth = 0
        self._cur_depth = 0
        self.branches = 0
        self.barrier = False
        self.warp = False
        self.shared = False
        self.atomics = False
        self.device_calls = 0
        self.locals: Set[str] = set()
        #: Set by any construct that defeats lane-batched execution.
        self.vector_hostile = False

    # --- operations -------------------------------------------------------
    def visit_BinOp(self, node: ast.BinOp) -> None:  # noqa: N802
        self.ops += 1
        self.generic_visit(node)

    def visit_UnaryOp(self, node: ast.UnaryOp) -> None:  # noqa: N802
        self.ops += 1
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:  # noqa: N802
        self.ops += len(node.ops)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:  # noqa: N802
        self.ops += 1
        self._record_target(node.target)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:  # noqa: N802
        for target in node.targets:
            self._record_target(target)
        self.generic_visit(node)

    def _record_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.locals.add(target.id)
        elif isinstance(target, ast.Tuple):
            for elt in target.elts:
                self._record_target(elt)

    # --- control flow ---------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:  # noqa: N802
        self.vector_hostile = True
        self._loop(node)

    def visit_While(self, node: ast.While) -> None:  # noqa: N802
        self.vector_hostile = True
        self._loop(node)

    def _loop(self, node) -> None:
        self._cur_depth += 1
        self.loop_depth = max(self.loop_depth, self._cur_depth)
        self.generic_visit(node)
        self._cur_depth -= 1

    def visit_If(self, node: ast.If) -> None:  # noqa: N802
        self.branches += 1
        self.vector_hostile = True
        self.generic_visit(node)

    def visit_IfExp(self, node: ast.IfExp) -> None:  # noqa: N802
        self.branches += 1
        self.vector_hostile = True
        self.generic_visit(node)

    def _hostile(self, node) -> None:
        """Mark a construct that defeats lane-batched execution and recurse."""
        self.vector_hostile = True
        self.generic_visit(node)

    # Early returns, exception handling, short-circuit booleans and
    # comprehensions all have per-thread control flow a lane batch cannot
    # follow.
    visit_Return = _hostile  # noqa: N815
    visit_Try = _hostile  # noqa: N815
    visit_With = _hostile  # noqa: N815
    visit_Assert = _hostile  # noqa: N815
    visit_Raise = _hostile  # noqa: N815
    visit_BoolOp = _hostile  # noqa: N815
    visit_Lambda = _hostile  # noqa: N815
    visit_ListComp = _hostile  # noqa: N815
    visit_SetComp = _hostile  # noqa: N815
    visit_DictComp = _hostile  # noqa: N815
    visit_GeneratorExp = _hostile  # noqa: N815
    visit_Yield = _hostile  # noqa: N815
    visit_YieldFrom = _hostile  # noqa: N815

    # --- calls ---------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:  # noqa: N802
        self.ops += 1
        name = self._callee_name(node)
        if name is not None:
            if name in _BARRIER_CALLS:
                self.barrier = True
            elif name in _WARP_CALLS:
                self.warp = True
                self.vector_hostile = True
            elif name in _SHARED_CALLS:
                self.shared = True
            elif (
                name.startswith(_ATOMIC_PREFIXES)
                or name.startswith("atomic")
                or self._is_atomic_namespace(node)
            ):
                self.atomics = True
                self.vector_hostile = True
            elif not _is_facade(name) and not self._is_builtin(name):
                self.device_calls += 1
                self.vector_hostile = True
            elif not _is_facade(name) and name not in _VECTOR_SAFE_CALLS:
                self.vector_hostile = True
        self.generic_visit(node)

    @staticmethod
    def _is_atomic_namespace(node: ast.Call) -> bool:
        """Detect ``ctx.atomic.<op>(...)`` calls, whose callee name is the op."""
        fn = node.func
        return (
            isinstance(fn, ast.Attribute)
            and isinstance(fn.value, ast.Attribute)
            and fn.value.attr == "atomic"
        )

    @staticmethod
    def _callee_name(node: ast.Call) -> Optional[str]:
        fn = node.func
        if isinstance(fn, ast.Attribute):
            return fn.attr
        if isinstance(fn, ast.Name):
            return fn.id
        return None

    @staticmethod
    def _is_builtin(name: str) -> bool:
        import builtins
        import math

        return hasattr(builtins, name) or hasattr(math, name) or name in {
            "sqrt", "exp", "log", "sin", "cos", "pow", "fabs", "floor", "ceil",
            "float64", "float32", "int32", "int64", "uint64", "uint32", "dtype",
            "arange", "zeros", "empty", "array",
        }


#: Memoized analysis results, keyed by the unwrapped kernel function.
_TRAITS_CACHE: dict = {}


def clear_traits_cache() -> None:
    """Drop every memoized analysis result (tests and hot-reload hooks)."""
    _TRAITS_CACHE.clear()


def analyze_kernel(kernel: Callable) -> KernelTraits:
    """Derive :class:`KernelTraits` from a kernel's Python source.

    Accepts a raw function or any of the language-layer wrappers
    (``KernelFunction``, ``BareKernel``) — the wrapped function is analyzed.
    Falls back to a bytecode-based estimate when source is unavailable
    (e.g. kernels defined in a REPL).  Results are memoized per function;
    :func:`clear_traits_cache` resets the cache.
    """
    fn = getattr(kernel, "fn", kernel)
    try:
        cached = _TRAITS_CACHE.get(fn)
    except TypeError:  # unhashable callable
        cached = None
    else:
        if cached is not None:
            return cached
    traits = _analyze_uncached(fn)
    try:
        _TRAITS_CACHE[fn] = traits
    except TypeError:
        pass
    return traits


def _analyze_uncached(fn: Callable) -> KernelTraits:
    """The uncached body of :func:`analyze_kernel`."""
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError):
        return _analyze_bytecode(fn)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:  # pragma: no cover - getsource output parses
        raise CompileError(f"cannot parse source of {fn!r}") from exc

    visitor = _KernelVisitor()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for stmt in node.body:
                visitor.visit(stmt)
            break
    else:  # pragma: no cover - getsource always yields a def
        raise CompileError(f"no function definition found in source of {fn!r}")

    return KernelTraits(
        name=getattr(fn, "__name__", "<kernel>"),
        body_ops=visitor.ops,
        loop_depth=visitor.loop_depth,
        branches=visitor.branches,
        uses_barrier=visitor.barrier,
        uses_warp_collectives=visitor.warp,
        uses_shared=visitor.shared,
        uses_atomics=visitor.atomics,
        device_fn_calls=visitor.device_calls,
        local_vars=len(visitor.locals),
        vectorizable=not visitor.vector_hostile,
    )


def _analyze_bytecode(fn: Callable) -> KernelTraits:
    """Source-free fallback: estimate traits from the compiled code object."""
    try:
        code = fn.__code__
    except AttributeError as exc:
        raise CompileError(f"cannot analyze {fn!r}: no source and no bytecode") from exc
    names = set(code.co_names)
    ops = max(8, len(code.co_code) // 4)
    # Method calls on façades show up in co_names.
    barrier = bool(names & _BARRIER_CALLS)
    warp = bool(names & _WARP_CALLS)
    shared = bool(names & _SHARED_CALLS)
    atomics = any(n.startswith("atomic") for n in names)
    device_calls = sum(
        1
        for n in names
        if not _is_facade(n)
        and not n.startswith("atomic")
        and not _KernelVisitor._is_builtin(n)
        and n[:1].islower()
        and n not in ("np", "numpy", "math")
    )
    return KernelTraits(
        name=getattr(fn, "__name__", "<kernel>"),
        body_ops=ops,
        loop_depth=1,
        branches=ops // 16,
        uses_barrier=barrier,
        uses_warp_collectives=warp,
        uses_shared=shared,
        uses_atomics=atomics,
        device_fn_calls=device_calls,
        local_vars=code.co_nlocals,
    )
