"""Toolchain models: how each compiler lowers a kernel's traits.

The paper compares four toolchains per platform (§4.1): the prototype
(`ompx`), LLVM/Clang for classic OpenMP (`omp`), LLVM/Clang for the native
kernel language (`cuda`/`hip`) and the vendor compiler (`cuda-nvcc`/
`hip-hipcc`).  Its profiling attributes the performance deltas to concrete
toolchain behaviours, which these models encode:

* **Register allocation.**  The ompx prototype spends slightly more
  registers when device functions are involved (SU3: 26 vs CUDA's 24,
  §4.2.3).  Registers drive occupancy in :mod:`repro.perf`.
* **Binary size / cleanup.**  The prototype inlines device functions but
  fails to *eliminate* the originals, inflating the device binary (29 KB
  vs 3.9 KB for SU3, §4.2.3).  Big binaries cost instruction-cache
  efficiency.
* **Cross-TU (LTO) inlining.**  The OpenMP offload pipeline links device
  code with full visibility, which can produce better code for kernels
  whose hot path crosses function boundaries — the modelled reason the
  ompx versions beat native on XSBench/RSBench/Stencil.  Exposed through
  the ``lto_inlining`` perf hint.
* **Shared-variable demotion.**  Native compilers demote provably
  thread-private ``__shared__`` data into registers (AIDW, §4.2.4); the
  prototype does not.  Exposed through the ``shared_demotable`` hint.

Perf hints are *facts about the kernel* that our syntactic analysis cannot
prove but the paper's profiling established; they are declared per kernel
and listed in EXPERIMENTS.md as calibration inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..errors import CompileError
from ..gpu.device import DeviceSpec
from ..openmp.codegen import CodegenInfo
from .analysis import KernelTraits

__all__ = [
    "Toolchain",
    "LLVM_CLANG",
    "NVCC",
    "HIPCC",
    "OMPX_PROTO",
    "OMP_LLVM",
    "toolchain_for",
]

# Bytes of device binary a typical inlined-but-retained device function
# keeps alive (calibrated to SU3's 29 KB-vs-3.9 KB observation across its
# handful of helpers).
_RETAINED_FN_BYTES = 6 * 1024
_BASE_BINARY_BYTES = 3 * 1024
_ELIMINATED_FN_BYTES = 256  # a cleaned-up device function leaves almost nothing


@dataclass(frozen=True)
class Toolchain:
    """One compiler's lowering behaviour."""

    name: str
    #: Registers added per thread when device-function calls survive in the
    #: body (imperfect register coalescing around call boundaries).
    call_register_penalty: int = 0
    #: Whether the pipeline eliminates device functions after inlining.
    eliminates_inlined_fns: bool = True
    #: Whether device code is linked with whole-program visibility
    #: (OpenMP offload's device LTO).
    cross_tu_lto: bool = False
    #: Whether provably thread-private shared arrays are demoted to
    #: registers (needs the kernel's ``shared_demotable`` hint).
    demotes_shared: bool = True
    #: Whether the backend's allocator spills register-hungry kernels to
    #: scratch on wide-wavefront (AMD) targets — a long-standing AMDGPU
    #: backend behaviour for temporary-heavy kernels.  The prototype's
    #: OpenMP pipeline schedules those kernels differently and avoids it
    #: (the modelled source of SU3's 28% ompx win on MI250, §4.2.3).
    amd_spill_prone: bool = False

    # --- resource lowering ---------------------------------------------------
    def registers(self, traits: KernelTraits, codegen: CodegenInfo) -> int:
        """Per-thread registers this toolchain allocates for the kernel."""
        regs = traits.register_demand
        if traits.device_fn_calls:
            regs += self.call_register_penalty
        regs += codegen.register_overhead
        return min(regs, 255)

    def binary_bytes(self, traits: KernelTraits, codegen: CodegenInfo) -> int:
        """Device-binary size this toolchain emits for the kernel."""
        per_fn = _ELIMINATED_FN_BYTES if self.eliminates_inlined_fns else _RETAINED_FN_BYTES
        body = _BASE_BINARY_BYTES + traits.body_ops * 16
        return body + traits.device_fn_calls * per_fn + codegen.binary_overhead_bytes

    def instruction_efficiency(
        self,
        traits: KernelTraits,
        codegen: CodegenInfo,
        device: DeviceSpec,
        hints: Mapping[str, bool],
    ) -> float:
        """Relative quality of the emitted instruction stream (1.0 = reference).

        Multiplies achievable throughput in the roofline model.  Every
        term is tied to a mechanism documented in the module docstring.
        """
        eff = 1.0
        if self.cross_tu_lto and hints.get("lto_inlining") and traits.device_fn_calls:
            # Whole-program inlining of a call-heavy hot path.
            eff *= 1.0 + min(0.12, 0.03 * traits.device_fn_calls)
        if (
            self.demotes_shared
            and hints.get("shared_demotable")
            and traits.uses_shared
            and device.vendor == "nvidia"
        ):
            # Thread-private shared arrays become registers: cheaper access.
            # The win is NVIDIA-specific: AMD's LDS latency sits close to
            # its register-operand latency, which matches the paper's AIDW
            # observation (demotion matters on A100, parity on MI250).
            eff *= 1.05
        binary = self.binary_bytes(traits, codegen)
        if binary > device.icache_bytes:
            # Instruction-cache pressure: each 8 KiB past the i-cache costs
            # several percent of issue bandwidth (SU3's 29 KB ompx binary on
            # the 16 KB-i-cache A100, §4.2.3 — the modelled source of its
            # 9% deficit there).
            over = binary - device.icache_bytes
            eff *= 1.0 - min(0.15, 0.06 * over / (8 * 1024))
        if (
            self.amd_spill_prone
            and device.vendor == "amd"
            and hints.get("amd_scratch_spills")
        ):
            # Scratch spills on temporary-heavy kernels (SU3's 3x3 complex
            # accumulators) with the AMDGPU backend; the prototype's OpenMP
            # pipeline schedules the kernel without them (§4.2.3's 28%).
            eff *= 0.80
        return eff


LLVM_CLANG = Toolchain(
    name="llvm-clang",
    call_register_penalty=0,
    eliminates_inlined_fns=True,
    cross_tu_lto=False,
    demotes_shared=True,
    amd_spill_prone=True,  # shares the AMDGPU backend's spill behaviour
)

NVCC = Toolchain(
    name="nvcc",
    call_register_penalty=0,
    eliminates_inlined_fns=True,
    cross_tu_lto=False,
    # The paper's AIDW PTX comparison (§4.2.4) found the *Clang* CUDA build
    # demoted the kernel's shared variables while the nvcc build (which
    # ompx merely matched) did not.
    demotes_shared=False,
)

HIPCC = Toolchain(
    name="hipcc",
    call_register_penalty=1,  # ROCm's allocator is a touch more spill-happy
    eliminates_inlined_fns=True,
    cross_tu_lto=False,
    demotes_shared=True,
    amd_spill_prone=True,
)

#: The paper's LLVM 18 prototype: OpenMP offload pipeline with device LTO,
#: but with the cleanup and demotion gaps its profiling uncovered.
OMPX_PROTO = Toolchain(
    name="ompx-proto",
    call_register_penalty=2,      # SU3: 26 regs vs CUDA's 24
    eliminates_inlined_fns=False,  # SU3: 29 KB binary vs 3.9 KB
    cross_tu_lto=True,
    demotes_shared=False,          # AIDW: shared vars not demoted
)

#: Classic OpenMP target offloading with stock LLVM/Clang: same pipeline
#: visibility as the prototype, plus the device runtime (accounted in
#: CodegenInfo, not here).
OMP_LLVM = Toolchain(
    name="omp-llvm",
    call_register_penalty=2,
    eliminates_inlined_fns=True,
    cross_tu_lto=True,
    demotes_shared=False,
)

_BY_NAME: Dict[str, Toolchain] = {
    t.name: t for t in (LLVM_CLANG, NVCC, HIPCC, OMPX_PROTO, OMP_LLVM)
}


def toolchain_for(name: str) -> Toolchain:
    """Look up a toolchain model by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise CompileError(
            f"unknown toolchain {name!r}; available: {sorted(_BY_NAME)}"
        ) from None
