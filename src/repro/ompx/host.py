"""ompx host APIs (§3.4): ``ompx_malloc`` & friends.

The paper adapts the user-facing APIs of Doerfert et al. (PACT'22,
"Breaking the Vendor Lock") so CUDA host calls port by renaming:
``cudaMalloc -> ompx_malloc``, ``cudaMemcpy -> ompx_memcpy``,
``cudaDeviceSynchronize -> ompx_device_synchronize``.

One deliberate improvement over CUDA (and faithful to a target-agnostic
runtime layer): the copy direction is *inferred* from the operand types —
a :class:`DevicePointer` is device memory, a NumPy array is host memory —
so there is no ``cudaMemcpyKind`` to get wrong.

``ompx_malloc``/``ompx_memcpy``/``ompx_memset`` take an optional
``stream=`` keyword (mirroring ``cudaMemcpyAsync``): with a stream the
operation is *enqueued* and returns immediately; without one it keeps the
synchronous default-stream semantics.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import MappingError
from ..gpu.device import Device, Placement, resolve_placement
from ..gpu.memory import DevicePointer, memcpy_peer, peer_copy
from ..gpu.stream import Stream
from ..trace import get_tracer

__all__ = [
    "ompx_malloc",
    "ompx_free",
    "ompx_memcpy",
    "ompx_memcpy_peer",
    "ompx_memset",
    "ompx_memcpy_to_symbol",
    "ompx_memcpy_from_symbol",
    "ompx_device_synchronize",
    "ompx_device_reset",
    "ompx_device_enable_peer_access",
    "ompx_device_disable_peer_access",
    "ompx_device_can_access_peer",
    "ompx_stream_create",
    "ompx_stream_synchronize",
    "ompx_occupancy_max_active_blocks",
]


def _resolve_device(device: Placement) -> Device:
    """The one place default-device resolution happens for every host API.

    Since the placement redesign this is just
    :func:`repro.gpu.device.resolve_placement`: every ``device=`` below
    takes an ``int`` ordinal, a :class:`Device`, or ``None`` for the
    thread-current device.
    """
    return resolve_placement(device)


def _memcpy_direction(dst, src) -> str:
    """Inferred copy direction, also the trace span's ``direction`` arg."""
    if isinstance(dst, DevicePointer) and isinstance(src, DevicePointer):
        return "d2d" if dst.device_ordinal == src.device_ordinal else "p2p"
    if isinstance(dst, DevicePointer):
        return "h2d"
    if isinstance(src, DevicePointer):
        return "d2h"
    return "h2h"


def ompx_malloc(
    size: int,
    device: Placement = None,
    *,
    stream: Optional[Stream] = None,
) -> DevicePointer:
    """Allocate device global memory (``cudaMalloc`` equivalent).

    Allocation itself is immediate (the pointer must be returned), but
    passing ``stream=`` orders the allocation's visibility after the work
    already queued on that stream, like ``cudaMallocAsync``.
    """
    tracer = get_tracer()
    if tracer is None:
        ptr = _resolve_device(device).allocator.malloc(size)
    else:
        with tracer.span("ompx_malloc", cat="host-api", bytes=int(size)):
            ptr = _resolve_device(device).allocator.malloc(size)
    if stream is not None:
        # fence: later stream work sees the allocation
        stream.enqueue(lambda: None, label="ompx_malloc-fence")
    return ptr


def ompx_free(ptr: DevicePointer, device: Placement = None) -> None:
    """``ompx_free``: release device memory (``cudaFree`` equivalent)."""
    _resolve_device(device).allocator.free(ptr)


def ompx_memcpy(
    dst,
    src,
    size: int,
    device: Placement = None,
    *,
    stream: Optional[Stream] = None,
) -> None:
    """Copy ``size`` bytes; direction inferred from operand types.

    With ``stream=`` the copy is enqueued on that stream and this call
    returns immediately (``cudaMemcpyAsync``); synchronize the stream
    before relying on the data.  Without a stream the copy is synchronous
    with respect to the device's default stream.
    """
    dev = _resolve_device(device)
    alloc = dev.allocator

    def do_copy() -> None:
        if isinstance(dst, DevicePointer) and isinstance(src, DevicePointer):
            # cudaMemcpyDefault semantics: direction (and the owning
            # context) come from the pointers, not from the caller's
            # current device.  Same-device pairs are an ordinary d2d on
            # the owning allocator; cross-device pairs route through the
            # peer path instead of raising InvalidPointerError.
            if dst.device_ordinal == src.device_ordinal:
                _resolve_device(dst.device_ordinal).allocator.memcpy_d2d(
                    dst, src, size
                )
            else:
                memcpy_peer(dst, src, size)
        elif isinstance(dst, DevicePointer):
            host = np.ascontiguousarray(src).view(np.uint8).reshape(-1)[:size]
            alloc.memcpy_h2d(dst, host)
        elif isinstance(src, DevicePointer):
            host = dst.view(np.uint8).reshape(-1)[:size]
            alloc.memcpy_d2h(host, src)
        else:
            raise MappingError(
                "ompx_memcpy needs at least one device pointer; for host-to-host "
                "just assign the arrays"
            )

    direction = _memcpy_direction(dst, src)
    if stream is not None:
        stream.enqueue(
            do_copy,
            label="ompx_memcpy",
            trace_cat="memcpy",
            trace_args={"bytes": int(size), "direction": direction},
        )
        return
    tracer = get_tracer()
    if tracer is None:
        dev.default_stream.synchronize()
        do_copy()
        return
    with tracer.span("ompx_memcpy", cat="memcpy",
                     bytes=int(size), direction=direction):
        dev.default_stream.synchronize()
        do_copy()


def ompx_memset(
    ptr: DevicePointer,
    value: int,
    size: int,
    device: Placement = None,
    *,
    stream: Optional[Stream] = None,
) -> None:
    """``ompx_memset``: fill device memory with a byte value.

    ``stream=`` enqueues the fill asynchronously (``cudaMemsetAsync``).
    """
    dev = _resolve_device(device)
    if stream is not None:
        stream.enqueue(
            lambda: dev.allocator.memset(ptr, value, size),
            label="ompx_memset",
            trace_cat="host-api",
            trace_args={"bytes": int(size)},
        )
        return
    tracer = get_tracer()
    if tracer is None:
        dev.default_stream.synchronize()
        dev.allocator.memset(ptr, value, size)
        return
    with tracer.span("ompx_memset", cat="host-api", bytes=int(size)):
        dev.default_stream.synchronize()
        dev.allocator.memset(ptr, value, size)


def ompx_memcpy_to_symbol(symbol: str, src, device: Placement = None) -> None:
    """Upload a constant-memory symbol (``cudaMemcpyToSymbol`` equivalent)."""
    dev = _resolve_device(device)
    dev.default_stream.synchronize()
    dev.write_constant(symbol, src)


def ompx_memcpy_from_symbol(dst: np.ndarray, symbol: str, device: Placement = None) -> None:
    """Read a constant-memory symbol back to the host."""
    dev = _resolve_device(device)
    dev.default_stream.synchronize()
    np.copyto(dst, dev.read_constant(symbol).reshape(dst.shape))


def ompx_device_synchronize(device: Placement = None) -> None:
    """``cudaDeviceSynchronize`` equivalent."""
    dev = _resolve_device(device)
    tracer = get_tracer()
    if tracer is None:
        dev.synchronize()
        return
    with tracer.span("ompx_device_synchronize", cat="sync",
                     device=dev.spec.name):
        dev.synchronize()


def ompx_device_reset(device: Placement = None) -> None:
    """``cudaDeviceReset`` equivalent: tear down and re-arm the context.

    Destroys every stream, frees every allocation and constant symbol,
    and clears the sticky error a kernel fault left behind — the only
    way to recover a poisoned device context (see
    :class:`~repro.errors.StickyContextError`).  All outstanding
    :class:`DevicePointer` handles for the device become invalid.
    """
    dev = _resolve_device(device)
    tracer = get_tracer()
    if tracer is None:
        dev.reset()
        return
    with tracer.span("ompx_device_reset", cat="host-api", device=dev.spec.name):
        dev.reset()


def ompx_memcpy_peer(
    dst: DevicePointer,
    dst_device: Placement,
    src: DevicePointer,
    src_device: Placement,
    size: int,
    *,
    stream: Optional[Stream] = None,
) -> None:
    """Copy ``size`` bytes between two devices (``cudaMemcpyPeer`` shape).

    The device arguments are validated against the pointers' owners —
    passing the wrong ordinal is the classic peer-copy porting bug, and
    the simulator's job is to catch it loudly.  ``stream=`` enqueues the
    copy (``cudaMemcpyPeerAsync``); the modeled cost depends on whether
    peer access is enabled between the two contexts (see
    :func:`repro.perf.transfer.peer_transfer_seconds`).
    """
    dst_dev = _resolve_device(dst_device)
    src_dev = _resolve_device(src_device)
    if dst_dev.ordinal != dst.device_ordinal:
        raise MappingError(
            f"ompx_memcpy_peer: dst pointer belongs to device "
            f"{dst.device_ordinal}, not device {dst_dev.ordinal}"
        )
    if src_dev.ordinal != src.device_ordinal:
        raise MappingError(
            f"ompx_memcpy_peer: src pointer belongs to device "
            f"{src.device_ordinal}, not device {src_dev.ordinal}"
        )
    if stream is not None:
        stream.enqueue(
            lambda: peer_copy(dst, src, size, api="ompx_memcpy_peer"),
            label="ompx_memcpy_peer",
            trace_cat="memcpy",
            trace_args={"bytes": int(size), "direction": "p2p",
                        "src_device": src_dev.ordinal,
                        "dst_device": dst_dev.ordinal},
        )
        return
    peer_copy(dst, src, size, api="ompx_memcpy_peer")


def ompx_device_enable_peer_access(peer: Placement, device: Placement = None) -> None:
    """Enable direct access to ``peer`` from ``device``.

    ``cudaDeviceEnablePeerAccess`` equivalent (directional: enable both
    ways for symmetric traffic).  Enablement changes the *modeled* cost
    of peer copies from staged-through-host to the direct link.
    """
    _resolve_device(device).enable_peer_access(_resolve_device(peer))


def ompx_device_disable_peer_access(peer: Placement, device: Placement = None) -> None:
    """Revoke direct access to ``peer`` from ``device``."""
    _resolve_device(device).disable_peer_access(_resolve_device(peer))


def ompx_device_can_access_peer(device: Placement, peer: Placement) -> bool:
    """Whether a direct interconnect exists (``cudaDeviceCanAccessPeer``)."""
    return _resolve_device(device).can_access_peer(_resolve_device(peer))


def ompx_stream_create(device: Placement = None, name: str = "") -> Stream:
    """``ompx_stream_create``: new asynchronous work queue."""
    return Stream(_resolve_device(device), name=name)


def ompx_stream_synchronize(stream: Stream) -> None:
    """``ompx_stream_synchronize``: wait for a stream to drain."""
    stream.synchronize()


def ompx_occupancy_max_active_blocks(
    kernel,
    block_threads: int,
    shared_bytes: int = 0,
    device: Placement = None,
) -> int:
    """Resident blocks per SM for a kernel at a block size.

    The ompx rendering of ``cudaOccupancyMaxActiveBlocksPerMultiprocessor``:
    the kernel is "compiled" by the toolchain model and its register count
    drives the standard occupancy calculation.  The Figure 8 harness uses
    the same machinery internally, so numbers here match the model exactly.
    """
    from ..compiler.compile import compile_kernel
    from ..perf.occupancy import compute_occupancy

    spec = _resolve_device(device).spec
    compiled = compile_kernel(kernel, spec, shared_bytes=shared_bytes)
    info = compute_occupancy(spec, block_threads, compiled.registers,
                             compiled.effective_shared_bytes)
    return info.blocks_per_sm
