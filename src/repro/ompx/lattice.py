"""Grid-style lazy lattice expressions over the §3.6 vendor BLAS wrappers.

Lattice-QCD frameworks such as Grid build site-local linear algebra from
*expression templates*: ``c = a * b`` does not compute anything — it
builds a tiny expression tree, and the assignment lowers the whole tree
into one fused device call.  This module reproduces that pattern on top
of the portable ``ompxblas_*`` layer: a site-wise product of two SU(3)
lattice fields fuses into a **single** strided-batched complex GEMM
(batch = sites, m = n = k = 3), exactly how a vendor library wants to
see it, instead of one tiny matmul per site.

The grammar deliberately covers the GEMM-shaped subset::

    c.assign(a * b)                      # C[s] = A[s] @ B[s]
    c.assign(alpha * (a * b))            # C[s] = alpha * A[s] @ B[s]
    c.assign(a * b + beta * c)           # C[s] = A[s] @ B[s] + beta*C[s]

where any operand field may be a *broadcast* field (one matrix applied
to every site — the SU(3) link matrices), which lowers to a zero-stride
batched operand, as ``cublasZgemmStridedBatched`` allows.  Anything the
single fused call cannot express raises ``TypeError`` at assignment
time, the expression-template equivalent of a compile error.

Matrices are stored row-major per site (C order).  The column-major
BLAS sees each one transposed, so the lowering swaps the operands —
``C^T = B^T @ A^T`` — the standard trick row-major cuBLAS callers use.
Because complex multiplication is bitwise commutative and the simulated
backend accumulates in ascending ``k`` order, the fused GEMM is
**bit-identical** to a hand-written per-site triple loop.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..gpu.memory import DevicePointer
from .vendor import OMPXBLAS_OP_N, OmpxBlasHandle, ompxblas_zgemm_strided_batched

__all__ = ["LatticeExpr", "LatticeField", "MatMul", "Scale", "Add"]

_NC = 3                 # SU(3)
_MATRIX_ELEMS = _NC * _NC


class LatticeExpr:
    """Base of the expression tree: operators build nodes, never compute."""

    def __mul__(self, other):
        if isinstance(other, LatticeExpr):
            return MatMul(self, other)
        return Scale(float(other), self)

    def __rmul__(self, scalar):
        return Scale(float(scalar), self)

    def __add__(self, other):
        if not isinstance(other, LatticeExpr):
            return NotImplemented
        return Add(self, other)


class MatMul(LatticeExpr):
    """Site-wise matrix product of two fields (deferred)."""

    def __init__(self, left: LatticeExpr, right: LatticeExpr) -> None:
        self.left = left
        self.right = right


class Scale(LatticeExpr):
    """A real scalar times a sub-expression (deferred)."""

    def __init__(self, alpha: float, expr: LatticeExpr) -> None:
        self.alpha = alpha
        self.expr = expr


class Add(LatticeExpr):
    """Sum of two sub-expressions (deferred)."""

    def __init__(self, left: LatticeExpr, right: LatticeExpr) -> None:
        self.left = left
        self.right = right


class LatticeField(LatticeExpr):
    """A device-resident lattice of 3x3 complex matrices.

    ``sites == 1`` marks a *broadcast* field (e.g. one SU(3) link matrix
    applied at every site); it lowers to a zero-stride batched operand.
    """

    def __init__(self, handle: OmpxBlasHandle, sites: int) -> None:
        if sites < 1:
            raise ValueError(f"a lattice field needs >= 1 site, got {sites}")
        self.handle = handle
        self.sites = int(sites)
        self._nbytes = self.sites * _MATRIX_ELEMS * 16
        self.ptr: Optional[DevicePointer] = (
            handle.device.allocator.malloc(self._nbytes)
        )

    # --- lifecycle -----------------------------------------------------------
    @classmethod
    def from_host(cls, handle: OmpxBlasHandle, host: np.ndarray) -> "LatticeField":
        """Upload a ``(sites, 3, 3)`` complex array as a field."""
        host = np.ascontiguousarray(host, dtype=np.complex128)
        if host.ndim != 3 or host.shape[1:] != (_NC, _NC):
            raise ValueError(
                f"expected a (sites, {_NC}, {_NC}) array, got shape {host.shape}"
            )
        field = cls(handle, host.shape[0])
        handle.device.allocator.memcpy_h2d(field.ptr, host)
        return field

    def to_host(self) -> np.ndarray:
        """Download the field; drains the handle's stream first."""
        self.handle.device.synchronize()
        out = np.zeros((self.sites, _NC, _NC), dtype=np.complex128)
        self.handle.device.allocator.memcpy_d2h(out, self.ptr)
        return out

    def free(self) -> None:
        """Release the device allocation (idempotent)."""
        if self.ptr is not None:
            self.handle.device.allocator.free(self.ptr)
            self.ptr = None

    # --- assignment: lower the tree into one fused vendor call ---------------
    def assign(self, expr: LatticeExpr) -> "LatticeField":
        """Evaluate ``expr`` into this field with a single batched GEMM."""
        alpha, matmul, beta = _normalize(expr, self)
        left, right = matmul.left, matmul.right
        for operand in (left, right):
            if not isinstance(operand, LatticeField):
                raise TypeError(
                    "lattice matmul operands must be fields; nested products "
                    "need an explicit temporary"
                )
            if operand.sites not in (1, self.sites):
                raise TypeError(
                    f"operand has {operand.sites} sites; the target has "
                    f"{self.sites} (broadcast fields must have exactly 1)"
                )
            if operand.ptr == self.ptr:
                raise TypeError(
                    "the assignment target aliases a matmul operand; GEMM "
                    "forbids C overlapping A or B"
                )
        stride = lambda f: 0 if f.sites == 1 else _MATRIX_ELEMS
        # Row-major caller, column-major library: pass (B, A) so the
        # library computes C^T = B^T @ A^T in place.
        ompxblas_zgemm_strided_batched(
            self.handle, OMPXBLAS_OP_N, OMPXBLAS_OP_N, _NC, _NC, _NC,
            complex(alpha),
            right.ptr, _NC, stride(right),
            left.ptr, _NC, stride(left),
            complex(beta),
            self.ptr, _NC, _MATRIX_ELEMS,
            self.sites,
        )
        return self


def _normalize(
    expr: LatticeExpr, out: LatticeField
) -> Tuple[float, MatMul, float]:
    """Flatten ``expr`` to ``alpha * (A @ B) + beta * out`` or raise.

    This is the whole "template instantiation": the supported grammar is
    exactly what one strided-batched GEMM can fuse.
    """
    def core(e: LatticeExpr) -> LatticeExpr:
        while isinstance(e, Scale):
            e = e.expr
        return e

    alpha, node, beta = 1.0, expr, 0.0
    if isinstance(node, Add):
        node, tail = node.left, node.right
        if isinstance(core(tail), MatMul) and not isinstance(core(node), MatMul):
            node, tail = tail, node  # canonical order: matmul + accumulate
        if not isinstance(core(node), MatMul):
            raise TypeError(
                "expression does not fuse into one batched GEMM: a sum "
                "needs an alpha * (A * B) term; use an explicit temporary "
                "for general field sums"
            )
        beta_scale = 1.0
        if isinstance(tail, Scale):
            beta_scale, tail = tail.alpha, tail.expr
        if tail is not out:
            raise TypeError(
                "the additive term must be the assignment target itself "
                "(GEMM accumulates beta*C); use an explicit temporary "
                "for general field sums"
            )
        beta = beta_scale
    while isinstance(node, Scale):
        alpha *= node.alpha
        node = node.expr
    if not isinstance(node, MatMul):
        raise TypeError(
            f"expression does not fuse into one batched GEMM: expected "
            f"alpha * (A * B) [+ beta * target], got {type(node).__name__}"
        )
    return alpha, node, beta
