"""ompx device APIs (§3.3): the C-style ``ompx_*`` functions.

The paper provides two API sets for device code; this module is the C set
(``ompx_thread_id_x()``, ``ompx_sync_thread_block()``, ``ompx_shfl_sync``)
and :mod:`repro.ompx.cxx` is the C++ set (``ompx::thread_id(ompx::DIM_X)``).

In the Python DSL a bare kernel receives an :class:`OmpxThread` — again a
thin renaming façade over the substrate's :class:`~repro.gpu.ThreadCtx`.
Lay Figure 1's CUDA kernel next to its ompx port and the bodies differ
only in spellings:

========================  =================================
CUDA (``t`` façade)        ompx (``x`` façade)
========================  =================================
``t.threadIdx.x``          ``x.thread_id_x()``
``t.blockIdx.x``           ``x.block_id_x()``
``t.blockDim.x``           ``x.block_dim_x()``
``t.syncthreads()``        ``x.sync_thread_block()``
``t.shfl_down_sync(m,v,d)``  ``x.shfl_down_sync(v, d, m)``
``t.shared(...)``          ``x.groupprivate(...)``
``t.atomicAdd(a, i, v)``   ``x.atomic_add(a, i, v)``
========================  =================================

That table *is* the porting rule set of :mod:`repro.port`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..gpu.context import ThreadCtx
from ..gpu.memory import DevicePointer

__all__ = ["OmpxThread", "DIM_X", "DIM_Y", "DIM_Z"]

DIM_X = 0
DIM_Y = 1
DIM_Z = 2


class OmpxThread:
    """ompx-spelled façade over one simulated GPU thread (bare region)."""

    __slots__ = ("_ctx",)

    def __init__(self, ctx: ThreadCtx) -> None:
        self._ctx = ctx

    # --- thread indexing (§3.3.1) ------------------------------------------
    def thread_id_x(self) -> int:
        """``ompx_thread_id_x()`` — CUDA's ``threadIdx.x``."""
        return self._ctx.thread_idx.x

    def thread_id_y(self) -> int:
        """``ompx_thread_id_y()`` — CUDA's ``threadIdx.y``."""
        return self._ctx.thread_idx.y

    def thread_id_z(self) -> int:
        """``ompx_thread_id_z()`` — CUDA's ``threadIdx.z``."""
        return self._ctx.thread_idx.z

    def thread_id(self, dim: int = DIM_X) -> int:
        """Thread index in the given dimension (C++ ``ompx::thread_id``)."""
        return self._ctx.thread_idx[dim]

    def block_id_x(self) -> int:
        """``ompx_block_id_x()`` — CUDA's ``blockIdx.x``."""
        return self._ctx.block_idx.x

    def block_id_y(self) -> int:
        """``ompx_block_id_y()`` — CUDA's ``blockIdx.y``."""
        return self._ctx.block_idx.y

    def block_id_z(self) -> int:
        """``ompx_block_id_z()`` — CUDA's ``blockIdx.z``."""
        return self._ctx.block_idx.z

    def block_id(self, dim: int = DIM_X) -> int:
        """Team index in the given dimension (C++ ``ompx::block_id``)."""
        return self._ctx.block_idx[dim]

    def block_dim_x(self) -> int:
        """``ompx_block_dim_x()`` — CUDA's ``blockDim.x``."""
        return self._ctx.block_dim.x

    def block_dim_y(self) -> int:
        """``ompx_block_dim_y()`` — CUDA's ``blockDim.y``."""
        return self._ctx.block_dim.y

    def block_dim_z(self) -> int:
        """``ompx_block_dim_z()`` — CUDA's ``blockDim.z``."""
        return self._ctx.block_dim.z

    def block_dim(self, dim: int = DIM_X) -> int:
        """Team extent in the given dimension (C++ ``ompx::block_dim``)."""
        return self._ctx.block_dim[dim]

    def grid_dim_x(self) -> int:
        """``ompx_grid_dim_x()`` — CUDA's ``gridDim.x``."""
        return self._ctx.grid_dim.x

    def grid_dim_y(self) -> int:
        """``ompx_grid_dim_y()`` — CUDA's ``gridDim.y``."""
        return self._ctx.grid_dim.y

    def grid_dim_z(self) -> int:
        """``ompx_grid_dim_z()`` — CUDA's ``gridDim.z``."""
        return self._ctx.grid_dim.z

    def grid_dim(self, dim: int = DIM_X) -> int:
        """Grid extent in the given dimension (C++ ``ompx::grid_dim``)."""
        return self._ctx.grid_dim[dim]

    def global_thread_id_x(self) -> int:
        """``block_id_x() * block_dim_x() + thread_id_x()`` — the port of
        CUDA's ubiquitous global index idiom."""
        return self._ctx.global_id_x

    def warp_size(self) -> int:
        """Lanes per warp/wavefront on this device (32 or 64)."""
        return self._ctx.warp_size

    def lane_id(self) -> int:
        """Lane index of this thread within its warp."""
        return self._ctx.lane_id

    def warp_id(self) -> int:
        """Warp index of this thread within its block."""
        return self._ctx.warp_id

    # --- synchronization (§3.3.2) ----------------------------------------------
    def sync_thread_block(self) -> None:
        """``ompx_sync_thread_block()`` — CUDA's ``__syncthreads``."""
        self._ctx.sync_threads()

    def sync_warp(self, mask: Optional[int] = None) -> None:
        """``ompx_sync_warp()`` — synchronize the forward-progress group."""
        self._ctx.sync_warp(mask)

    def shfl_sync(self, var, src_lane: int, mask: Optional[int] = None):
        """``__shfl_sync`` / ``ompx_shfl_sync``: read ``var`` from ``src_lane``."""
        return self._ctx.shfl_sync(var, src_lane, mask)

    def shfl_up_sync(self, var, delta: int, mask: Optional[int] = None):
        """``__shfl_up_sync``: read from the lane ``delta`` below."""
        return self._ctx.shfl_up_sync(var, delta, mask)

    def shfl_down_sync(self, var, delta: int, mask: Optional[int] = None):
        """``__shfl_down_sync``: read from the lane ``delta`` above."""
        return self._ctx.shfl_down_sync(var, delta, mask)

    def shfl_xor_sync(self, var, lane_mask: int, mask: Optional[int] = None):
        """``__shfl_xor_sync``: butterfly exchange with lane ``lane_id ^ lane_mask``."""
        return self._ctx.shfl_xor_sync(var, lane_mask, mask)

    def ballot_sync(self, predicate, mask: Optional[int] = None) -> int:
        """``__ballot_sync``: bitmask of lanes whose predicate is true."""
        return self._ctx.ballot_sync(bool(predicate), mask)

    def any_sync(self, predicate, mask: Optional[int] = None) -> bool:
        """``__any_sync``: true iff any participating lane's predicate is true."""
        return self._ctx.any_sync(bool(predicate), mask)

    def all_sync(self, predicate, mask: Optional[int] = None) -> bool:
        """``__all_sync``: true iff every participating lane's predicate is true."""
        return self._ctx.all_sync(bool(predicate), mask)

    def match_any_sync(self, value, mask: Optional[int] = None) -> int:
        """``__match_any_sync``: mask of lanes holding the same value."""
        return self._ctx.match_any_sync(value, mask)

    def match_all_sync(self, value, mask: Optional[int] = None):
        """``__match_all_sync``: (mask, pred) — full mask iff all lanes agree."""
        return self._ctx.match_all_sync(value, mask)

    # --- memory ---------------------------------------------------------------------
    def array(self, ptr: DevicePointer, shape, dtype) -> np.ndarray:
        """Dereference a device pointer argument (ompx_malloc'd or mapped)."""
        return self._ctx.deref(ptr, shape, dtype)

    def groupprivate(self, name: str, shape, dtype) -> np.ndarray:
        """``#pragma omp groupprivate(team: var)`` — team-shared storage.

        The proposed directive from §2.5's footnote; the paper's Figure 4
        uses it inside a bare region where CUDA would say ``__shared__``.
        """
        return self._ctx.shared_array(name, shape, dtype)

    def dynamic_groupprivate(self, dtype) -> np.ndarray:
        """Dynamic team-shared storage (CUDA's ``extern __shared__``)."""
        return self._ctx.dynamic_shared(dtype)

    def constant(self, name: str) -> np.ndarray:
        """Constant-memory symbol access (``ompx_memcpy_to_symbol``'d)."""
        return self._ctx.constant(name)

    # --- atomics -------------------------------------------------------------------------
    def atomic_add(self, array, index, value):
        """``ompx_atomic_add``: fetch-and-add; returns the old value."""
        return self._ctx.atomic.add(array, index, value)

    def atomic_sub(self, array, index, value):
        """``ompx_atomic_sub``: fetch-and-subtract; returns the old value."""
        return self._ctx.atomic.sub(array, index, value)

    def atomic_max(self, array, index, value):
        """``ompx_atomic_max``: fetch-and-max; returns the old value."""
        return self._ctx.atomic.max(array, index, value)

    def atomic_min(self, array, index, value):
        """``ompx_atomic_min``: fetch-and-min; returns the old value."""
        return self._ctx.atomic.min(array, index, value)

    def atomic_exchange(self, array, index, value):
        """``ompx_atomic_exchange``: atomic swap; returns the old value."""
        return self._ctx.atomic.exchange(array, index, value)

    def atomic_cas(self, array, index, compare, value):
        """``ompx_atomic_cas``: compare-and-swap; returns the old value."""
        return self._ctx.atomic.cas(array, index, compare, value)

    def atomic_and(self, array, index, value):
        """``ompx_atomic_and``: atomic bitwise AND; returns the old value."""
        return self._ctx.atomic.and_(array, index, value)

    def atomic_or(self, array, index, value):
        """``ompx_atomic_or``: atomic bitwise OR; returns the old value."""
        return self._ctx.atomic.or_(array, index, value)

    def atomic_xor(self, array, index, value):
        """``ompx_atomic_xor``: atomic bitwise XOR; returns the old value."""
        return self._ctx.atomic.xor(array, index, value)

    # --- portable vector intrinsics ---------------------------------------------
    def select(self, cond, a, b):
        """Branch-free conditional; vectorizes as ``np.where`` per lane."""
        return self._ctx.select(cond, a, b)

    def load(self, view, index, fill=0):
        """Bounds-guarded gather: ``view[index]`` where in range, else ``fill``."""
        return self._ctx.load(view, index, fill)

    def store(self, view, index, value, mask=True):
        """Bounds-guarded masked scatter: ``view[index] = value`` where allowed."""
        return self._ctx.store(view, index, value, mask)

    def loop_max(self, count):
        """Upper trip-count bound for a lane-varying loop."""
        return self._ctx.loop_max(count)

    # --- C++ API (§3.3: "C++ APIs encapsulated within the ompx namespace") ------
    @property
    def cxx(self) -> "CxxApi":
        from .cxx import CxxApi

        return CxxApi(self)

    # --- escape hatch ------------------------------------------------------------
    @property
    def ctx(self) -> ThreadCtx:
        return self._ctx
