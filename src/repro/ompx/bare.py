"""The ``ompx_bare`` clause (§3.1) and multi-dimensional launches (§3.2).

``target_teams_bare`` is the Python rendering of

.. code-block:: c

    #pragma omp target teams ompx_bare num_teams(gx, gy, gz) \\
        thread_limit(bx, by, bz) [nowait] [depend(...)]
    { /* SIMT body, all threads of all teams active */ }

Semantics per the paper:

* the region runs in "bare metal" mode — no device runtime
  initialization, no state machine, no globalization of locals (the
  codegen lowering returns the BARE :class:`CodegenInfo`);
* ``num_teams``/``thread_limit`` accept multi-dimensional extents;
  dimensions exceeding the device's capability are *disregarded*
  (clamped), not rejected;
* the construct is synchronous by default (OpenMP semantics, §2.3) and
  becomes asynchronous with ``nowait``, ordered by ``depend`` — including
  the extended ``("interopobj", obj)`` dependence from §3.5.
"""

from __future__ import annotations

import functools
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from ..errors import LaunchError
from ..gpu.device import Device, Placement, resolve_placement
from ..gpu.dim import DimLike, as_dim3
from ..gpu.launch import LaunchConfig, launch_kernel
from ..openmp.codegen import RegionTraits, lower_region
from ..openmp.target import TargetAccessor, TargetRegionReport, _maybe_defer, _with_maps
from ..openmp.task import TaskRuntime
from .device import OmpxThread

__all__ = ["bare_kernel", "target_teams_bare", "BareKernel"]


class BareKernel:
    """A function usable as the body of a ``target teams ompx_bare`` region."""

    def __init__(
        self, fn: Callable, *, sync_free: bool = False, vectorize: Optional[bool] = None
    ) -> None:
        functools.update_wrapper(self, fn)
        self.fn = fn
        self.language = "ompx"
        self.sync_free = sync_free
        self.vectorize = vectorize

        def adapter(ctx, *args):
            facade = OmpxThread(ctx)
            # Bind the C free-function API (repro.ompx.capi) to this
            # thread for the duration of the body.
            from .capi import bound

            with bound(facade):
                return fn(facade, *args)

        adapter.sync_free = sync_free
        adapter.vectorize = vectorize
        adapter.fn = fn  # what engine selection / compile analysis reads
        self._adapter = adapter

    @property
    def entry(self) -> Callable:
        return self._adapter

    def __call__(self, x, *args):
        return self.fn(x, *args)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ompx bare kernel {self.fn.__name__}>"


def bare_kernel(
    fn: Optional[Callable] = None,
    *,
    sync_free: bool = False,
    vectorize: Optional[bool] = None,
):
    """Decorator marking an ompx bare-region body (``x`` façade first arg).

    ``vectorize`` mirrors ``@cuda.kernel``: ``True`` opts the body into the
    lane-batched WaveVectorEngine, ``False`` pins the scalar engines,
    ``None`` lets static analysis decide.
    """
    if fn is None:
        return lambda f: BareKernel(f, sync_free=sync_free, vectorize=vectorize)
    return BareKernel(fn, sync_free=sync_free, vectorize=vectorize)


def target_teams_bare(
    device: Placement,
    num_teams: DimLike,
    thread_limit: DimLike,
    region: Callable,
    args: Sequence = (),
    *,
    shared_bytes: int = 0,
    engine: Optional[str] = None,
    maps: Sequence[Tuple[np.ndarray, str]] = (),
    nowait: bool = False,
    depend: Sequence[Tuple[str, object]] = (),
    task_runtime: Optional[TaskRuntime] = None,
):
    """Launch a bare-metal target region (paper Figure 4 / Figure 5).

    ``region`` may be a :class:`BareKernel` or a plain callable taking an
    :class:`OmpxThread` first.  Returns a :class:`TargetRegionReport`
    (synchronous) or the deferred :class:`~repro.openmp.task.Task`
    (``nowait=True``).
    """
    device = resolve_placement(device)
    if isinstance(region, BareKernel):
        entry = region.entry
        name = region.fn.__name__
    elif callable(region):
        bare = BareKernel(region)
        entry, name = bare.entry, getattr(region, "__name__", "bare_region")
    else:
        raise LaunchError(f"region must be callable, got {region!r}")

    # §3.2: multi-dimensional num_teams/thread_limit, with out-of-capability
    # dimensions disregarded rather than rejected.
    grid = device.spec.clamp_dims(as_dim3(num_teams), kind="grid")
    block = device.spec.clamp_dims(as_dim3(thread_limit), kind="block")
    # Per-axis excess is clamped (disregarded) above; an over-volume block
    # is *invalid* and is rejected by DeviceSpec.validate_launch inside
    # launch_kernel, with the same structured LaunchError every front end
    # reports.

    traits = RegionTraits(style="bare", requested_thread_limit=block.volume)
    codegen = lower_region(traits)

    def run():
        def body_fn(acc: TargetAccessor) -> TargetRegionReport:
            config = LaunchConfig.create(grid, block, shared_bytes, engine=engine)
            call_args = tuple(args) + ((acc,) if _region_wants_acc(region, args) else ())
            stats = launch_kernel(config, entry, call_args, device)
            return TargetRegionReport(
                codegen=codegen, grid=grid.volume, block=block.volume, stats=stats
            )

        return _with_maps(device, maps, body_fn)

    return _maybe_defer(nowait, depend, task_runtime, run, name)


def _region_wants_acc(region: Callable, args: Sequence) -> bool:
    import inspect

    fn = region.fn if isinstance(region, BareKernel) else region
    try:
        params = list(inspect.signature(fn).parameters)
    except (TypeError, ValueError):
        return False
    return bool(params) and params[-1] == "acc" and len(params) == len(args) + 2
