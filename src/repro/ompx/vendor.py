"""Vendor-library wrapper layer (§3.6).

"Crafting a performance-portable library with the same capabilities as
vendor libraries from the ground up is not feasible" — so the paper adds a
thin wrapper whose signatures match the vendor library and whose
implementation dispatches to the right vendor backend for the offload
target chosen at compile time.

Here the "vendor libraries" are simulated: :class:`CublasSim`,
:class:`RocblasSim` and :class:`OneMklSim` implement the classic BLAS
entry points over device memory with NumPy, each keeping its own call
statistics so dispatch is observable in tests.  ``ompxblas_*`` functions
are the wrapper layer: they look like cuBLAS, and pick the backend from
the handle's device vendor through a registrable backend table
(:func:`register_backend`), so a fourth vendor is one registration away.

BLAS conventions are honoured: column-major storage, leading dimensions,
transpose flags, strided vectors, strided batches — so a cuBLAS call
ports by renaming the prefix, which is the §3.6 claim.

The wrapper layer behaves like the launch path in three more ways:

* **Streams.** :func:`ompxblas_set_stream` binds a handle to a stream
  (``cublasSetStream``); bound calls enqueue on it and therefore order
  with kernel launches on the same stream.  Scalar-returning calls
  (``ddot``/``dnrm2``) synchronize the stream first, like their cuBLAS
  counterparts writing to host pointers.
* **Tracing.** Every call emits a ``vendor:<op>`` span (``cat="vendor"``)
  carrying backend, flops and bytes, and bumps the ``vendor_calls`` /
  ``vendor_flops`` / ``vendor_bytes`` counters — so :mod:`repro.trace`
  sees BLAS calls like kernel launches.
* **Dispatch profiling.** Wrapper overhead is recorded into the active
  tune session's :class:`~repro.tune.overhead.DispatchProfiler`.

Modeled performance rides on :mod:`repro.perf.roofline`:
:func:`modeled_gemm_seconds` prices a GEMM at a given instruction-stream
efficiency, and each backend carries a ``library_efficiency`` so the
library-vs-hand-kernel gap (why §3.6 wraps instead of rewriting) is a
number the benchmarks can report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Type

import numpy as np

from ..errors import (
    BlasDimensionError,
    HandleDestroyedError,
    UnknownVendorError,
    VendorError,
)
from ..gpu.device import Device, DeviceSpec, Vendor, current_device
from ..gpu.memory import DevicePointer
from ..gpu.stream import Stream
from ..perf.roofline import Footprint, roofline_seconds
from ..trace import get_tracer

__all__ = [
    "BlasBackend",
    "CublasSim",
    "RocblasSim",
    "OneMklSim",
    "register_backend",
    "registered_backends",
    "OmpxBlasHandle",
    "ompxblas_create",
    "ompxblas_destroy",
    "ompxblas_set_stream",
    "ompxblas_get_stream",
    "ompxblas_dgemm",
    "ompxblas_sgemm",
    "ompxblas_dgemv",
    "ompxblas_dgemm_batched",
    "ompxblas_dgemm_strided_batched",
    "ompxblas_zgemm_strided_batched",
    "ompxblas_daxpy",
    "ompxblas_ddot",
    "ompxblas_dnrm2",
    "ompxblas_dscal",
    "ompxblas_dcopy",
    "ompxblas_dswap",
    "gemm_footprint",
    "modeled_gemm_seconds",
    "HAND_KERNEL_EFFICIENCY",
    "VendorError",
    "BlasDimensionError",
    "UnknownVendorError",
    "HandleDestroyedError",
    "OMPXBLAS_OP_N",
    "OMPXBLAS_OP_T",
]

OMPXBLAS_OP_N = "N"
OMPXBLAS_OP_T = "T"


# --- modeled performance (repro.perf.roofline) -------------------------------

#: Instruction-stream quality of a straightforward hand-written GEMM
#: kernel relative to roofline peak.  Vendor libraries ship tiled,
#: tensor-unit-aware kernels per architecture; a portable hand kernel
#: does not — which is the paper's argument for wrapping (§3.6) rather
#: than reimplementing.
HAND_KERNEL_EFFICIENCY = 0.45


def gemm_footprint(
    m: int, n: int, k: int, *, dtype=np.float64, batch: int = 1
) -> Footprint:
    """The roofline :class:`Footprint` of one (batched) GEMM call.

    ``2*m*n*k`` multiply-adds per matrix (×4 for complex: a complex
    multiply-add is four real multiplies and four real adds), reading A,
    B and C and writing C once.
    """
    dtype = np.dtype(dtype)
    flops = 2.0 * m * n * k * batch
    if dtype.kind == "c":
        flops *= 4.0
    # Double-wide types (fp64, complex128) are priced against the fp64
    # pipe; everything narrower against fp32.
    wide = dtype.itemsize >= (16 if dtype.kind == "c" else 8)
    reads = float(m * k + k * n + m * n) * dtype.itemsize * batch
    writes = float(m * n) * dtype.itemsize * batch
    return Footprint(
        flops_fp64=flops if wide else 0.0,
        flops_fp32=0.0 if wide else flops,
        global_read_bytes=reads,
        global_write_bytes=writes,
    )


def modeled_gemm_seconds(
    spec: DeviceSpec,
    m: int,
    n: int,
    k: int,
    *,
    dtype=np.float64,
    batch: int = 1,
    efficiency: float = HAND_KERNEL_EFFICIENCY,
) -> float:
    """Roofline seconds for one (batched) GEMM on ``spec``.

    GEMM saturates a device, so occupancy is taken at 1.0; ``efficiency``
    carries the library-vs-hand-kernel gap (pass a backend's
    ``library_efficiency`` for the vendor-library estimate, the default
    :data:`HAND_KERNEL_EFFICIENCY` for the portable hand kernel).
    """
    return roofline_seconds(
        gemm_footprint(m, n, k, dtype=dtype, batch=batch),
        spec,
        occupancy=1.0,
        efficiency=efficiency,
    )


# --- argument validation -----------------------------------------------------

def _ld_check(op: str, param: str, ld: int, rows: int) -> None:
    minimum = max(1, rows)
    if ld < minimum:
        raise BlasDimensionError(
            f"{op}: leading dimension {param}={ld} < number of rows {rows}",
            op=op, param=param, value=ld, minimum=minimum,
        )


def _inc_check(op: str, param: str, inc: int) -> None:
    if inc < 1:
        raise BlasDimensionError(
            f"{op}: vector increment {param} must be >= 1, got {inc}",
            op=op, param=param, value=inc, minimum=1,
        )


def _batch_check(op: str, batch: int) -> None:
    if batch < 0:
        raise BlasDimensionError(
            f"{op}: batch count must be >= 0, got {batch}",
            op=op, param="batch_count", value=batch, minimum=0,
        )


def _stride_check(op: str, param: str, stride: int, minimum: int) -> None:
    if stride < minimum:
        raise BlasDimensionError(
            f"{op}: matrix stride {param}={stride} would alias batch "
            f"entries; need >= {minimum}",
            op=op, param=param, value=stride, minimum=minimum,
        )


# --- the simulated vendor libraries ------------------------------------------

class BlasBackend:
    """A simulated vendor BLAS over device global memory."""

    name = "abstract"
    #: Fraction of roofline peak this vendor's tuned GEMM kernels reach
    #: (instruction-stream quality for :func:`modeled_gemm_seconds`).
    library_efficiency = 0.90

    def __init__(self, device: Device) -> None:
        self.device = device
        self.calls: Dict[str, int] = {}

    def _count(self, op: str) -> None:
        self.calls[op] = self.calls.get(op, 0) + 1

    def modeled_gemm_seconds(
        self, m: int, n: int, k: int, *, dtype=np.float64, batch: int = 1
    ) -> float:
        """This library's roofline estimate for one (batched) GEMM."""
        return modeled_gemm_seconds(
            self.device.spec, m, n, k, dtype=dtype, batch=batch,
            efficiency=self.library_efficiency,
        )

    def _matrix(self, ptr: DevicePointer, rows: int, cols: int, ld: int, dtype,
                *, op: str = "gemm", param: str = "ld") -> np.ndarray:
        """Column-major matrix view honouring the leading dimension."""
        _ld_check(op, param, ld, rows)
        storage = self.device.allocator.view(ptr, ld * cols, dtype)
        # Column-major with leading dimension: column j starts at j*ld.
        return storage.reshape(cols, ld)[:, :rows].T

    def _vector(self, ptr: DevicePointer, n: int, inc: int, dtype,
                *, op: str = "blas", param: str = "inc") -> np.ndarray:
        _inc_check(op, param, inc)
        storage = self.device.allocator.view(ptr, (n - 1) * inc + 1, dtype)
        return storage[::inc]

    def _strided_batch(
        self, ptr: DevicePointer, rows: int, cols: int, ld: int,
        stride: int, batch: int, dtype, *, op: str, param: str,
    ) -> np.ndarray:
        """A ``(batch, rows, cols)`` view of strided column-major matrices.

        ``stride == 0`` broadcasts one matrix across the batch (legal for
        A/B operands, as in cuBLAS strided-batched GEMM).
        """
        _ld_check(op, param, ld, rows)
        itemsize = np.dtype(dtype).itemsize
        extent = ld * cols + (0 if stride == 0 else (batch - 1) * stride)
        flat = self.device.allocator.view(ptr, extent, dtype)
        stacked = np.lib.stride_tricks.as_strided(
            flat,
            shape=(batch, cols, ld),
            strides=(stride * itemsize, ld * itemsize, itemsize),
        )
        return stacked[:, :, :rows].transpose(0, 2, 1)

    @staticmethod
    def _batched_update(left, right, cm, alpha, beta) -> None:
        """``C = alpha*left@right + beta*C`` over ``(batch, ., .)`` stacks.

        The accumulation runs over ``k`` in ascending order with one
        vectorized rank-1 update per step — a *deterministic* order, so a
        batch computes bit-identically however it is sharded (each batch
        entry's arithmetic is independent of the others).  ``beta == 0``
        never reads C, per the BLAS contract.

        Complex products are expanded into real-plane arithmetic,
        ``(ac - bd, ad + bc)``: every real multiply/add is individually
        correctly rounded, whereas numpy's complex-multiply ufunc may
        contract with FMA on SIMD paths.  The expansion is what makes the
        simulated library call bit-identical to a scalar triple loop.
        """
        acc = np.zeros(
            (left.shape[0], left.shape[1], right.shape[2]), dtype=cm.dtype
        )
        is_complex = np.issubdtype(acc.dtype, np.complexfloating)
        for kk in range(left.shape[2]):
            lcol = left[:, :, kk, None]
            rrow = right[:, None, kk, :]
            if is_complex:
                lr, li = lcol.real, lcol.imag
                rr, ri = rrow.real, rrow.imag
                acc.real += lr * rr - li * ri
                acc.imag += lr * ri + li * rr
            else:
                acc += lcol * rrow
        if beta == 0:
            cm[...] = alpha * acc
        else:
            cm *= beta
            cm += alpha * acc

    # --- level 3 -------------------------------------------------------------
    def gemm(self, transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, dtype) -> None:
        """C = alpha*op(A)@op(B) + beta*C, column-major with leading dims."""
        self._count("gemm")
        am = self._matrix(a, m if transa == OMPXBLAS_OP_N else k,
                          k if transa == OMPXBLAS_OP_N else m, lda, dtype,
                          op="gemm", param="lda")
        bm = self._matrix(b, k if transb == OMPXBLAS_OP_N else n,
                          n if transb == OMPXBLAS_OP_N else k, ldb, dtype,
                          op="gemm", param="ldb")
        cm = self._matrix(c, m, n, ldc, dtype, op="gemm", param="ldc")
        left = am if transa == OMPXBLAS_OP_N else am.T
        right = bm if transb == OMPXBLAS_OP_N else bm.T
        # In-place update of the device view (no copies of C).
        cm *= beta
        cm += alpha * (left @ right)

    def gemm_batched(self, transa, transb, m, n, k, alpha, a_array, lda,
                     b_array, ldb, beta, c_array, ldc, batch, dtype) -> None:
        """Pointer-array batched GEMM (``cublasDgemmBatched`` shape)."""
        self._count("gemm_batched")
        for a, b, c in zip(a_array, b_array, c_array):
            am = self._matrix(a, m if transa == OMPXBLAS_OP_N else k,
                              k if transa == OMPXBLAS_OP_N else m, lda, dtype,
                              op="gemm_batched", param="lda")
            bm = self._matrix(b, k if transb == OMPXBLAS_OP_N else n,
                              n if transb == OMPXBLAS_OP_N else k, ldb, dtype,
                              op="gemm_batched", param="ldb")
            cm = self._matrix(c, m, n, ldc, dtype,
                              op="gemm_batched", param="ldc")
            left = (am if transa == OMPXBLAS_OP_N else am.T)[None]
            right = (bm if transb == OMPXBLAS_OP_N else bm.T)[None]
            self._batched_update(left, right, cm[None], alpha, beta)

    def gemm_strided_batched(self, transa, transb, m, n, k, alpha, a, lda,
                             stride_a, b, ldb, stride_b, beta, c, ldc,
                             stride_c, batch, dtype) -> None:
        """Strided-batched GEMM (``cublasDgemmStridedBatched`` shape)."""
        self._count("gemm_strided_batched")
        if batch == 0:
            return
        op = "gemm_strided_batched"
        rows_a = m if transa == OMPXBLAS_OP_N else k
        cols_a = k if transa == OMPXBLAS_OP_N else m
        rows_b = k if transb == OMPXBLAS_OP_N else n
        cols_b = n if transb == OMPXBLAS_OP_N else k
        astack = self._strided_batch(a, rows_a, cols_a, lda, stride_a, batch,
                                     dtype, op=op, param="lda")
        bstack = self._strided_batch(b, rows_b, cols_b, ldb, stride_b, batch,
                                     dtype, op=op, param="ldb")
        cstack = self._strided_batch(c, m, n, ldc, stride_c, batch,
                                     dtype, op=op, param="ldc")
        left = astack if transa == OMPXBLAS_OP_N else astack.transpose(0, 2, 1)
        right = bstack if transb == OMPXBLAS_OP_N else bstack.transpose(0, 2, 1)
        self._batched_update(left, right, cstack, alpha, beta)

    # --- level 2 -------------------------------------------------------------
    def gemv(self, trans, m, n, alpha, a, lda, x, incx, beta, y, incy, dtype) -> None:
        """y = alpha*op(A)@x + beta*y for an m×n column-major A."""
        self._count("gemv")
        am = self._matrix(a, m, n, lda, dtype, op="gemv", param="lda")
        xv = self._vector(x, n if trans == OMPXBLAS_OP_N else m, incx, dtype,
                          op="gemv", param="incx")
        yv = self._vector(y, m if trans == OMPXBLAS_OP_N else n, incy, dtype,
                          op="gemv", param="incy")
        mat = am if trans == OMPXBLAS_OP_N else am.T
        yv *= beta
        yv += alpha * (mat @ xv)

    # --- level 1 -------------------------------------------------------------
    def axpy(self, n, alpha, x, incx, y, incy, dtype) -> None:
        """y += alpha * x over strided vectors."""
        self._count("axpy")
        xv = self._vector(x, n, incx, dtype, op="axpy", param="incx")
        yv = self._vector(y, n, incy, dtype, op="axpy", param="incy")
        yv += alpha * xv

    def dot(self, n, x, incx, y, incy, dtype) -> float:
        """Dot product of two strided vectors."""
        self._count("dot")
        xv = self._vector(x, n, incx, dtype, op="dot", param="incx")
        yv = self._vector(y, n, incy, dtype, op="dot", param="incy")
        return float(xv @ yv)

    def nrm2(self, n, x, incx, dtype) -> float:
        """Euclidean norm of a strided vector."""
        self._count("nrm2")
        return float(np.linalg.norm(
            self._vector(x, n, incx, dtype, op="nrm2", param="incx")
        ))

    def scal(self, n, alpha, x, incx, dtype) -> None:
        """x *= alpha over a strided vector."""
        self._count("scal")
        self._vector(x, n, incx, dtype, op="scal", param="incx")[:] *= alpha

    def copy(self, n, x, incx, y, incy, dtype) -> None:
        """y = x over strided vectors."""
        self._count("copy")
        xv = self._vector(x, n, incx, dtype, op="copy", param="incx")
        yv = self._vector(y, n, incy, dtype, op="copy", param="incy")
        yv[:] = xv

    def swap(self, n, x, incx, y, incy, dtype) -> None:
        """Exchange two strided vectors."""
        self._count("swap")
        xv = self._vector(x, n, incx, dtype, op="swap", param="incx")
        yv = self._vector(y, n, incy, dtype, op="swap", param="incy")
        tmp = xv.copy()
        xv[:] = yv
        yv[:] = tmp


class CublasSim(BlasBackend):
    """The NVIDIA vendor library stand-in."""

    name = "cuBLAS-sim"
    library_efficiency = 0.92


class RocblasSim(BlasBackend):
    """The AMD vendor library stand-in."""

    name = "rocBLAS-sim"
    library_efficiency = 0.86


class OneMklSim(BlasBackend):
    """The Intel vendor library stand-in (oneMKL BLAS)."""

    name = "oneMKL-sim"
    library_efficiency = 0.82


# --- the backend registry ----------------------------------------------------

_BACKENDS: Dict[str, Type[BlasBackend]] = {}


def register_backend(vendor: str, backend_cls: Type[BlasBackend]) -> None:
    """Register (or override) the BLAS backend serving a vendor tag.

    This is how the wrapper layer stays a *thin* layer: supporting a new
    offload target is one :class:`BlasBackend` subclass plus one
    registration, with no change to any ``ompxblas_*`` entry point.
    Re-registering a vendor replaces its backend (tests use this to
    install instrumented doubles).
    """
    if not (isinstance(backend_cls, type)
            and issubclass(backend_cls, BlasBackend)):
        raise TypeError(
            f"backend_cls must be a BlasBackend subclass, got {backend_cls!r}"
        )
    _BACKENDS[vendor] = backend_cls


def registered_backends() -> Dict[str, Type[BlasBackend]]:
    """A snapshot of the vendor -> backend-class registry."""
    return dict(_BACKENDS)


register_backend(Vendor.NVIDIA, CublasSim)
register_backend(Vendor.AMD, RocblasSim)
register_backend(Vendor.INTEL, OneMklSim)


# --- handles -----------------------------------------------------------------

@dataclass
class OmpxBlasHandle:
    """The wrapper-layer handle; owns the vendor backend for its device.

    ``stream`` (set via :func:`ompxblas_set_stream`) is where bound calls
    enqueue; ``None`` means the synchronous default path.  ``destroyed``
    flips once in :func:`ompxblas_destroy`, after which every call raises
    :class:`~repro.errors.HandleDestroyedError`.
    """

    device: Device
    backend: BlasBackend
    stream: Optional[Stream] = None
    destroyed: bool = False

    @property
    def backend_name(self) -> str:
        return self.backend.name


def ompxblas_create(device: Optional[Device] = None) -> OmpxBlasHandle:
    """Create a handle; the vendor backend is picked by the offload target."""
    device = device or current_device()
    backend_cls = _BACKENDS.get(device.spec.vendor)
    if backend_cls is None:
        raise UnknownVendorError(
            f"no vendor BLAS for {device.spec.vendor!r}; the wrapper layer "
            f"only knows {sorted(_BACKENDS)} (extend with register_backend)",
            vendor=device.spec.vendor, known=tuple(sorted(_BACKENDS)),
        )
    return OmpxBlasHandle(device=device, backend=backend_cls(device))


def _require_alive(handle: OmpxBlasHandle, op: str) -> None:
    if handle.destroyed:
        raise HandleDestroyedError(
            f"ompxblas handle for device {handle.device.ordinal} was "
            f"destroyed; cannot call {op} (create a new handle)",
            op=op, device=handle.device.ordinal,
        )


def ompxblas_destroy(handle: OmpxBlasHandle) -> None:
    """Drain outstanding work, then invalidate the handle.

    Like ``cublasDestroy``: the device is synchronized first (so
    stream-bound calls complete), and afterwards the handle is dead —
    any further call, including a second destroy, raises
    :class:`~repro.errors.HandleDestroyedError` instead of silently
    computing on a dangling context.
    """
    _require_alive(handle, "destroy")
    handle.device.synchronize()
    handle.destroyed = True


def ompxblas_set_stream(handle: OmpxBlasHandle, stream: Optional[Stream]) -> None:
    """Bind subsequent BLAS calls to ``stream`` (``cublasSetStream``).

    Bound calls enqueue on the stream and therefore order with kernel
    launches and memcpys on it.  ``None`` restores the synchronous
    default path.  The stream must belong to the handle's device, as on
    real hardware.
    """
    _require_alive(handle, "set_stream")
    if stream is not None and stream.device is not handle.device:
        raise VendorError(
            f"stream {stream.name!r} belongs to device "
            f"{stream.device.ordinal}, handle to device "
            f"{handle.device.ordinal}; cublasSetStream requires one device"
        )
    handle.stream = stream


def ompxblas_get_stream(handle: OmpxBlasHandle) -> Optional[Stream]:
    """The stream bound by :func:`ompxblas_set_stream` (None = default)."""
    _require_alive(handle, "get_stream")
    return handle.stream


# --- the dispatch path -------------------------------------------------------

#: Lazily bound ``repro.tune.state.active_session`` — resolved on first
#: call rather than at import time, mirroring the launch path, so the
#: tune <-> vendor dependency stays acyclic.
_tune_active = None


def _tune_session():
    global _tune_active
    if _tune_active is None:
        from ..tune.state import active_session

        _tune_active = active_session
    return _tune_active()


def _execute(handle, op, fn, *, flops=0.0, bytes_moved=0.0, scalar=False,
             **span_args):
    """Run one BLAS call with launch-path semantics.

    Checks handle liveness and context poison, emits the ``vendor:<op>``
    span and counters, enqueues on the bound stream (synchronizing first
    for ``scalar`` results), and records the elapsed dispatch time into
    the active tune session's profiler.
    """
    _require_alive(handle, op)
    handle.device.check_poison()
    begin = time.perf_counter_ns()
    tracer = get_tracer()
    if tracer is not None:
        tracer.counter("vendor_calls")
        if flops:
            tracer.counter("vendor_flops", float(flops))
        if bytes_moved:
            tracer.counter("vendor_bytes", float(bytes_moved))
    args = {
        "backend": handle.backend.name,
        "device": handle.device.ordinal,
        "flops": float(flops),
        "bytes": float(bytes_moved),
        **span_args,
    }
    session = _tune_session()
    try:
        stream = handle.stream
        if stream is not None:
            if not scalar:
                stream.enqueue(fn, label=f"vendor:{op}",
                               trace_cat="vendor", trace_args=args)
                return None
            # Scalar results land in host memory, so the call is a
            # synchronization point (cuBLAS with a host result pointer).
            box = {}

            def run() -> None:
                box["value"] = fn()

            stream.enqueue(run, label=f"vendor:{op}",
                           trace_cat="vendor", trace_args=args)
            stream.synchronize()
            return box["value"]
        if tracer is None:
            return fn()
        with tracer.span(f"vendor:{op}", cat="vendor", **args):
            return fn()
    finally:
        if session is not None:
            session.overhead.record(time.perf_counter_ns() - begin)


# --- level 3 wrappers --------------------------------------------------------

def _gemm_call(handle, op, transa, transb, m, n, k, alpha, a, lda, b, ldb,
               beta, c, ldc, dtype, batch=1, fn=None):
    _ld_check(op, "lda", lda, m if transa == OMPXBLAS_OP_N else k)
    _ld_check(op, "ldb", ldb, k if transb == OMPXBLAS_OP_N else n)
    _ld_check(op, "ldc", ldc, m)
    footprint = gemm_footprint(m, n, k, dtype=dtype, batch=batch)
    return _execute(
        handle, op, fn,
        flops=footprint.flops_fp64 + footprint.flops_fp32,
        bytes_moved=footprint.global_bytes,
        m=m, n=n, k=k, batch=batch,
        modeled_s=handle.backend.modeled_gemm_seconds(
            m, n, k, dtype=dtype, batch=batch
        ),
    )


def ompxblas_dgemm(handle, transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc) -> None:
    """``cublasDgemm`` with the prefix swapped — §3.6's porting story."""
    return _gemm_call(
        handle, "dgemm", transa, transb, m, n, k, alpha, a, lda, b, ldb,
        beta, c, ldc, np.float64,
        fn=lambda: handle.backend.gemm(
            transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
            np.float64,
        ),
    )


def ompxblas_sgemm(handle, transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc) -> None:
    """``cublasSgemm`` with the prefix swapped (fp32 GEMM)."""
    return _gemm_call(
        handle, "sgemm", transa, transb, m, n, k, alpha, a, lda, b, ldb,
        beta, c, ldc, np.float32,
        fn=lambda: handle.backend.gemm(
            transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
            np.float32,
        ),
    )


def ompxblas_dgemm_batched(handle, transa, transb, m, n, k, alpha,
                           a_array: Sequence[DevicePointer], lda,
                           b_array: Sequence[DevicePointer], ldb, beta,
                           c_array: Sequence[DevicePointer], ldc,
                           batch: int) -> None:
    """``cublasDgemmBatched`` with the prefix swapped (pointer arrays)."""
    _batch_check("dgemm_batched", batch)
    for param, array in (("a_array", a_array), ("b_array", b_array),
                         ("c_array", c_array)):
        if len(array) < batch:
            raise BlasDimensionError(
                f"dgemm_batched: {param} holds {len(array)} pointers for a "
                f"batch of {batch}",
                op="dgemm_batched", param=param, value=len(array),
                minimum=batch,
            )
    return _gemm_call(
        handle, "dgemm_batched", transa, transb, m, n, k, alpha,
        a_array, lda, b_array, ldb, beta, c_array, ldc, np.float64,
        batch=batch,
        fn=lambda: handle.backend.gemm_batched(
            transa, transb, m, n, k, alpha, a_array[:batch], lda,
            b_array[:batch], ldb, beta, c_array[:batch], ldc, batch,
            np.float64,
        ),
    )


def _strided_batched_call(handle, op, dtype, transa, transb, m, n, k, alpha,
                          a, lda, stride_a, b, ldb, stride_b, beta, c, ldc,
                          stride_c, batch):
    _batch_check(op, batch)
    _stride_check(op, "stride_a", stride_a, 0)
    _stride_check(op, "stride_b", stride_b, 0)
    # C entries must not alias (a zero/short C stride would make batch
    # results order-dependent).
    _stride_check(op, "stride_c", stride_c, ldc * n if batch > 1 else 0)
    return _gemm_call(
        handle, op, transa, transb, m, n, k, alpha, a, lda, b, ldb,
        beta, c, ldc, dtype, batch=batch,
        fn=lambda: handle.backend.gemm_strided_batched(
            transa, transb, m, n, k, alpha, a, lda, stride_a, b, ldb,
            stride_b, beta, c, ldc, stride_c, batch, dtype,
        ),
    )


def ompxblas_dgemm_strided_batched(handle, transa, transb, m, n, k, alpha,
                                   a, lda, stride_a, b, ldb, stride_b, beta,
                                   c, ldc, stride_c, batch) -> None:
    """``cublasDgemmStridedBatched`` with the prefix swapped."""
    return _strided_batched_call(
        handle, "dgemm_strided_batched", np.float64, transa, transb, m, n, k,
        alpha, a, lda, stride_a, b, ldb, stride_b, beta, c, ldc, stride_c,
        batch,
    )


def ompxblas_zgemm_strided_batched(handle, transa, transb, m, n, k, alpha,
                                   a, lda, stride_a, b, ldb, stride_b, beta,
                                   c, ldc, stride_c, batch) -> None:
    """``cublasZgemmStridedBatched`` with the prefix swapped (complex128).

    The lattice-QCD entry point: an SU(3) site-matmul sweep is exactly a
    strided-batched 3×3 complex GEMM (Grid's expression templates lower
    to this shape).
    """
    return _strided_batched_call(
        handle, "zgemm_strided_batched", np.complex128, transa, transb, m, n,
        k, alpha, a, lda, stride_a, b, ldb, stride_b, beta, c, ldc, stride_c,
        batch,
    )


# --- level 2 wrappers --------------------------------------------------------

def ompxblas_dgemv(handle, trans, m, n, alpha, a, lda, x, incx, beta, y, incy) -> None:
    """``cublasDgemv`` with the prefix swapped."""
    _ld_check("dgemv", "lda", lda, m)
    _inc_check("dgemv", "incx", incx)
    _inc_check("dgemv", "incy", incy)
    return _execute(
        handle, "dgemv",
        lambda: handle.backend.gemv(
            trans, m, n, alpha, a, lda, x, incx, beta, y, incy, np.float64
        ),
        flops=2.0 * m * n,
        bytes_moved=float(m * n + m + 2 * n) * 8,
        m=m, n=n,
    )


# --- level 1 wrappers --------------------------------------------------------

def ompxblas_daxpy(handle, n, alpha, x, incx, y, incy) -> None:
    """``cublasDaxpy`` with the prefix swapped."""
    _inc_check("daxpy", "incx", incx)
    _inc_check("daxpy", "incy", incy)
    return _execute(
        handle, "daxpy",
        lambda: handle.backend.axpy(n, alpha, x, incx, y, incy, np.float64),
        flops=2.0 * n, bytes_moved=24.0 * n, n=n,
    )


def ompxblas_ddot(handle, n, x, incx, y, incy) -> float:
    """``cublasDdot`` with the prefix swapped (a synchronization point)."""
    _inc_check("ddot", "incx", incx)
    _inc_check("ddot", "incy", incy)
    return _execute(
        handle, "ddot",
        lambda: handle.backend.dot(n, x, incx, y, incy, np.float64),
        flops=2.0 * n, bytes_moved=16.0 * n, n=n, scalar=True,
    )


def ompxblas_dnrm2(handle, n, x, incx) -> float:
    """``cublasDnrm2`` with the prefix swapped (a synchronization point)."""
    _inc_check("dnrm2", "incx", incx)
    return _execute(
        handle, "dnrm2",
        lambda: handle.backend.nrm2(n, x, incx, np.float64),
        flops=2.0 * n, bytes_moved=8.0 * n, n=n, scalar=True,
    )


def ompxblas_dscal(handle, n, alpha, x, incx) -> None:
    """``cublasDscal`` with the prefix swapped."""
    _inc_check("dscal", "incx", incx)
    return _execute(
        handle, "dscal",
        lambda: handle.backend.scal(n, alpha, x, incx, np.float64),
        flops=1.0 * n, bytes_moved=16.0 * n, n=n,
    )


def ompxblas_dcopy(handle, n, x, incx, y, incy) -> None:
    """``cublasDcopy`` with the prefix swapped."""
    _inc_check("dcopy", "incx", incx)
    _inc_check("dcopy", "incy", incy)
    return _execute(
        handle, "dcopy",
        lambda: handle.backend.copy(n, x, incx, y, incy, np.float64),
        bytes_moved=16.0 * n, n=n,
    )


def ompxblas_dswap(handle, n, x, incx, y, incy) -> None:
    """``cublasDswap`` with the prefix swapped."""
    _inc_check("dswap", "incx", incx)
    _inc_check("dswap", "incy", incy)
    return _execute(
        handle, "dswap",
        lambda: handle.backend.swap(n, x, incx, y, incy, np.float64),
        bytes_moved=32.0 * n, n=n,
    )
