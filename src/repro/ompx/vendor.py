"""Vendor-library wrapper layer (§3.6).

"Crafting a performance-portable library with the same capabilities as
vendor libraries from the ground up is not feasible" — so the paper adds a
thin wrapper whose signatures match the vendor library and whose
implementation dispatches to the right vendor backend for the offload
target chosen at compile time.

Here the "vendor libraries" are simulated: :class:`CublasSim` and
:class:`RocblasSim` implement the classic BLAS entry points over device
memory with NumPy, each keeping its own call statistics so dispatch is
observable in tests.  ``ompxblas_*`` functions are the wrapper layer: they
look like cuBLAS, and pick the backend from the handle's device vendor.

BLAS conventions are honoured: column-major storage, leading dimensions,
transpose flags — so a cuBLAS call ports by renaming the prefix, which is
the §3.6 claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..errors import ReproError
from ..gpu.device import Device, Vendor, current_device
from ..gpu.memory import DevicePointer

__all__ = [
    "BlasBackend",
    "CublasSim",
    "RocblasSim",
    "OmpxBlasHandle",
    "ompxblas_create",
    "ompxblas_destroy",
    "ompxblas_dgemm",
    "ompxblas_sgemm",
    "ompxblas_daxpy",
    "ompxblas_ddot",
    "ompxblas_dnrm2",
    "ompxblas_dscal",
    "OMPXBLAS_OP_N",
    "OMPXBLAS_OP_T",
]

OMPXBLAS_OP_N = "N"
OMPXBLAS_OP_T = "T"


class BlasBackend:
    """A simulated vendor BLAS over device global memory."""

    name = "abstract"

    def __init__(self, device: Device) -> None:
        self.device = device
        self.calls: Dict[str, int] = {}

    def _count(self, op: str) -> None:
        self.calls[op] = self.calls.get(op, 0) + 1

    def _matrix(self, ptr: DevicePointer, rows: int, cols: int, ld: int, dtype) -> np.ndarray:
        """Column-major matrix view honouring the leading dimension."""
        if ld < rows:
            raise ReproError(f"leading dimension {ld} < number of rows {rows}")
        storage = self.device.allocator.view(ptr, ld * cols, dtype)
        # Column-major with leading dimension: column j starts at j*ld.
        return storage.reshape(cols, ld)[:, :rows].T

    def _vector(self, ptr: DevicePointer, n: int, inc: int, dtype) -> np.ndarray:
        if inc < 1:
            raise ReproError(f"vector increment must be >= 1, got {inc}")
        storage = self.device.allocator.view(ptr, (n - 1) * inc + 1, dtype)
        return storage[:: inc]

    # --- level 3 -------------------------------------------------------------
    def gemm(self, transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, dtype) -> None:
        """C = alpha*op(A)@op(B) + beta*C, column-major with leading dims."""
        self._count("gemm")
        am = self._matrix(a, m if transa == OMPXBLAS_OP_N else k,
                          k if transa == OMPXBLAS_OP_N else m, lda, dtype)
        bm = self._matrix(b, k if transb == OMPXBLAS_OP_N else n,
                          n if transb == OMPXBLAS_OP_N else k, ldb, dtype)
        cm = self._matrix(c, m, n, ldc, dtype)
        left = am if transa == OMPXBLAS_OP_N else am.T
        right = bm if transb == OMPXBLAS_OP_N else bm.T
        # In-place update of the device view (no copies of C).
        cm *= beta
        cm += alpha * (left @ right)

    # --- level 1 ---------------------------------------------------------------
    def axpy(self, n, alpha, x, incx, y, incy, dtype) -> None:
        """y += alpha * x over strided vectors."""
        self._count("axpy")
        xv = self._vector(x, n, incx, dtype)
        yv = self._vector(y, n, incy, dtype)
        yv += alpha * xv

    def dot(self, n, x, incx, y, incy, dtype) -> float:
        """Dot product of two strided vectors."""
        self._count("dot")
        return float(self._vector(x, n, incx, dtype) @ self._vector(y, n, incy, dtype))

    def nrm2(self, n, x, incx, dtype) -> float:
        """Euclidean norm of a strided vector."""
        self._count("nrm2")
        return float(np.linalg.norm(self._vector(x, n, incx, dtype)))

    def scal(self, n, alpha, x, incx, dtype) -> None:
        """x *= alpha over a strided vector."""
        self._count("scal")
        self._vector(x, n, incx, dtype)[:] *= alpha


class CublasSim(BlasBackend):
    """The NVIDIA vendor library stand-in."""

    name = "cuBLAS-sim"


class RocblasSim(BlasBackend):
    """The AMD vendor library stand-in."""

    name = "rocBLAS-sim"


_BACKENDS = {Vendor.NVIDIA: CublasSim, Vendor.AMD: RocblasSim}


@dataclass
class OmpxBlasHandle:
    """The wrapper-layer handle; owns the vendor backend for its device."""

    device: Device
    backend: BlasBackend

    @property
    def backend_name(self) -> str:
        return self.backend.name


def ompxblas_create(device: Optional[Device] = None) -> OmpxBlasHandle:
    """Create a handle; the vendor backend is picked by the offload target."""
    device = device or current_device()
    backend_cls = _BACKENDS.get(device.spec.vendor)
    if backend_cls is None:
        raise ReproError(
            f"no vendor BLAS for {device.spec.vendor!r}; the wrapper layer "
            f"only knows {sorted(_BACKENDS)}"
        )
    return OmpxBlasHandle(device=device, backend=backend_cls(device))


def ompxblas_destroy(handle: OmpxBlasHandle) -> None:
    """Release the handle (the simulation holds no native resources)."""
    handle.device.synchronize()


def ompxblas_dgemm(handle, transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc) -> None:
    """``cublasDgemm`` with the prefix swapped — §3.6's porting story."""
    handle.backend.gemm(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, np.float64)


def ompxblas_sgemm(handle, transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc) -> None:
    """``cublasSgemm`` with the prefix swapped (fp32 GEMM)."""
    handle.backend.gemm(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, np.float32)


def ompxblas_daxpy(handle, n, alpha, x, incx, y, incy) -> None:
    """``cublasDaxpy`` with the prefix swapped."""
    handle.backend.axpy(n, alpha, x, incx, y, incy, np.float64)


def ompxblas_ddot(handle, n, x, incx, y, incy) -> float:
    """``cublasDdot`` with the prefix swapped."""
    return handle.backend.dot(n, x, incx, y, incy, np.float64)


def ompxblas_dnrm2(handle, n, x, incx) -> float:
    """``cublasDnrm2`` with the prefix swapped."""
    return handle.backend.nrm2(n, x, incx, np.float64)


def ompxblas_dscal(handle, n, alpha, x, incx) -> None:
    """``cublasDscal`` with the prefix swapped."""
    handle.backend.scal(n, alpha, x, incx, np.float64)
