"""The extended ``depend`` clause: ``depend(interopobj: obj)`` (§3.5).

Stock OpenMP dependence resolution considers only the *location* of a
depend item, so handing it a stream cannot mean "enqueue on this stream".
The paper's extension introduces the ``interopobj`` dependence type whose
*semantics* (not location) govern scheduling: a task carrying
``depend(interopobj: obj)`` is dispatched into the stream of the interop
object, and a ``taskwait depend(interopobj: obj)`` is a stream
synchronization — the paper's Figure 5.

Implementation: a handler registered with the stock task runtime's
extension hook.  Mixed clauses compose: stock ``in``/``out`` items still
establish graph predecessors, which the stream closure waits on before the
region body runs — so a target region can be ordered both by a stream and
by host tasks, which is exactly the host-tasking integration the paper's
introduction advertises.
"""

from __future__ import annotations

from typing import Optional, Set

from ..errors import DependenceError
from ..openmp.interop import InteropObj
from ..openmp.task import DependType, Task, TaskRuntime, register_depend_handler
from ..trace import get_tracer

__all__ = ["install", "taskwait_interop"]


def _interopobj_handler(
    runtime: TaskRuntime,
    task: Optional[Task],
    item: object,
    preds: Set[Task],
) -> None:
    if not isinstance(item, InteropObj):
        raise DependenceError(
            f"depend(interopobj: ...) takes an omp_interop_t created with "
            f"interop_init(targetsync=True); got {type(item).__name__}"
        )
    stream = item.targetsync
    if task is None:
        # A taskwait with depend(interopobj: obj): stream synchronization.
        _synchronize_traced(stream)
        return

    def run_in_stream() -> None:
        error: Optional[BaseException] = None
        try:
            for pred in preds:
                pred.wait()
                if pred.error is not None:
                    raise DependenceError(
                        f"predecessor task {pred.name!r} failed"
                    ) from pred.error
            task.fn()
        except BaseException as exc:  # noqa: BLE001 - reported at taskwait
            error = exc
        runtime.finish_extension_task(task, error)

    stream.enqueue(
        run_in_stream,
        label=f"interop:{task.name}",
        trace_args={"task": task.name, "predecessors": len(preds)},
    )


def install() -> None:
    """Register the extension with the OpenMP task runtime (idempotent)."""
    register_depend_handler(DependType.INTEROPOBJ, _interopobj_handler)


def _synchronize_traced(stream) -> None:
    """Stream synchronization, recorded as a ``taskwait`` span when tracing."""
    tracer = get_tracer()
    if tracer is None:
        stream.synchronize()
        return
    with tracer.span(f"taskwait:interopobj:{stream.name}", cat="sync",
                     stream=stream.name):
        stream.synchronize()


def taskwait_interop(obj: InteropObj) -> None:
    """``#pragma omp taskwait depend(interopobj: obj)`` as a direct call."""
    _synchronize_traced(obj.targetsync)


# Importing repro.ompx activates the extension, mirroring "compile with the
# prototype compiler" in the paper.
install()
