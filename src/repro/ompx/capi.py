"""The ompx C API as free functions (§3.3: "C APIs prefixed with ompx_").

The façade-method spelling (``x.thread_id_x()``) is ergonomic Python, but
the paper's C API is a set of *free functions* — and the output of the
C-source rewriting tool (:func:`repro.port.port_c_source`) calls them that
way.  This module provides exactly those functions: inside a bare region
(or any kernel), the executing GPU thread is bound to the OS thread
running it, and ``ompx_thread_id_x()`` & co. resolve against that binding.

.. code-block:: python

    from repro.ompx.capi import (
        ompx_thread_id_x, ompx_block_id_x, ompx_block_dim_x,
        ompx_sync_thread_block,
    )

    @ompx.bare_kernel
    def k(x, data, n):          # the façade arg still exists, but
        i = ompx_block_id_x() * ompx_block_dim_x() + ompx_thread_id_x()
        ompx_sync_thread_block()  # ...the body can be pure C-style calls
        ...

Calling any of these outside a kernel raises
:class:`~repro.errors.OpenMPError` (there is no "current thread" on the
host, exactly as the real C API only exists in device code).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator, Optional

from ..errors import OpenMPError
from .device import DIM_X, DIM_Y, DIM_Z, OmpxThread

__all__ = [
    "current_thread",
    "bound",
    "ompx_thread_id_x", "ompx_thread_id_y", "ompx_thread_id_z", "ompx_thread_id",
    "ompx_block_id_x", "ompx_block_id_y", "ompx_block_id_z", "ompx_block_id",
    "ompx_block_dim_x", "ompx_block_dim_y", "ompx_block_dim_z", "ompx_block_dim",
    "ompx_grid_dim_x", "ompx_grid_dim_y", "ompx_grid_dim_z", "ompx_grid_dim",
    "ompx_global_thread_id_x",
    "ompx_warp_size", "ompx_lane_id", "ompx_warp_id",
    "ompx_sync_thread_block", "ompx_sync_warp",
    "ompx_shfl_sync", "ompx_shfl_up_sync", "ompx_shfl_down_sync", "ompx_shfl_xor_sync",
    "ompx_ballot_sync", "ompx_any_sync", "ompx_all_sync",
    "ompx_match_any_sync", "ompx_match_all_sync",
    "ompx_atomic_add", "ompx_atomic_sub", "ompx_atomic_max", "ompx_atomic_min",
    "ompx_atomic_exchange", "ompx_atomic_cas",
    "ompx_array", "ompx_groupprivate",
]

_binding = threading.local()


def current_thread() -> OmpxThread:
    """The GPU thread executing on this OS thread (device-code only)."""
    thread: Optional[OmpxThread] = getattr(_binding, "thread", None)
    if thread is None:
        raise OpenMPError(
            "ompx_* device APIs are only callable from inside a kernel "
            "(there is no current GPU thread on the host)"
        )
    return thread


@contextlib.contextmanager
def bound(thread: OmpxThread) -> Iterator[None]:
    """Bind a GPU thread to this OS thread for the duration of a kernel
    body.  Installed automatically by :class:`repro.ompx.bare.BareKernel`;
    nesting restores the previous binding (device functions may re-enter)."""
    previous = getattr(_binding, "thread", None)
    _binding.thread = thread
    try:
        yield
    finally:
        _binding.thread = previous


# --- thread indexing (§3.3.1) -------------------------------------------------

def ompx_thread_id_x() -> int:
    """C free-function form of the ``thread_id_x`` device/host API."""
    return current_thread().thread_id_x()


def ompx_thread_id_y() -> int:
    """C free-function form of the ``thread_id_y`` device/host API."""
    return current_thread().thread_id_y()


def ompx_thread_id_z() -> int:
    """C free-function form of the ``thread_id_z`` device/host API."""
    return current_thread().thread_id_z()


def ompx_thread_id(dim: int = DIM_X) -> int:
    """C free-function form of the ``thread_id`` device/host API."""
    return current_thread().thread_id(dim)


def ompx_block_id_x() -> int:
    """C free-function form of the ``block_id_x`` device/host API."""
    return current_thread().block_id_x()


def ompx_block_id_y() -> int:
    """C free-function form of the ``block_id_y`` device/host API."""
    return current_thread().block_id_y()


def ompx_block_id_z() -> int:
    """C free-function form of the ``block_id_z`` device/host API."""
    return current_thread().block_id_z()


def ompx_block_id(dim: int = DIM_X) -> int:
    """C free-function form of the ``block_id`` device/host API."""
    return current_thread().block_id(dim)


def ompx_block_dim_x() -> int:
    """C free-function form of the ``block_dim_x`` device/host API."""
    return current_thread().block_dim_x()


def ompx_block_dim_y() -> int:
    """C free-function form of the ``block_dim_y`` device/host API."""
    return current_thread().block_dim_y()


def ompx_block_dim_z() -> int:
    """C free-function form of the ``block_dim_z`` device/host API."""
    return current_thread().block_dim_z()


def ompx_block_dim(dim: int = DIM_X) -> int:
    """C free-function form of the ``block_dim`` device/host API."""
    return current_thread().block_dim(dim)


def ompx_grid_dim_x() -> int:
    """C free-function form of the ``grid_dim_x`` device/host API."""
    return current_thread().grid_dim_x()


def ompx_grid_dim_y() -> int:
    """C free-function form of the ``grid_dim_y`` device/host API."""
    return current_thread().grid_dim_y()


def ompx_grid_dim_z() -> int:
    """C free-function form of the ``grid_dim_z`` device/host API."""
    return current_thread().grid_dim_z()


def ompx_grid_dim(dim: int = DIM_X) -> int:
    """C free-function form of the ``grid_dim`` device/host API."""
    return current_thread().grid_dim(dim)


def ompx_global_thread_id_x() -> int:
    """C free-function form of the ``global_thread_id_x`` device/host API."""
    return current_thread().global_thread_id_x()


def ompx_warp_size() -> int:
    """C free-function form of the ``warp_size`` device/host API."""
    return current_thread().warp_size()


def ompx_lane_id() -> int:
    """C free-function form of the ``lane_id`` device/host API."""
    return current_thread().lane_id()


def ompx_warp_id() -> int:
    """C free-function form of the ``warp_id`` device/host API."""
    return current_thread().warp_id()


# --- synchronization (§3.3.2) ---------------------------------------------------

def ompx_sync_thread_block() -> None:
    """C free-function form of the ``sync_thread_block`` device/host API."""
    current_thread().sync_thread_block()


def ompx_sync_warp(mask: Optional[int] = None) -> None:
    """C free-function form of the ``sync_warp`` device/host API."""
    current_thread().sync_warp(mask)


def ompx_shfl_sync(var, src_lane: int, mask: Optional[int] = None):
    """C free-function form of the ``shfl_sync`` device/host API."""
    return current_thread().shfl_sync(var, src_lane, mask)


def ompx_shfl_up_sync(var, delta: int, mask: Optional[int] = None):
    """C free-function form of the ``shfl_up_sync`` device/host API."""
    return current_thread().shfl_up_sync(var, delta, mask)


def ompx_shfl_down_sync(var, delta: int, mask: Optional[int] = None):
    """C free-function form of the ``shfl_down_sync`` device/host API."""
    return current_thread().shfl_down_sync(var, delta, mask)


def ompx_shfl_xor_sync(var, lane_mask: int, mask: Optional[int] = None):
    """C free-function form of the ``shfl_xor_sync`` device/host API."""
    return current_thread().shfl_xor_sync(var, lane_mask, mask)


def ompx_ballot_sync(predicate, mask: Optional[int] = None) -> int:
    """C free-function form of the ``ballot_sync`` device/host API."""
    return current_thread().ballot_sync(predicate, mask)


def ompx_any_sync(predicate, mask: Optional[int] = None) -> bool:
    """C free-function form of the ``any_sync`` device/host API."""
    return current_thread().any_sync(predicate, mask)


def ompx_all_sync(predicate, mask: Optional[int] = None) -> bool:
    """C free-function form of the ``all_sync`` device/host API."""
    return current_thread().all_sync(predicate, mask)


def ompx_match_any_sync(value, mask: Optional[int] = None) -> int:
    """C free-function form of the ``match_any_sync`` device/host API."""
    return current_thread().match_any_sync(value, mask)


def ompx_match_all_sync(value, mask: Optional[int] = None):
    """C free-function form of the ``match_all_sync`` device/host API."""
    return current_thread().match_all_sync(value, mask)


# --- atomics ------------------------------------------------------------------------

def ompx_atomic_add(array, index, value):
    """C free-function form of the ``atomic_add`` device/host API."""
    return current_thread().atomic_add(array, index, value)


def ompx_atomic_sub(array, index, value):
    """C free-function form of the ``atomic_sub`` device/host API."""
    return current_thread().atomic_sub(array, index, value)


def ompx_atomic_max(array, index, value):
    """C free-function form of the ``atomic_max`` device/host API."""
    return current_thread().atomic_max(array, index, value)


def ompx_atomic_min(array, index, value):
    """C free-function form of the ``atomic_min`` device/host API."""
    return current_thread().atomic_min(array, index, value)


def ompx_atomic_exchange(array, index, value):
    """C free-function form of the ``atomic_exchange`` device/host API."""
    return current_thread().atomic_exchange(array, index, value)


def ompx_atomic_cas(array, index, compare, value):
    """C free-function form of the ``atomic_cas`` device/host API."""
    return current_thread().atomic_cas(array, index, compare, value)


# --- memory ---------------------------------------------------------------------------

def ompx_array(ptr, shape, dtype):
    """C free-function form of the ``array`` device/host API."""
    return current_thread().array(ptr, shape, dtype)


def ompx_groupprivate(name: str, shape, dtype):
    """C free-function form of the ``groupprivate`` device/host API."""
    return current_thread().groupprivate(name, shape, dtype)
