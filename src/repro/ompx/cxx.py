"""ompx C++-style device API (§3.3): ``ompx::thread_id(ompx::DIM_X)``.

The paper provides a C++ API set "encapsulated within the ompx namespace"
alongside the C set.  The Python rendering is a small object exposed as
``x.cxx`` on the bare-kernel façade: ``x.cxx.thread_id(DIM_X)`` is
``ompx::thread_id(ompx::DIM_X)``.
"""

from __future__ import annotations

from typing import Optional

from .device import DIM_X, DIM_Y, DIM_Z, OmpxThread

__all__ = ["CxxApi", "DIM_X", "DIM_Y", "DIM_Z"]


class CxxApi:
    """The dimension-parameterized C++ flavour of the device API."""

    __slots__ = ("_t",)

    def __init__(self, thread: OmpxThread) -> None:
        self._t = thread

    def thread_id(self, dim: int = DIM_X) -> int:
        """Thread index in the given dimension (C++ ``ompx::thread_id``)."""
        return self._t.thread_id(dim)

    def block_id(self, dim: int = DIM_X) -> int:
        """Team index in the given dimension (C++ ``ompx::block_id``)."""
        return self._t.block_id(dim)

    def block_dim(self, dim: int = DIM_X) -> int:
        """Team extent in the given dimension (C++ ``ompx::block_dim``)."""
        return self._t.block_dim(dim)

    def grid_dim(self, dim: int = DIM_X) -> int:
        """Grid extent in the given dimension (C++ ``ompx::grid_dim``)."""
        return self._t.grid_dim(dim)

    def sync_block(self) -> None:
        """``ompx::sync_block()``."""
        self._t.sync_thread_block()

    def sync_warp(self, mask: Optional[int] = None) -> None:
        """``ompx_sync_warp``: warp-level barrier (forward-progress group)."""
        self._t.sync_warp(mask)

    def shfl_down_sync(self, var, delta: int, mask: Optional[int] = None):
        """``__shfl_down_sync``: read from the lane ``delta`` above."""
        return self._t.shfl_down_sync(var, delta, mask)

    def shfl_sync(self, var, src_lane: int, mask: Optional[int] = None):
        """``__shfl_sync`` / ``ompx_shfl_sync``: read ``var`` from ``src_lane``."""
        return self._t.shfl_sync(var, src_lane, mask)

    def ballot_sync(self, predicate, mask: Optional[int] = None) -> int:
        """``__ballot_sync``: bitmask of lanes whose predicate is true."""
        return self._t.ballot_sync(predicate, mask)
