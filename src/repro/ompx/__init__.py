"""The paper's OpenMP kernel-language extensions ("ompx").

Importing this package is the moral equivalent of compiling with the
paper's prototype compiler: the bare-region construct, device/host APIs,
multi-dimensional launches, the ``interopobj`` dependence type (installed
into the OpenMP task runtime as a side effect of this import) and the
vendor-library wrapper all become available.

Map from paper section to module:

* §3.1 ``ompx_bare``                 -> :mod:`repro.ompx.bare`
* §3.2 multi-dimensional grid/block -> :func:`target_teams_bare` dims
* §3.3 device APIs (C and C++)      -> :mod:`repro.ompx.device`, :mod:`repro.ompx.cxx`
* §3.4 host APIs                    -> :mod:`repro.ompx.host`
* §3.5 ``depend(interopobj:)``      -> :mod:`repro.ompx.depend`
* §3.6 vendor-library wrappers      -> :mod:`repro.ompx.vendor`
"""

from . import depend as _depend  # side effect: installs interopobj handler
from .bare import BareKernel, bare_kernel, target_teams_bare
from .cxx import CxxApi
from .depend import taskwait_interop
from .device import DIM_X, DIM_Y, DIM_Z, OmpxThread
from . import capi
from ..gpu.collectives import block_inclusive_scan, block_reduce, warp_inclusive_scan
from .lattice import LatticeExpr, LatticeField
from .host import (
    ompx_device_can_access_peer,
    ompx_device_disable_peer_access,
    ompx_device_enable_peer_access,
    ompx_device_reset,
    ompx_device_synchronize,
    ompx_free,
    ompx_malloc,
    ompx_memcpy,
    ompx_memcpy_from_symbol,
    ompx_memcpy_peer,
    ompx_memcpy_to_symbol,
    ompx_memset,
    ompx_occupancy_max_active_blocks,
    ompx_stream_create,
    ompx_stream_synchronize,
)
from .vendor import (
    OMPXBLAS_OP_N,
    OMPXBLAS_OP_T,
    HAND_KERNEL_EFFICIENCY,
    BlasBackend,
    CublasSim,
    OmpxBlasHandle,
    OneMklSim,
    RocblasSim,
    gemm_footprint,
    modeled_gemm_seconds,
    ompxblas_create,
    ompxblas_daxpy,
    ompxblas_dcopy,
    ompxblas_ddot,
    ompxblas_destroy,
    ompxblas_dgemm,
    ompxblas_dgemm_batched,
    ompxblas_dgemm_strided_batched,
    ompxblas_dgemv,
    ompxblas_dnrm2,
    ompxblas_dscal,
    ompxblas_dswap,
    ompxblas_get_stream,
    ompxblas_set_stream,
    ompxblas_sgemm,
    ompxblas_zgemm_strided_batched,
    register_backend,
    registered_backends,
)

__all__ = [
    "BareKernel",
    "bare_kernel",
    "target_teams_bare",
    "CxxApi",
    "taskwait_interop",
    "DIM_X",
    "DIM_Y",
    "DIM_Z",
    "OmpxThread",
    "ompx_device_can_access_peer",
    "ompx_device_disable_peer_access",
    "ompx_device_enable_peer_access",
    "ompx_device_reset",
    "ompx_device_synchronize",
    "ompx_free",
    "ompx_malloc",
    "ompx_memcpy",
    "ompx_memcpy_from_symbol",
    "ompx_memcpy_peer",
    "ompx_memcpy_to_symbol",
    "ompx_memset",
    "ompx_stream_create",
    "ompx_occupancy_max_active_blocks",
    "capi",
    "block_reduce",
    "block_inclusive_scan",
    "warp_inclusive_scan",
    "ompx_stream_synchronize",
    "LatticeExpr",
    "LatticeField",
    "OMPXBLAS_OP_N",
    "OMPXBLAS_OP_T",
    "HAND_KERNEL_EFFICIENCY",
    "BlasBackend",
    "CublasSim",
    "OmpxBlasHandle",
    "OneMklSim",
    "RocblasSim",
    "gemm_footprint",
    "modeled_gemm_seconds",
    "ompxblas_create",
    "ompxblas_daxpy",
    "ompxblas_dcopy",
    "ompxblas_ddot",
    "ompxblas_destroy",
    "ompxblas_dgemm",
    "ompxblas_dgemm_batched",
    "ompxblas_dgemm_strided_batched",
    "ompxblas_dgemv",
    "ompxblas_dnrm2",
    "ompxblas_dscal",
    "ompxblas_dswap",
    "ompxblas_get_stream",
    "ompxblas_set_stream",
    "ompxblas_sgemm",
    "ompxblas_zgemm_strided_batched",
    "register_backend",
    "registered_backends",
]
