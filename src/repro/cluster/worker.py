"""The worker-process side of :mod:`repro.cluster`.

Each worker is a *spawned* OS process hosting its own slice of the
simulated machine: a fresh :class:`~repro.sched.DevicePool` over the
specs assigned to it (optionally wrapped in a
:class:`~repro.resilience.ResilientPool`, so device-level healing keeps
working *inside* the worker while the parent supervises the worker as a
whole).  The parent talks to it over one duplex pipe with a tiny framed
protocol:

parent -> worker
    ``("job", job_id, payload_bytes)``  dispatch one pickled job spec
    ``("stop", drain)``                 shut down (drain or cancel queued)

worker -> parent
    ``("hb", seq)``                     heartbeat; ``seq == 0`` means ready
    ``("ok", job_id, result_bytes)``    job succeeded (pickled result)
    ``("err", job_id, exc_bytes)``      job failed (pickled exception)
    ``("stats", payload)``              final counters, sent during stop
    ``("bye",)``                        clean shutdown acknowledged

Everything that crosses the pipe is pickled *by reference where it must
be*: kernels travel as ``(module, qualname)`` pairs (decorator wrapper
objects do not pickle), callables and :class:`ClusterAction`\\ s travel
as ordinary pickles.  Results and exceptions are pre-pickled on the
worker; anything unpicklable is downgraded to a descriptive
:class:`~repro.errors.ClusterError` so the parent never loses a future
to a serialization failure.
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ClusterError

__all__ = ["WorkerConfig", "WorkerContext"]

#: Heartbeat sequence 0 is reserved for the readiness announcement.
READY_SEQ = 0


@dataclass
class WorkerConfig:
    """Everything a spawned worker needs to build its half of the machine.

    Must stay picklable (it rides the spawn ``Process(args=...)``);
    device specs pickle by value, the fault plan travels pre-pickled so
    the parent can bind/rebind without importing worker state.
    """

    rank: int
    size: int
    global_indices: List[int]
    specs: List[Any]
    heartbeat_s: float = 0.25
    resilient: bool = False
    verify: int = 1
    seed: int = 0
    plan_bytes: Optional[bytes] = None
    tune: bool = False
    tune_cache: Optional[str] = None


@dataclass
class WorkerContext:
    """What a :class:`~repro.cluster.ClusterAction` sees when it runs.

    ``store`` is a per-worker scratch dict that survives across actions
    (the broadcast collective parks values there); ``global_indices``
    maps the worker's local devices back to cluster-wide super-device
    indices.
    """

    rank: int
    size: int
    pool: Any
    devices: List[Any]
    global_indices: List[int]
    store: Dict[str, Any] = field(default_factory=dict)


def _fence(device) -> None:
    """Module-level no-op fence job (lambdas do not pickle)."""
    del device


def _resolve_kernel(module: str, qualname: str):
    """Re-import a kernel shipped by reference (wrappers do not pickle)."""
    try:
        obj: Any = import_module(module)
        for part in qualname.split("."):
            obj = getattr(obj, part)
        return obj
    except (ImportError, AttributeError) as exc:
        raise ClusterError(
            f"worker could not resolve kernel {module}.{qualname}: {exc}"
        ) from exc


def _pickle_or_error(value: Any, *, label: str) -> bytes:
    """Pickle ``value``; fall back to a ClusterError describing why not."""
    try:
        return pickle.dumps(value)
    except Exception as exc:  # noqa: BLE001 - any pickling failure
        fallback = ClusterError(
            f"job {label!r} produced an unpicklable "
            f"{type(value).__name__}: {exc}"
        )
        return pickle.dumps(fallback)


class _WorkerRuntime:
    """The in-process state of one worker: pool, heartbeats, dispatch."""

    def __init__(self, conn, config: WorkerConfig) -> None:
        self.conn = conn
        self.config = config
        self.send_lock = threading.Lock()
        self.stop_event = threading.Event()
        self.inner_pool = None  # the raw DevicePool (owns the devices)
        self.pool = None  # what jobs run against (maybe ResilientPool)
        self.context: Optional[WorkerContext] = None
        self.jobs_done = 0
        self.jobs_failed = 0
        self._plan_cm = None
        self._tuned = False
        self._inflight = 0
        self._inflight_cv = threading.Condition()

    # --- plumbing -----------------------------------------------------------
    def send(self, message: Tuple) -> None:
        """Pipe sends are not atomic across threads; serialize them."""
        with self.send_lock:
            try:
                self.conn.send(message)
            except (BrokenPipeError, OSError):
                # Parent is gone; nothing left to report to.
                self.stop_event.set()

    def _job_started(self) -> None:
        with self._inflight_cv:
            self._inflight += 1

    def _job_finished(self) -> None:
        with self._inflight_cv:
            self._inflight -= 1
            self._inflight_cv.notify_all()

    def _wait_inflight(self, timeout: float) -> bool:
        """Wait for every accepted job to report back (drain shutdown)."""
        deadline = timeout
        with self._inflight_cv:
            return self._inflight_cv.wait_for(
                lambda: self._inflight == 0, timeout=deadline
            )

    def _heartbeat_loop(self) -> None:
        seq = READY_SEQ + 1
        while not self.stop_event.wait(self.config.heartbeat_s):
            self.send(("hb", seq))
            seq += 1

    # --- setup / teardown ---------------------------------------------------
    def start(self) -> None:
        from ..sched import DevicePool

        self.inner_pool = DevicePool(specs=list(self.config.specs))
        self.pool = self.inner_pool
        if self.config.plan_bytes is not None:
            from .. import faults

            plan = pickle.loads(self.config.plan_bytes)
            # Map cluster-wide super-device selectors onto this worker's
            # local pool ordinals; selectors for other workers' devices
            # keep matching raw ordinals, which local pool devices
            # (fresh registry entries above the defaults) never use.
            plan.bind_devices(
                {
                    global_idx: device.ordinal
                    for global_idx, device in zip(
                        self.config.global_indices, self.inner_pool.devices
                    )
                }
            )
            self._plan_cm = faults.inject(plan)
            self._plan_cm.__enter__()
        if self.config.resilient:
            from ..resilience import ResilientPool

            self.pool = ResilientPool(
                self.inner_pool,
                verify=self.config.verify,
                seed=self.config.seed + self.config.rank,
            )
        if self.config.tune and self.config.tune_cache:
            from .. import tune as tune_mod

            if tune_mod.active_session() is None:
                tune_mod.enable(
                    self.config.tune_cache, seed=self.config.seed
                )
                self._tuned = True
        self.context = WorkerContext(
            rank=self.config.rank,
            size=self.config.size,
            pool=self.pool,
            devices=list(self.inner_pool.devices),
            global_indices=list(self.config.global_indices),
        )

    def shutdown(self, drain: bool) -> None:
        try:
            if self.pool is not None and self.pool is not self.inner_pool:
                self.pool.close(drain=drain)
            if self.inner_pool is not None:
                self.inner_pool.close(drain=drain)
        finally:
            if self._tuned:
                from .. import tune as tune_mod

                tune_mod.disable()
            if self._plan_cm is not None:
                self._plan_cm.__exit__(None, None, None)
                self._plan_cm = None

    # --- job dispatch -------------------------------------------------------
    def dispatch(self, job_id: int, payload: bytes) -> None:
        try:
            spec = pickle.loads(payload)
        except Exception as exc:  # noqa: BLE001 - report, don't die
            self.send(
                (
                    "err",
                    job_id,
                    pickle.dumps(
                        ClusterError(f"worker could not unpickle job: {exc}")
                    ),
                )
            )
            return
        kind = spec.get("kind")
        label = spec.get("label") or kind or "job"
        self._job_started()
        try:
            if kind == "call":
                future = self.pool.submit_call(
                    spec["fn"],
                    device=spec.get("device"),
                    label=label,
                    shard=bool(spec.get("shard", False)),
                )
            elif kind == "kernel":
                kernel = _resolve_kernel(spec["module"], spec["qualname"])
                future = self.pool.submit(
                    kernel,
                    spec["config"],
                    *spec.get("args", ()),
                    device=spec.get("device"),
                    label=label,
                )
            elif kind == "action":
                self._run_on_thread(job_id, label, spec["action"])
                return
            elif kind == "canary":
                self._run_on_thread(job_id, label, None)
                return
            else:
                raise ClusterError(f"unknown cluster job kind {kind!r}")
        except Exception as exc:  # noqa: BLE001 - submission failed
            self.jobs_failed += 1
            self.send(("err", job_id, _pickle_or_error(exc, label=label)))
            self._job_finished()
            return
        self._attach(job_id, label, future)

    def _attach(self, job_id: int, label: str, future) -> None:
        """Stream a future's completion back over the pipe.

        Plain :class:`KernelFuture`\\ s support ``add_done_callback`` —
        no extra thread.  :class:`ResilientFuture`\\ s resolve on the
        waiting thread (retries happen there), so those get a waiter.
        """
        if hasattr(future, "add_done_callback"):
            future.add_done_callback(
                lambda fut: self._complete(job_id, label, fut)
            )
            return
        waiter = threading.Thread(
            target=self._wait_and_complete,
            args=(job_id, label, future),
            name=f"cluster-wait-{job_id}",
            daemon=True,
        )
        waiter.start()

    def _wait_and_complete(self, job_id: int, label: str, future) -> None:
        try:
            exc = future.exception()
        except Exception as wait_exc:  # noqa: BLE001 - resolution blew up
            exc = wait_exc
        try:
            if exc is not None:
                self.jobs_failed += 1
                self.send(("err", job_id, _pickle_or_error(exc, label=label)))
                return
            self.jobs_done += 1
            self.send(
                ("ok", job_id, _pickle_or_error(future.result(), label=label))
            )
        finally:
            self._job_finished()

    def _complete(self, job_id: int, label: str, future) -> None:
        try:
            exc = future.exception()
            if exc is not None:
                self.jobs_failed += 1
                self.send(("err", job_id, _pickle_or_error(exc, label=label)))
            else:
                self.jobs_done += 1
                self.send(
                    ("ok", job_id, _pickle_or_error(future.result(), label=label))
                )
        finally:
            self._job_finished()

    def _run_on_thread(self, job_id: int, label: str, action) -> None:
        """Actions (and canaries) block on their own pool's futures, so
        they must never run on a pool worker thread — dedicated thread."""

        def runner() -> None:
            try:
                if action is None:
                    result = self._canary()
                else:
                    result = action.invoke(self.context)
            except Exception as exc:  # noqa: BLE001 - report, don't die
                self.jobs_failed += 1
                self.send(("err", job_id, _pickle_or_error(exc, label=label)))
                self._job_finished()
                return
            self.jobs_done += 1
            self.send(("ok", job_id, _pickle_or_error(result, label=label)))
            self._job_finished()

        thread = threading.Thread(
            target=runner, name=f"cluster-action-{job_id}", daemon=True
        )
        thread.start()

    def _canary(self) -> str:
        """Probe every local device with the resilience canary kernel."""
        from ..resilience.pool import _canary_probe

        for device in self.inner_pool.devices:
            _canary_probe(device)
        return f"canary ok on {len(self.inner_pool.devices)} device(s)"

    # --- main loop ----------------------------------------------------------
    def run(self) -> None:
        self.start()
        self.send(("hb", READY_SEQ))
        heartbeat = threading.Thread(
            target=self._heartbeat_loop, name="cluster-heartbeat", daemon=True
        )
        heartbeat.start()
        drain = True
        try:
            while True:
                try:
                    message = self.conn.recv()
                except (EOFError, OSError):
                    drain = False
                    break
                if message[0] == "job":
                    self.dispatch(message[1], message[2])
                elif message[0] == "stop":
                    drain = bool(message[1])
                    break
        finally:
            self.stop_event.set()
            if drain:
                # Don't announce stats/bye while completions are still in
                # flight — the parent treats post-bye silence as final.
                self._wait_inflight(timeout=30.0)
            try:
                self.shutdown(drain)
            except Exception:  # noqa: BLE001 - teardown best-effort
                pass
            self.send(
                (
                    "stats",
                    {
                        "rank": self.config.rank,
                        "jobs_done": self.jobs_done,
                        "jobs_failed": self.jobs_failed,
                    },
                )
            )
            self.send(("bye",))
            try:
                self.conn.close()
            except OSError:
                pass


def _worker_main(conn, config: WorkerConfig) -> None:
    """Spawn entry point (must be module-level to pickle by reference)."""
    _WorkerRuntime(conn, config).run()
