"""Picklable :class:`ClusterAction`\\ s: scatter/gather work units.

Modeled on armi's ``mpiActions`` (see SNIPPETS.md): an action is a small
picklable object that travels to a worker process, runs
:meth:`ClusterAction.invoke` against that worker's
:class:`~repro.cluster.worker.WorkerContext`, and ships its return value
back.  ``rank``/``size`` are stamped by the pool at scatter time (armi's
``broadcast``/``invokeHook`` shape), so one action instance describes
the whole collective and each copy knows which slice is its own.

Subclass it for real work::

    class SumShard(ClusterAction):
        def __init__(self, data):
            self.data = data           # picklable state only

        def invoke(self, ctx):
            lo, hi = self.my_slice(len(self.data))
            return float(np.sum(self.data[lo:hi]))

    total = pool.all_reduce(SumShard(data), op="sum")

The failure contract is the pool's: a participant whose worker dies
mid-collective surfaces as :class:`~repro.errors.WorkerLost` from the
gather — collectives fail as a unit instead of silently reducing over a
partial set.
"""

from __future__ import annotations

import copy
from typing import Any, Tuple

from ..errors import ClusterError

__all__ = ["ClusterAction"]


class ClusterAction:
    """One scatterable unit of work; subclasses implement :meth:`invoke`.

    Instances must stay picklable: plain attributes, no device handles,
    no open files.  ``rank``/``size`` are ``None`` until the pool stamps
    them (:meth:`_with_rank`), so an action accidentally invoked without
    going through ``scatter`` fails loudly instead of computing rank 0's
    slice everywhere.
    """

    rank: Any = None
    size: Any = None

    def invoke(self, ctx) -> Any:  # pragma: no cover - abstract
        """Run this action's slice on one worker; the return value is
        gathered by the parent.  ``ctx`` is a
        :class:`~repro.cluster.worker.WorkerContext`."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement invoke(ctx)"
        )

    def _with_rank(self, rank: int, size: int) -> "ClusterAction":
        """A per-worker copy with its collective coordinates stamped."""
        clone = copy.copy(self)
        clone.rank = rank
        clone.size = size
        return clone

    def my_slice(self, n: int) -> Tuple[int, int]:
        """This rank's ``[lo, hi)`` share of ``n`` items (block layout).

        The first ``n % size`` ranks take one extra item, matching
        :func:`repro.sched.shard`'s remainder handling, so action-based
        decompositions line up with future-based ones.
        """
        if self.rank is None or self.size is None:
            raise ClusterError(
                f"{type(self).__name__} has no rank/size; actions must be "
                f"dispatched via ClusterPool.scatter()/all_reduce()"
            )
        base, extra = divmod(n, self.size)
        lo = self.rank * base + min(self.rank, extra)
        hi = lo + base + (1 if self.rank < extra else 0)
        return lo, hi

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} rank={self.rank}/{self.size}>"


class _StoreAction(ClusterAction):
    """Park a value in the worker's context store (broadcast payload)."""

    def __init__(self, key: str, value: Any) -> None:
        self.key = key
        self.value = value

    def invoke(self, ctx) -> Any:
        ctx.store[self.key] = self.value
        return self.value
