"""The parent-side :class:`ClusterPool`: supervision over worker processes.

A :class:`ClusterPool` satisfies :class:`~repro.sched.PoolProtocol` by
sharding submissions across spawned worker OS processes, each hosting a
slice of a :class:`~repro.sched.DevicePool` (see
:mod:`repro.cluster.worker`).  The parent never touches a simulated
device itself — its ``devices`` are :class:`DeviceProxy` stand-ins, one
per remote device, numbered with cluster-wide *super-device* indices.

The robustness core is the supervisor: every worker heartbeats on its
pipe; a worker whose process exits, whose pipe drops, or whose heartbeat
goes silent past the liveness deadline is declared **lost** and handled
exactly like a failed device one tier down — the
:class:`~repro.resilience.HealthTracker` state machine quarantines the
worker (a lost worker is a quarantined *super-device*), its in-flight
unpinned jobs are redispatched to the survivors after a seeded backoff,
pinned jobs fail with :class:`~repro.errors.WorkerLost` (or
:class:`~repro.errors.HeartbeatTimeout` for silent hangs), and — when
``restart=True`` — a replacement process is spawned, canary-probed, and
readmitted to HEALTHY on a passing probe or RETIRED on a failing one.
Every recovery action lands in the shared
:class:`~repro.resilience.RecoveryReport`.
"""

from __future__ import annotations

import functools
import itertools
import pickle
import threading
import time
import warnings
from random import Random
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import (
    CancelledError,
    ClusterError,
    HeartbeatTimeout,
    SchedulerError,
    WorkerLost,
)
from ..gpu.device import A100_SPEC, DeviceSpec
from ..gpu.memory import DevicePointer
from ..resilience.health import HealthTracker
from ..resilience.report import RecoveryReport
from ..trace import get_tracer
from .worker import READY_SEQ, WorkerConfig, _fence, _worker_main

__all__ = ["ClusterPool", "DeviceProxy", "ClusterFuture", "CLUSTER_KINDS"]

#: Recovery-report counters the cluster tier adds via ``ensure_kinds``.
CLUSTER_KINDS = (
    "workers_lost",
    "heartbeat_timeouts",
    "worker_restarts",
    "redispatches",
    "degraded",
)

_job_ids = itertools.count(1)

#: Worker handle lifecycle states (internal).
_STARTING, _UP, _LOST, _RESPAWNING, _RETIRED, _STOPPED = (
    "starting", "up", "lost", "respawning", "retired", "stopped",
)


class DeviceProxy:
    """Parent-side stand-in for one device living in a worker process.

    ``ordinal`` is the cluster-wide super-device index (what fault-plan
    ``device=`` selectors address under ``--cluster``); ``rank`` and
    ``local_index`` say where the real device lives.  Proxies expose the
    attribute surface layers above actually read (``spec``, ``ordinal``,
    ``is_poisoned``) — nothing device-resident crosses the process
    boundary.
    """

    is_poisoned = False

    def __init__(self, ordinal: int, spec: DeviceSpec, rank: int,
                 local_index: int) -> None:
        self.ordinal = ordinal
        self.spec = spec
        self.rank = rank
        self.local_index = local_index

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<DeviceProxy #{self.ordinal} {self.spec.name} "
            f"@ worker {self.rank}[{self.local_index}]>"
        )


class ClusterFuture:
    """The result handle for one cluster submission.

    Mirrors :class:`~repro.sched.KernelFuture`'s caller surface (``wait``
    / ``result`` / ``exception`` / ``done`` / ``cancelled``) so
    :func:`repro.sched.gather` and the serve dispatchers work unchanged.
    ``attempts`` counts dispatches — a redispatch after a worker loss
    shows up exactly like a resilient retry.  Completion is
    first-writer-wins: a worker completing a job the supervisor already
    redispatched is dropped as stale.
    """

    def __init__(self, label: str, device: DeviceProxy, *,
                 pinned: bool) -> None:
        self.label = label
        self.device = device
        self.track = f"worker:{device.rank}"
        self.pinned = pinned
        self.attempts = 0
        self._done = threading.Event()
        self._lock = threading.Lock()
        self._result = None
        self._exception: Optional[BaseException] = None

    # --- supervisor side ----------------------------------------------------
    def _settle(self, result=None, exc: Optional[BaseException] = None) -> bool:
        with self._lock:
            if self._done.is_set():
                return False
            self._result = result
            self._exception = exc
            self._done.set()
            return True

    # --- caller side --------------------------------------------------------
    def cancel(self, reason: str = "cancelled", *,
               retryable: bool = False) -> bool:
        """Resolve to :class:`CancelledError` if not already completed."""
        return self._settle(exc=CancelledError(
            f"job {self.label!r} on super-device {self.device.ordinal}: "
            f"{reason}",
            retryable=retryable,
        ))

    def cancelled(self) -> bool:
        """True once the future resolved to a :class:`CancelledError`."""
        return self._done.is_set() and isinstance(
            self._exception, CancelledError
        )

    def done(self) -> bool:
        """True once a result, error or cancellation has landed."""
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until resolved (or ``timeout``); True when resolved."""
        return self._done.wait(timeout)

    def exception(
        self, timeout: Optional[float] = None
    ) -> Optional[BaseException]:
        """The failure this job resolved to, or ``None`` on success.

        Raises :class:`~repro.errors.SchedulerError` if the job does
        not complete within ``timeout`` seconds.
        """
        if not self._done.wait(timeout):
            raise SchedulerError(
                f"future {self.label!r} on super-device "
                f"{self.device.ordinal} did not complete within {timeout}s"
            )
        return self._exception

    def result(self, timeout: Optional[float] = None):
        """The job's return value; re-raises its failure if it has one."""
        exc = self.exception(timeout)
        if exc is not None:
            raise exc
        return self._result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            "pending" if not self._done.is_set()
            else "cancelled" if self.cancelled()
            else "failed" if self._exception is not None
            else "done"
        )
        return (
            f"<ClusterFuture {self.label!r} on super-device "
            f"{self.device.ordinal} ({state})>"
        )


class _Job:
    """One dispatchable unit: pre-pickled payload plus its future."""

    __slots__ = ("payload", "future", "local_device")

    def __init__(self, payload: bytes, future: ClusterFuture,
                 local_device: Optional[int]) -> None:
        self.payload = payload
        self.future = future
        self.local_device = local_device  # pinned local index, or None


class _WorkerHandle:
    """Parent-side bookkeeping for one worker process."""

    def __init__(self, rank: int, config: WorkerConfig) -> None:
        self.rank = rank
        self.config = config
        self.proc = None
        self.conn = None
        self.receiver: Optional[threading.Thread] = None
        self.send_lock = threading.Lock()
        self.ready = threading.Event()
        self.state = _STARTING
        self.last_seen = time.monotonic()
        self.inflight: Dict[int, _Job] = {}
        self.stats: Optional[dict] = None

    def send(self, message) -> bool:
        with self.send_lock:
            try:
                self.conn.send(message)
                return True
            except (BrokenPipeError, OSError, ValueError, TypeError,
                    AttributeError):
                # Loss handling may close (or null out) the connection
                # from the supervisor thread while a submitter is mid-
                # send; a closed/cleared handle surfaces as OSError,
                # ValueError("Connection is closed"), or a TypeError/
                # AttributeError from the stdlib writing to a None
                # handle.  All mean the same thing: the worker is gone.
                return False


class ClusterPool:
    """Work sharded across supervised worker processes, PoolProtocol-shaped.

    ``ClusterPool(3)`` spawns three workers with one A100 each;
    ``devices_per_worker`` widens each worker's local pool, and
    ``specs=[...]`` (a flat spec list, distributed round-robin) builds
    heterogeneous clusters.  ``resilient=True`` wraps each worker's local
    pool in a :class:`~repro.resilience.ResilientPool`, stacking
    device-level healing *inside* workers under process-level
    supervision outside them.

    ``plan`` (a :class:`~repro.faults.FaultPlan` or spec string) is
    pickled to every worker and re-bound so ``device=`` selectors address
    super-device indices; note fault trigger counters then count per
    worker process.  ``tune=True`` with a shared ``tune_cache`` enables
    the autotuner in every worker (the plan cache file is
    concurrency-safe, so workers share one cache).
    """

    is_cluster = True

    def __init__(
        self,
        workers: int = 0,
        *,
        devices_per_worker: int = 1,
        specs: Optional[Sequence[DeviceSpec]] = None,
        resilient: bool = False,
        verify: int = 1,
        seed: int = 0,
        report: Optional[RecoveryReport] = None,
        heartbeat_s: float = 0.25,
        deadline_s: float = 2.0,
        max_redispatch: int = 3,
        restart: bool = True,
        spawn_timeout_s: float = 30.0,
        plan=None,
        tune: bool = False,
        tune_cache: Optional[str] = None,
    ) -> None:
        if specs is None:
            if workers <= 0:
                raise ClusterError(
                    "ClusterPool needs workers >= 1 (or an explicit "
                    "specs= list)"
                )
            if devices_per_worker < 1:
                raise ClusterError("devices_per_worker must be >= 1")
            per_worker = [
                [A100_SPEC] * devices_per_worker for _ in range(workers)
            ]
        else:
            specs = list(specs)
            if not specs:
                raise ClusterError("specs= must name at least one device")
            workers = workers or len(specs)
            if workers > len(specs):
                raise ClusterError(
                    f"workers={workers} exceeds len(specs)={len(specs)}"
                )
            per_worker = [specs[i::workers] for i in range(workers)]
        if deadline_s <= heartbeat_s:
            raise ClusterError(
                f"deadline_s={deadline_s} must exceed heartbeat_s="
                f"{heartbeat_s}; a deadline shorter than one heartbeat "
                f"declares every worker dead"
            )

        self.report = report or RecoveryReport()
        self.report.ensure_kinds(CLUSTER_KINDS)
        self.health = HealthTracker(
            workers, report=self.report, noun="worker"
        )
        self._heartbeat_s = heartbeat_s
        self._deadline_s = deadline_s
        self._max_redispatch = max_redispatch
        self._restart = restart
        self._spawn_timeout_s = spawn_timeout_s
        self._rng = Random(seed)
        self._lock = threading.Lock()
        self._rr = 0
        self._closing = False
        self._closed = False

        plan_bytes = None
        if plan is not None:
            from ..faults import FaultPlan

            if isinstance(plan, str):
                plan = FaultPlan.parse(plan)
            plan_bytes = pickle.dumps(plan)

        # Assign super-device indices in rank order: worker 0's devices
        # first, then worker 1's, so `--cluster 3` numbers its
        # super-devices 0..N-1 exactly like `--devices N` numbers shards.
        self._proxies: List[DeviceProxy] = []
        self._handles: List[_WorkerHandle] = []
        next_global = 0
        for rank, worker_specs in enumerate(per_worker):
            indices = list(
                range(next_global, next_global + len(worker_specs))
            )
            next_global += len(worker_specs)
            for local, (gidx, spec) in enumerate(
                zip(indices, worker_specs)
            ):
                self._proxies.append(DeviceProxy(gidx, spec, rank, local))
            self._handles.append(
                _WorkerHandle(
                    rank,
                    WorkerConfig(
                        rank=rank,
                        size=workers,
                        global_indices=indices,
                        specs=list(worker_specs),
                        heartbeat_s=heartbeat_s,
                        resilient=resilient,
                        verify=verify,
                        seed=seed,
                        plan_bytes=plan_bytes,
                        tune=tune,
                        tune_cache=tune_cache,
                    ),
                )
            )

        try:
            for handle in self._handles:
                self._start_worker(handle)
            deadline = time.monotonic() + spawn_timeout_s
            for handle in self._handles:
                remaining = max(0.0, deadline - time.monotonic())
                if not handle.ready.wait(remaining):
                    raise ClusterError(
                        f"worker {handle.rank} did not become ready within "
                        f"{spawn_timeout_s}s"
                    )
                with self._lock:
                    handle.state = _UP
                    handle.last_seen = time.monotonic()
        except Exception as exc:
            self._teardown_processes()
            if isinstance(exc, ClusterError):
                # Spawning failed outright: callers that can fall back to
                # an in-process pool (see ``cluster_pool``) key off this.
                exc.degradable = True
                raise
            wrapped = ClusterError(f"cluster failed to start: {exc}")
            wrapped.degradable = True
            raise wrapped from exc

        self._supervisor = threading.Thread(
            target=self._supervise, name="cluster-supervisor", daemon=True
        )
        self._supervisor.start()

    # --- spawn / receive ----------------------------------------------------
    def _start_worker(self, handle: _WorkerHandle) -> None:
        """Spawn one worker process and its receiver thread."""
        import multiprocessing as mp

        ctx = mp.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, handle.config),
            name=f"cluster-worker-{handle.rank}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        handle.proc = proc
        handle.conn = parent_conn
        handle.ready.clear()
        handle.receiver = threading.Thread(
            target=self._receive,
            args=(handle,),
            name=f"cluster-recv-{handle.rank}",
            daemon=True,
        )
        handle.receiver.start()

    def _receive(self, handle: _WorkerHandle) -> None:
        conn = handle.conn
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                if not self._closing and handle.state in (_STARTING, _UP):
                    self._on_worker_lost(handle, reason="connection lost")
                return
            kind = message[0]
            if kind == "hb":
                handle.last_seen = time.monotonic()
                if message[1] == READY_SEQ:
                    handle.ready.set()
            elif kind in ("ok", "err"):
                self._on_completion(handle, kind, message[1], message[2])
            elif kind == "stats":
                handle.stats = message[1]
            elif kind == "bye":
                with self._lock:
                    if handle.state != _LOST:
                        handle.state = _STOPPED
                return

    def _on_completion(self, handle: _WorkerHandle, kind: str,
                       job_id: int, payload: bytes) -> None:
        with self._lock:
            job = handle.inflight.pop(job_id, None)
        if job is None:
            return  # redispatched elsewhere; stale completion
        try:
            value = pickle.loads(payload)
        except Exception as exc:  # noqa: BLE001 - never lose a future
            job.future._settle(exc=ClusterError(
                f"could not unpickle worker {handle.rank}'s result for "
                f"{job.future.label!r}: {exc}"
            ))
            return
        self._trace_count("completions")
        if kind == "ok":
            job.future._settle(result=value)
        else:
            job.future._settle(exc=value)

    # --- supervision --------------------------------------------------------
    def _supervise(self) -> None:
        interval = max(0.05, self._heartbeat_s / 2.0)
        while not self._closing:
            time.sleep(interval)
            now = time.monotonic()
            for handle in self._handles:
                if handle.state != _UP:
                    continue
                exitcode = handle.proc.exitcode
                if exitcode is not None:
                    self._on_worker_lost(
                        handle, reason=f"process exited with code {exitcode}"
                    )
                elif now - handle.last_seen > self._deadline_s:
                    self._on_worker_lost(
                        handle,
                        reason=(
                            f"heartbeat silent for more than "
                            f"{self._deadline_s}s"
                        ),
                        hb_timeout=True,
                    )

    def _on_worker_lost(self, handle: _WorkerHandle, *, reason: str,
                        hb_timeout: bool = False) -> None:
        """Quarantine a lost worker, redispatch its orphans, respawn it."""
        if self._closing:
            return  # clean shutdown in progress; exits are expected
        with self._lock:
            if handle.state not in (_STARTING, _UP):
                return  # already handled by the other observer
            handle.state = _LOST
            orphans = list(handle.inflight.values())
            handle.inflight.clear()
        last_seen_ago = time.monotonic() - handle.last_seen
        self.report.record(
            "workers_lost", f"worker {handle.rank}: {reason}"
        )
        if hb_timeout:
            self.report.record(
                "heartbeat_timeouts",
                f"worker {handle.rank}: last heartbeat "
                f"{last_seen_ago:.2f}s ago",
            )
        self._trace_count("workers_lost")
        self.health.quarantine(handle.rank, f"worker lost: {reason}")
        # The process is unreachable or wedged either way; reap it.
        try:
            handle.conn.close()
        except OSError:
            pass
        if handle.proc.is_alive():
            handle.proc.kill()

        def make_error() -> WorkerLost:
            if hb_timeout:
                return HeartbeatTimeout(
                    f"worker {handle.rank} lost: {reason}",
                    worker=handle.rank,
                    reason=reason,
                    jobs_lost=len(orphans),
                    deadline_s=self._deadline_s,
                    last_seen_s=round(last_seen_ago, 3),
                )
            return WorkerLost(
                f"worker {handle.rank} lost: {reason}",
                worker=handle.rank,
                reason=reason,
                jobs_lost=len(orphans),
            )

        if orphans:
            # One seeded backoff per loss event (not per job): gives a
            # crashing survivor a beat to be detected before we pile the
            # orphans onto it, deterministically under a fixed seed.
            time.sleep(self._rng.uniform(0.05, 0.15))
        for job in orphans:
            self._redispatch(job, make_error)
        if self._restart and not self._closing:
            with self._lock:
                handle.state = _RESPAWNING
            threading.Thread(
                target=self._respawn,
                args=(handle,),
                name=f"cluster-respawn-{handle.rank}",
                daemon=True,
            ).start()

    def _redispatch(self, job: _Job, make_error) -> None:
        future = job.future
        if future.done():
            return
        if future.pinned:
            # Pinned jobs touch worker-resident state; they cannot move.
            future._settle(exc=make_error())
            return
        if future.attempts > self._max_redispatch:
            future._settle(exc=ClusterError(
                f"job {future.label!r} lost {future.attempts} worker(s); "
                f"giving up after max_redispatch={self._max_redispatch}"
            ))
            return
        target = self._pick_worker(prefer_not=future.device.rank)
        if target is None:
            future._settle(exc=make_error())
            return
        self.report.record(
            "redispatches",
            f"{future.label!r}: worker {future.device.rank} -> "
            f"{target.rank}",
        )
        self._trace_count("redispatches")
        self._dispatch(target, job)

    def _respawn(self, handle: _WorkerHandle) -> None:
        """Start a replacement process; canary-probe before readmitting."""
        try:
            if self._closing:
                return
            self._start_worker(handle)
            if self._closing:
                return
            if not handle.ready.wait(self._spawn_timeout_s):
                raise ClusterError(
                    f"restarted worker {handle.rank} never became ready"
                )
            with self._lock:
                handle.state = _UP
                handle.last_seen = time.monotonic()
            probe = ClusterFuture(
                f"canary:worker{handle.rank}",
                self._proxy_for(handle.rank),
                pinned=True,
            )
            job = _Job(pickle.dumps({"kind": "canary"}), probe, None)
            self._dispatch(handle, job)
            probe.result(timeout=self._spawn_timeout_s)
        except Exception as exc:  # noqa: BLE001 - retire on any failure
            with self._lock:
                handle.state = _RETIRED
            self.health.retire(
                handle.rank,
                f"worker {handle.rank} restart failed: {exc}",
            )
            if handle.proc is not None and handle.proc.is_alive():
                handle.proc.kill()
            return
        self.health.mark_healthy(
            handle.rank,
            f"worker {handle.rank} restarted, canary passed",
        )
        self.report.record(
            "worker_restarts", f"worker {handle.rank} back in rotation"
        )
        self._trace_count("worker_restarts")

    def _proxy_for(self, rank: int) -> DeviceProxy:
        for proxy in self._proxies:
            if proxy.rank == rank:
                return proxy
        raise ClusterError(f"no devices belong to worker {rank}")

    # --- placement ----------------------------------------------------------
    def _active_handles(self) -> List[_WorkerHandle]:
        active = set(self.health.active_indices())
        return [
            h for h in self._handles
            if h.rank in active and h.state == _UP
        ]

    def _pick_worker(
        self, prefer_not: Optional[int] = None
    ) -> Optional[_WorkerHandle]:
        candidates = self._active_handles()
        if not candidates:
            return None
        others = [h for h in candidates if h.rank != prefer_not]
        pool = others or candidates
        with self._lock:
            handle = pool[self._rr % len(pool)]
            self._rr += 1
        return handle

    def _dispatch(self, handle: _WorkerHandle, job: _Job) -> None:
        job_id = next(_job_ids)
        job.future.attempts += 1
        # Rewrite the payload's pinned device and re-point the future's
        # proxy at the target worker so redispatches land correctly.
        spec = pickle.loads(job.payload)
        spec["device"] = job.local_device
        payload = pickle.dumps(spec)
        if job.future.device.rank != handle.rank:
            job.future.device = next(
                p for p in self._proxies if p.rank == handle.rank
            )
            job.future.track = f"worker:{handle.rank}"
        with self._lock:
            handle.inflight[job_id] = job
        self._trace_count("dispatches")
        if not handle.send(("job", job_id, payload)):
            # The pipe died under us; the loss path redispatches the
            # orphans it swept.  If the loss was handled *before* our
            # inflight insert, this job missed that sweep — pull it
            # back out and redispatch it ourselves.
            self._on_worker_lost(handle, reason="send failed")
            with self._lock:
                stranded = handle.inflight.pop(job_id, None)
            if stranded is not None:
                self._redispatch(
                    stranded,
                    lambda: WorkerLost(
                        f"worker {handle.rank} lost: send failed",
                        worker=handle.rank,
                        reason="send failed",
                        jobs_lost=1,
                    ),
                )

    # --- PoolProtocol surface -----------------------------------------------
    @property
    def devices(self) -> List[DeviceProxy]:
        """Super-device proxies on workers still eligible for placement."""
        active = set(self.health.active_indices())
        return [p for p in self._proxies if p.rank in active]

    def __len__(self) -> int:
        return len(self.devices)

    def distinct_specs(self) -> List[DeviceProxy]:
        """One representative active proxy per distinct device spec."""
        seen: Dict[DeviceSpec, DeviceProxy] = {}
        for proxy in self.devices:
            seen.setdefault(proxy.spec, proxy)
        return list(seen.values())

    def _resolve_device(self, device) -> Optional[DeviceProxy]:
        if device is None:
            return None
        if isinstance(device, DeviceProxy):
            proxy = device
        elif isinstance(device, int):
            active = self.devices
            if not 0 <= device < len(active):
                raise ClusterError(
                    f"device index {device} out of range for {len(active)} "
                    f"active super-device(s)"
                )
            proxy = active[device]
        else:
            raise ClusterError(
                f"device= must be a DeviceProxy or an index, got "
                f"{type(device).__name__}"
            )
        if proxy.rank not in set(self.health.active_indices()):
            raise ClusterError(
                f"super-device {proxy.ordinal} lives on worker "
                f"{proxy.rank}, which is "
                f"{self.health.state(proxy.rank)}"
            )
        return proxy

    def _check_args_portable(self, values, label: str) -> None:
        for value in values:
            if isinstance(value, DevicePointer):
                raise ClusterError(
                    f"job {label!r} carries a DevicePointer argument; "
                    f"device-resident memory cannot cross the process "
                    f"boundary — pass host data and allocate inside the "
                    f"job"
                )

    def _submit_payload(self, spec: dict, device,
                        label: str) -> ClusterFuture:
        if self._closed or self._closing:
            raise ClusterError(
                f"cannot submit {label!r}: the cluster pool is closed"
            )
        proxy = self._resolve_device(device)
        pinned = proxy is not None
        if proxy is None:
            handle = self._pick_worker()
            if handle is None:
                raise ClusterError(
                    f"cannot submit {label!r}: no workers are active"
                )
            proxy = self._proxy_for(handle.rank)
        else:
            handle = self._handles[proxy.rank]
            if handle.state != _UP:
                raise ClusterError(
                    f"cannot submit {label!r}: worker {proxy.rank} is "
                    f"{handle.state}"
                )
        try:
            payload = pickle.dumps(spec)
        except Exception as exc:  # noqa: BLE001 - any pickling failure
            raise ClusterError(
                f"job {label!r} is not picklable and cannot be shipped "
                f"to a worker process: {exc}"
            ) from exc
        future = ClusterFuture(label, proxy, pinned=pinned)
        job = _Job(
            payload, future,
            proxy.local_index if pinned else None,
        )
        self._dispatch(handle, job)
        return future

    def submit_call(
        self,
        fn: Callable,
        *,
        device=None,
        label: Optional[str] = None,
        shard: bool = False,
    ) -> ClusterFuture:
        """Run ``fn(device)`` in a worker process; return a future.

        ``fn`` must be picklable (a module-level function or a
        ``functools.partial`` over one) and self-contained: it gets the
        *worker-local* :class:`~repro.gpu.device.Device` and must
        allocate, compute and download there.  ``device=`` pins the job
        to one super-device (no redispatch on worker loss — pinned jobs
        fail with :class:`WorkerLost` instead).
        """
        name = label or getattr(fn, "__name__", None) or getattr(
            getattr(fn, "func", None), "__name__", "call"
        )
        if isinstance(fn, functools.partial):
            self._check_args_portable(
                list(fn.args) + list(fn.keywords.values()), name
            )
        spec = {
            "kind": "call",
            "fn": fn,
            "label": name,
            "shard": bool(shard),
        }
        return self._submit_payload(spec, device, name)

    def submit(
        self,
        kernel,
        config,
        *args,
        device=None,
        label: Optional[str] = None,
    ) -> ClusterFuture:
        """Launch ``kernel`` in a worker process; return a future.

        The kernel travels *by reference* — its ``(module, qualname)``
        pair — because decorator wrapper objects do not pickle; the
        worker re-imports it.  Arguments must be host values (NumPy
        arrays, scalars); :class:`DevicePointer`\\ s are rejected because
        the memory they name lives in a different process.
        """
        name = label or getattr(
            getattr(kernel, "fn", None) or kernel, "__name__", "kernel"
        )
        self._check_args_portable(args, name)
        module = getattr(kernel, "__module__", None)
        qualname = getattr(kernel, "__qualname__", None)
        if not module or not qualname:
            raise ClusterError(
                f"kernel {name!r} has no importable (module, qualname) "
                f"identity; cluster submission ships kernels by reference"
            )
        spec = {
            "kind": "kernel",
            "module": module,
            "qualname": qualname,
            "config": config,
            "args": tuple(args),
            "label": name,
        }
        return self._submit_payload(spec, device, name)

    def synchronize(self) -> None:
        """Fence every active worker: returns once queued work is done."""
        fences = []
        for proxy in self.devices:
            try:
                fences.append(
                    self.submit_call(_fence, device=proxy, label="fence")
                )
            except ClusterError:
                continue  # the worker died between enumeration and submit
        for fence in fences:
            # A fence lost to a dying worker is not a failure of the
            # caller's work; surviving workers were still fenced.
            try:
                fence.result(timeout=self._spawn_timeout_s)
            except ClusterError:
                pass

    # --- collectives (see actions.py for the action types) ------------------
    def scatter(self, action) -> List[ClusterFuture]:
        """Run one copy of ``action`` on every active worker.

        Each copy gets ``rank``/``size`` stamped (armi's ``mpiActions``
        shape) and runs pinned to its worker — a scatter participant
        holds rank-specific state, so it fails with :class:`WorkerLost`
        rather than silently running twice elsewhere.
        """
        from .actions import ClusterAction

        if not isinstance(action, ClusterAction):
            raise ClusterError(
                f"scatter() needs a ClusterAction, got "
                f"{type(action).__name__}"
            )
        handles = self._active_handles()
        if not handles:
            raise ClusterError("cannot scatter: no workers are active")
        futures = []
        size = len(handles)
        for position, handle in enumerate(handles):
            copy = action._with_rank(position, size)
            futures.append(
                self._submit_payload(
                    {
                        "kind": "action",
                        "action": copy,
                        "label": f"{type(action).__name__}:r{position}",
                    },
                    self._proxy_for(handle.rank),
                    f"{type(action).__name__}:r{position}",
                )
            )
        return futures

    def broadcast(self, value, *, key: str = "broadcast") -> List:
        """Park ``value`` in every active worker's context store."""
        from .actions import _StoreAction

        return self.gather(self.scatter(_StoreAction(key, value)))

    def all_reduce(self, action, op: str = "sum"):
        """Scatter ``action``, reduce the gathered results, broadcast back.

        Failure-aware: participants that die mid-collective surface as
        :class:`WorkerLost` from the gather (the collective fails as a
        unit rather than silently reducing over a partial set).
        """
        reducers = {
            "sum": lambda values: functools.reduce(
                lambda a, b: a + b, values
            ),
            "min": min,
            "max": max,
        }
        if op not in reducers:
            raise ClusterError(
                f"unknown all_reduce op {op!r}; use one of "
                f"{sorted(reducers)}"
            )
        values = self.gather(self.scatter(action))
        reduced = reducers[op](values)
        self.broadcast(reduced, key=f"all_reduce:{op}")
        return reduced

    @staticmethod
    def gather(futures: Sequence[ClusterFuture],
               timeout: Optional[float] = None) -> List:
        """Wait on all futures; re-raise the first failure in order."""
        from ..sched import gather as _gather

        return _gather(futures, timeout)

    # --- lifecycle ----------------------------------------------------------
    def close(self, *, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop every worker; drain in-flight work unless ``drain=False``.

        With ``drain=False`` workers cancel their queued jobs (those
        futures resolve to :class:`CancelledError`).  Workers that fail
        to exit within ``timeout`` are killed with a
        :class:`RuntimeWarning`; any still-unresolved future is failed
        with a :class:`ClusterError` so no caller blocks forever.
        """
        if self._closed:
            return
        self._closing = True
        stopped = []
        for handle in self._handles:
            if handle.state == _UP and handle.send(("stop", drain)):
                stopped.append(handle)
        deadline = time.monotonic() + timeout
        for handle in stopped:
            if handle.receiver is None:
                continue
            handle.receiver.join(max(0.0, deadline - time.monotonic()))
        for handle in stopped:
            if handle.proc is None:
                continue
            handle.proc.join(max(0.0, deadline - time.monotonic()))
            if handle.proc.is_alive():
                warnings.warn(
                    f"cluster worker {handle.rank} did not exit within "
                    f"{timeout}s; killing it",
                    RuntimeWarning,
                    stacklevel=2,
                )
                handle.proc.kill()
                handle.proc.join(1.0)
        self._teardown_processes()
        unresolved = [
            job for handle in self._handles
            for job in handle.inflight.values()
            if not job.future.done()
        ]
        for job in unresolved:
            job.future._settle(exc=ClusterError(
                f"job {job.future.label!r} was still in flight when the "
                f"cluster pool closed"
            ))
        self._closed = True

    def _teardown_processes(self) -> None:
        for handle in self._handles:
            if handle.conn is not None:
                try:
                    handle.conn.close()
                except OSError:
                    pass
            if handle.proc is not None and handle.proc.is_alive():
                handle.proc.kill()
                handle.proc.join(1.0)

    def __enter__(self) -> "ClusterPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close(drain=exc_type is None)
        return False

    def worker_stats(self) -> List[dict]:
        """Final per-worker counters (populated as workers stop)."""
        return [
            dict(handle.stats) for handle in self._handles
            if handle.stats is not None
        ]

    def _trace_count(self, name: str) -> None:
        tracer = get_tracer()
        if tracer is not None:
            tracer.counter(f"cluster_{name}", delta=1.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        states = self.health.snapshot()
        return (
            f"<ClusterPool {len(self._handles)} worker(s), "
            f"{len(self._proxies)} super-device(s), health={states}>"
        )
