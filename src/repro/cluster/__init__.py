"""``repro.cluster`` — process-isolated workers with supervision.

The last execution tier from the ROADMAP: where :mod:`repro.sched`
stops at one process / N simulated devices (every NumPy kernel fighting
the same GIL, one hung interpreter taking the whole "machine" down),
:class:`ClusterPool` shards work across spawned worker OS processes,
each hosting its own slice of a :class:`~repro.sched.DevicePool` —
behind the same :class:`~repro.sched.PoolProtocol`, so ``repro.serve``,
``repro.resilience`` and ``repro.tune`` compose with it unchanged.

- :class:`ClusterPool` / :class:`ClusterFuture` / :class:`DeviceProxy` —
  the supervised multi-process pool (heartbeats, quarantined
  super-devices, redispatch, canary-probed restarts).
- :class:`ClusterAction` — armi-style picklable scatter/gather units;
  ``pool.scatter`` / ``pool.broadcast`` / ``pool.all_reduce`` are the
  failure-aware collectives over them.
- :func:`cluster_pool` — the graceful-degradation factory the CLI uses:
  falls back to an in-process :class:`~repro.sched.DevicePool` (with a
  :class:`RuntimeWarning` and a ``degraded`` recovery event) when no
  worker can be spawned at all.
"""

from __future__ import annotations

import warnings
from typing import Optional

from ..errors import ClusterError
from ..resilience.report import RecoveryReport
from .actions import ClusterAction
from .pool import CLUSTER_KINDS, ClusterFuture, ClusterPool, DeviceProxy
from .worker import WorkerConfig, WorkerContext

__all__ = [
    "CLUSTER_KINDS",
    "ClusterAction",
    "ClusterFuture",
    "ClusterPool",
    "DeviceProxy",
    "WorkerConfig",
    "WorkerContext",
    "cluster_pool",
]


def cluster_pool(
    workers: int,
    *,
    report: Optional[RecoveryReport] = None,
    **kwargs,
):
    """A :class:`ClusterPool`, or an in-process fallback if spawning fails.

    Graceful degradation: when no worker process can be spawned at all
    (sandboxed environment, fork/spawn restrictions), warn, record a
    ``degraded`` recovery event, and return a plain
    :class:`~repro.sched.DevicePool` with the same super-device count —
    the run still completes, bit-identical, just without process
    isolation.  Misuse errors (bad arguments) are *not* degradable and
    re-raise.

    ``plan=`` is honoured on the fallback too: the parent binds it over
    the in-process pool devices exactly like ``--devices N`` does.
    """
    report = report or RecoveryReport()
    report.ensure_kinds(CLUSTER_KINDS)
    try:
        return ClusterPool(workers, report=report, **kwargs)
    except ClusterError as exc:
        if not getattr(exc, "degradable", False):
            raise
        warnings.warn(
            f"cluster degraded to the in-process pool: {exc}",
            RuntimeWarning,
            stacklevel=2,
        )
        report.record("degraded", str(exc))
        from ..sched import DevicePool

        devices = max(1, workers * int(kwargs.get("devices_per_worker", 1)))
        specs = kwargs.get("specs")
        pool = (
            DevicePool(specs=list(specs)) if specs else DevicePool(devices)
        )
        plan = kwargs.get("plan")
        if plan is not None:
            from ..faults import FaultPlan

            if isinstance(plan, str):
                plan = FaultPlan.parse(plan)
            plan.bind_devices(
                {i: d.ordinal for i, d in enumerate(pool.devices)}
            )
        return pool
