"""The CUDA -> ompx renaming tables.

The paper's central usability claim is that its extensions reduce porting
"to text replacement" (§1, §6).  These tables *are* that claim, written
down: one row per CUDA construct, giving the ompx spelling and — where
CUDA's argument order differs from the ompx APIs (mask-last instead of
mask-first) — the argument permutation.

Two table families:

* ``DSL_*`` — for kernels written in this library's Python DSL
  (``t.threadIdx.x`` style), consumed by the AST transformer.
* ``C_*`` — for actual CUDA C/C++ source text, consumed by the regex
  translator (the §6 future-work code-rewriting tool).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

__all__ = [
    "DSL_INDEX_ATTRS",
    "DSL_PROPERTY_RENAMES",
    "DSL_METHOD_RENAMES",
    "DSL_METHOD_ARG_PERMUTATIONS",
    "C_SIMPLE_TOKENS",
    "C_FUNCTION_RENAMES",
    "C_FUNCTION_ARG_PERMUTATIONS",
    "C_HOST_RENAMES",
]

# --- Python DSL rules --------------------------------------------------------

#: ``t.<cuda_builtin>.<dim>``  ->  ``t.<ompx_method>_<dim>()``
DSL_INDEX_ATTRS: Dict[str, str] = {
    "threadIdx": "thread_id",
    "blockIdx": "block_id",
    "blockDim": "block_dim",
    "gridDim": "grid_dim",
}

#: ``t.<cuda_method>(...)`` -> ``t.<ompx_method>(...)`` (same arg order).
DSL_METHOD_RENAMES: Dict[str, str] = {
    "syncthreads": "sync_thread_block",
    "shared": "groupprivate",
    "extern_shared": "dynamic_groupprivate",
    "atomicAdd": "atomic_add",
    "atomicSub": "atomic_sub",
    "atomicMax": "atomic_max",
    "atomicMin": "atomic_min",
    "atomicExch": "atomic_exchange",
    "atomicCAS": "atomic_cas",
    "atomicAnd": "atomic_and",
    "atomicOr": "atomic_or",
    "atomicXor": "atomic_xor",
    # identical spellings, listed so the translator knows they are legal:
    "array": "array",
}

#: ``t.<cuda_property>`` -> ``t.<ompx_method>()`` (properties to calls).
DSL_PROPERTY_RENAMES: Dict[str, str] = {
    "warpSize": "warp_size",
    "laneid": "lane_id",
    "global_thread_id": "global_thread_id_x",
}

#: CUDA warp primitives take the mask FIRST; ompx takes it LAST (optional).
#: Value = (ompx name, permutation of CUDA arg indices for the ompx call).
DSL_METHOD_ARG_PERMUTATIONS: Dict[str, Tuple[str, Sequence[int]]] = {
    "shfl_sync": ("shfl_sync", (1, 2, 0)),
    "shfl_up_sync": ("shfl_up_sync", (1, 2, 0)),
    "shfl_down_sync": ("shfl_down_sync", (1, 2, 0)),
    "shfl_xor_sync": ("shfl_xor_sync", (1, 2, 0)),
    "ballot_sync": ("ballot_sync", (1, 0)),
    "any_sync": ("any_sync", (1, 0)),
    "all_sync": ("all_sync", (1, 0)),
    "match_any_sync": ("match_any_sync", (1, 0)),
    "match_all_sync": ("match_all_sync", (1, 0)),
    "syncwarp": ("sync_warp", (0,)),
}

# --- CUDA C source rules ---------------------------------------------------------

#: Straight token replacements in device code.
C_SIMPLE_TOKENS: Dict[str, str] = {
    "threadIdx.x": "ompx_thread_id_x()",
    "threadIdx.y": "ompx_thread_id_y()",
    "threadIdx.z": "ompx_thread_id_z()",
    "blockIdx.x": "ompx_block_id_x()",
    "blockIdx.y": "ompx_block_id_y()",
    "blockIdx.z": "ompx_block_id_z()",
    "blockDim.x": "ompx_block_dim_x()",
    "blockDim.y": "ompx_block_dim_y()",
    "blockDim.z": "ompx_block_dim_z()",
    "gridDim.x": "ompx_grid_dim_x()",
    "gridDim.y": "ompx_grid_dim_y()",
    "gridDim.z": "ompx_grid_dim_z()",
    "__syncthreads()": "ompx_sync_thread_block()",
    "warpSize": "ompx_warp_size()",
    # Memcpy direction constants keep a portable spelling (the ompx host
    # API can also infer direction, but rewritten code stays explicit).
    "cudaMemcpyHostToDevice": "OMPX_MEMCPY_HOST_TO_DEVICE",
    "cudaMemcpyDeviceToHost": "OMPX_MEMCPY_DEVICE_TO_HOST",
    "cudaMemcpyDeviceToDevice": "OMPX_MEMCPY_DEVICE_TO_DEVICE",
}

#: Device function renames (same argument order).
C_FUNCTION_RENAMES: Dict[str, str] = {
    "atomicAdd": "ompx_atomic_add",
    "atomicSub": "ompx_atomic_sub",
    "atomicMax": "ompx_atomic_max",
    "atomicMin": "ompx_atomic_min",
    "atomicExch": "ompx_atomic_exchange",
    "atomicCAS": "ompx_atomic_cas",
}

#: Warp primitives with the mask moved from first to last argument.
C_FUNCTION_ARG_PERMUTATIONS: Dict[str, Tuple[str, Sequence[int]]] = {
    "__shfl_sync": ("ompx_shfl_sync", (1, 2, 0)),
    "__shfl_up_sync": ("ompx_shfl_up_sync", (1, 2, 0)),
    "__shfl_down_sync": ("ompx_shfl_down_sync", (1, 2, 0)),
    "__shfl_xor_sync": ("ompx_shfl_xor_sync", (1, 2, 0)),
    "__ballot_sync": ("ompx_ballot_sync", (1, 0)),
    "__any_sync": ("ompx_any_sync", (1, 0)),
    "__all_sync": ("ompx_all_sync", (1, 0)),
    "__match_any_sync": ("ompx_match_any_sync", (1, 0)),
    "__match_all_sync": ("ompx_match_all_sync", (1, 0)),
    "__syncwarp": ("ompx_sync_warp", (0,)),
}

#: Host API renames (§3.4): cudaX -> ompx_x.
C_HOST_RENAMES: Dict[str, str] = {
    "cudaMalloc": "ompx_malloc",
    "cudaFree": "ompx_free",
    "cudaMemcpy": "ompx_memcpy",
    "cudaMemset": "ompx_memset",
    "cudaMemcpyToSymbol": "ompx_memcpy_to_symbol",
    "cudaMemcpyFromSymbol": "ompx_memcpy_from_symbol",
    "cudaDeviceSynchronize": "ompx_device_synchronize",
    "cudaStreamCreate": "ompx_stream_create",
    "cudaStreamSynchronize": "ompx_stream_synchronize",
    "cudaOccupancyMaxActiveBlocksPerMultiprocessor": "ompx_occupancy_max_active_blocks",
}
