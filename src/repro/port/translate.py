"""The CUDA -> ompx translators.

Two front ends over the rule tables in :mod:`repro.port.rules`:

* :func:`port_kernel` — takes a ``@cuda.kernel`` Python-DSL function,
  rewrites its AST (attribute idioms, method renames, warp-primitive
  argument reordering), and returns a runnable
  :class:`~repro.ompx.bare.BareKernel`.  The round trip "write CUDA, port
  mechanically, run under ompx, same bits" is the testable form of the
  paper's text-replacement claim.
* :func:`port_c_source` — takes CUDA C/C++ source *text* and produces
  OpenMP-with-ompx-extensions source text: ``__global__`` kernels become
  functions launched by ``#pragma omp target teams ompx_bare``, chevron
  launches become the pragma + plain call, ``__shared__`` declarations
  grow a ``groupprivate`` pragma, and device/host API calls are renamed.
  This is the §6 future-work "code rewriting tool" in miniature.
"""

from __future__ import annotations

import ast
import inspect
import re
import textwrap
from typing import Callable, Dict, Optional

from ..errors import PortError
from ..ompx.bare import BareKernel
from .rules import (
    C_FUNCTION_ARG_PERMUTATIONS,
    C_FUNCTION_RENAMES,
    C_HOST_RENAMES,
    C_SIMPLE_TOKENS,
    DSL_INDEX_ATTRS,
    DSL_METHOD_ARG_PERMUTATIONS,
    DSL_METHOD_RENAMES,
    DSL_PROPERTY_RENAMES,
)

__all__ = ["port_kernel", "port_kernel_source", "port_c_source"]


class _DslTransformer(ast.NodeTransformer):
    """Rewrites CUDA-DSL façade usage into ompx-DSL façade usage."""

    def __init__(self, facade_name: str) -> None:
        self.facade = facade_name
        self.rewrites = 0

    def _is_facade(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and node.id == self.facade

    # ``t.threadIdx.x`` -> ``t.thread_id_x()``
    def visit_Attribute(self, node: ast.Attribute) -> ast.expr:  # noqa: N802
        self.generic_visit(node)
        inner = node.value
        if (
            isinstance(inner, ast.Attribute)
            and self._is_facade(inner.value)
            and inner.attr in DSL_INDEX_ATTRS
            and node.attr in ("x", "y", "z")
        ):
            self.rewrites += 1
            return ast.Call(
                func=ast.Attribute(
                    value=ast.Name(id=self.facade, ctx=ast.Load()),
                    attr=f"{DSL_INDEX_ATTRS[inner.attr]}_{node.attr}",
                    ctx=ast.Load(),
                ),
                args=[],
                keywords=[],
            )
        # ``t.warpSize`` / ``t.laneid`` -> ``t.warp_size()`` / ``t.lane_id()``
        if self._is_facade(node.value) and node.attr in DSL_PROPERTY_RENAMES:
            self.rewrites += 1
            return ast.Call(
                func=ast.Attribute(
                    value=ast.Name(id=self.facade, ctx=ast.Load()),
                    attr=DSL_PROPERTY_RENAMES[node.attr],
                    ctx=ast.Load(),
                ),
                args=[],
                keywords=[],
            )
        return node

    # ``t.syncthreads()`` / ``t.shfl_down_sync(mask, v, d)``
    def visit_Call(self, node: ast.Call) -> ast.expr:  # noqa: N802
        self.generic_visit(node)
        fn = node.func
        if not (isinstance(fn, ast.Attribute) and self._is_facade(fn.value)):
            return node
        name = fn.attr
        if name in DSL_METHOD_ARG_PERMUTATIONS:
            new_name, perm = DSL_METHOD_ARG_PERMUTATIONS[name]
            if node.keywords:
                raise PortError(
                    f"cannot reorder keyword arguments of {name}(); use "
                    f"positional arguments in the CUDA kernel"
                )
            if len(node.args) < len(perm):
                # Fewer args than the canonical CUDA form (e.g. syncwarp()
                # without a mask): keep them in place.
                fn.attr = new_name
                self.rewrites += 1
                return node
            node.args = [node.args[i] for i in perm]
            fn.attr = new_name
            self.rewrites += 1
            return node
        if name in DSL_METHOD_RENAMES:
            fn.attr = DSL_METHOD_RENAMES[name]
            self.rewrites += 1
            return node
        return node


def port_kernel_source(fn: Callable) -> str:
    """Return the ompx-DSL source text of a ported CUDA-DSL kernel."""
    raw = getattr(fn, "fn", fn)
    try:
        source = textwrap.dedent(inspect.getsource(raw))
    except (OSError, TypeError) as exc:
        raise PortError(f"cannot read source of {raw!r}") from exc
    tree = ast.parse(source)
    func_def = next(
        (n for n in tree.body if isinstance(n, ast.FunctionDef)), None
    )
    if func_def is None:
        raise PortError(f"no function definition found in source of {raw!r}")
    if not func_def.args.args:
        raise PortError("a kernel needs at least the façade parameter")
    facade = func_def.args.args[0].arg
    func_def.decorator_list = []  # the caller re-decorates as bare_kernel
    transformer = _DslTransformer(facade)
    transformer.visit(tree)
    ast.fix_missing_locations(tree)
    return ast.unparse(tree)


def port_kernel(fn: Callable, *, sync_free: Optional[bool] = None) -> BareKernel:
    """Mechanically port a CUDA-DSL kernel to a runnable ompx bare kernel.

    The ported function executes in a namespace seeded with the original
    kernel's globals, so device functions and constants keep resolving.
    ``sync_free`` defaults to the original kernel's declaration.
    """
    raw = getattr(fn, "fn", fn)
    source = port_kernel_source(fn)
    namespace: Dict[str, object] = dict(getattr(raw, "__globals__", {}))
    exec(compile(source, f"<ported {raw.__name__}>", "exec"), namespace)
    ported = namespace[raw.__name__]
    if sync_free is None:
        sync_free = bool(getattr(fn, "sync_free", False))
    return BareKernel(ported, sync_free=sync_free)


# --- CUDA C source translation -------------------------------------------------

_CHEVRON = re.compile(
    r"(?P<name>\w+)\s*<<<\s*(?P<grid>[^,>]+)\s*,\s*(?P<block>[^,>]+)"
    r"(?:\s*,\s*(?P<shmem>[^,>]+))?(?:\s*,\s*(?P<stream>[^>]+))?\s*>>>"
    r"\s*\((?P<args>[^;]*)\)\s*;"
)
_GLOBAL_FN = re.compile(r"__global__\s+void\s+(?P<name>\w+)")
_SHARED_DECL = re.compile(
    r"__shared__\s+(?P<decl>[\w:<>]+\s+(?P<name>\w+)\s*(?:\[[^\]]*\])*)\s*;"
)
_CONSTANT_DECL = re.compile(
    r"__constant__\s+(?P<decl>[\w:<>]+\s+(?P<name>\w+)\s*(?:\[[^\]]*\])*)\s*;"
)
_DEVICE_KW = re.compile(r"__device__\s+")
_DIM3_DECL = re.compile(
    r"dim3\s+(?P<name>\w+)\s*\((?P<args>[^;]*)\)\s*;"
)


def _rename_call(source: str, old: str, new: str) -> str:
    return re.sub(rf"\b{re.escape(old)}\s*\(", f"{new}(", source)


def _permute_call_args(source: str, old: str, new: str, perm) -> str:
    """Rename a call and permute its (top-level) argument list."""
    pattern = re.compile(rf"\b{re.escape(old)}\s*\(")

    def split_args(argtext: str):
        args, depth, cur = [], 0, []
        for ch in argtext:
            if ch == "," and depth == 0:
                args.append("".join(cur).strip())
                cur = []
                continue
            if ch in "([{":
                depth += 1
            elif ch in ")]}":
                depth -= 1
            cur.append(ch)
        tail = "".join(cur).strip()
        if tail:
            args.append(tail)
        return args

    out = []
    pos = 0
    while True:
        match = pattern.search(source, pos)
        if match is None:
            out.append(source[pos:])
            break
        out.append(source[pos : match.start()])
        # Find the matching close paren.
        depth = 1
        i = match.end()
        while i < len(source) and depth:
            if source[i] == "(":
                depth += 1
            elif source[i] == ")":
                depth -= 1
            i += 1
        if depth:
            raise PortError(f"unbalanced parentheses in call to {old}")
        args = split_args(source[match.end() : i - 1])
        if len(args) >= len(perm):
            args = [args[j] for j in perm] + args[len(perm):]
        out.append(f"{new}({', '.join(args)})")
        pos = i
    return "".join(out)


def port_c_source(source: str) -> str:
    """Translate CUDA C/C++ source text into OpenMP + ompx source text.

    Handles the constructs the paper's §2 walks through: kernel
    definitions, chevron launches, ``__shared__``, ``__device__``, thread
    indexing, synchronization, warp primitives, and the host API.
    Constructs outside the rule tables pass through unchanged (the tool is
    a rewriter, not a compiler).
    """
    if not isinstance(source, str):
        raise PortError(f"port_c_source takes source text, got {type(source).__name__}")
    text = source

    # Chevron launches -> ompx_bare pragma + plain call.  Done first, while
    # the <<<...>>> syntax is still present.
    def launch(match: re.Match) -> str:
        grid = match.group("grid").strip()
        block = match.group("block").strip()
        clauses = f"num_teams({grid}) thread_limit({block})"
        stream = (match.group("stream") or "").strip()
        depend = ""
        if stream:
            depend = f" nowait depend(interopobj: {stream})"
        return (
            f"#pragma omp target teams ompx_bare {clauses}{depend}\n"
            f"{match.group('name')}({match.group('args').strip()});"
        )

    text = _CHEVRON.sub(launch, text)

    # Kernel definitions: drop __global__, keep the function.
    text = _GLOBAL_FN.sub(lambda m: f"void {m.group('name')}", text)
    # Device functions need no annotation under OpenMP (§2.2).
    text = _DEVICE_KW.sub("", text)

    # __shared__ -> declaration + groupprivate pragma (§2.5 footnote).
    def shared(match: re.Match) -> str:
        return (
            f"{match.group('decl')};\n"
            f"#pragma omp groupprivate(team: {match.group('name')})"
        )

    text = _SHARED_DECL.sub(shared, text)

    # __constant__ -> a declare-target symbol initialized from the host
    # (ompx_memcpy_to_symbol); the declaration itself just loses the keyword.
    def constant(match: re.Match) -> str:
        return (
            f"{match.group('decl')};\n"
            f"#pragma omp declare target to({match.group('name')}) "
            f"// constant memory: initialize with ompx_memcpy_to_symbol"
        )

    text = _CONSTANT_DECL.sub(constant, text)

    # dim3 launch-geometry declarations keep their values as int triples;
    # the chevron rewrite above already placed the names into
    # num_teams(...)/thread_limit(...), which accept the §3.2 lists.
    def dim3_decl(match: re.Match) -> str:
        return f"int {match.group('name')}[] = {{{match.group('args').strip()}}};"

    text = _DIM3_DECL.sub(dim3_decl, text)

    # Warp primitives (mask moves last), then plain renames.
    for old, (new, perm) in C_FUNCTION_ARG_PERMUTATIONS.items():
        text = _permute_call_args(text, old, new, perm)
    for old, new in C_FUNCTION_RENAMES.items():
        text = _rename_call(text, old, new)
    for old, new in C_HOST_RENAMES.items():
        text = _rename_call(text, old, new)

    # Simple token substitutions last (they appear inside expressions).
    for old, new in C_SIMPLE_TOKENS.items():
        text = text.replace(old, new)

    return text
