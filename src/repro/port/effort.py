"""Quantifying the porting effort — the paper's headline usability claim.

The abstract promises "seamless porting ... with minimal modifications"
and §1 says porting often reduces "to text replacement".  This module
turns that into a measurement with a precise definition:

* **changed lines** — source lines that differ between a CUDA kernel and
  its ompx port (after canonicalization);
* **mechanical lines** — changed lines that the *automated* rule-table
  port (:func:`repro.port.port_kernel_source`) produces verbatim.  A port
  is "text replacement" exactly when every change is mechanical — the
  rewriter alone recreates the hand-written ompx kernel.

Canonicalization renames the façade parameter (CUDA kernels say ``t``,
ompx kernels say ``x`` by convention — a pure naming choice) and
re-serializes through ``ast.unparse`` so formatting differences vanish.

The evaluation harness reports these numbers for all six applications —
the reproduction's version of the paper's implicit porting-effort story.
"""

from __future__ import annotations

import ast
import difflib
import inspect
import textwrap
from dataclasses import dataclass
from typing import Callable, List

from ..errors import PortError
from .translate import port_kernel_source

__all__ = ["PortEffort", "measure_port_effort"]

_FACADE_PLACEHOLDER = "_thread"
_NAME_PLACEHOLDER = "_kernel"


@dataclass(frozen=True)
class PortEffort:
    """How far apart a CUDA kernel and its ompx port are, textually."""

    kernel_name: str
    total_lines: int
    changed_lines: int
    #: Changed lines the automated rule-table port reproduces exactly.
    mechanical_lines: int

    @property
    def changed_fraction(self) -> float:
        """Share of source lines the port touched at all."""
        return self.changed_lines / max(self.total_lines, 1)

    @property
    def mechanical_fraction(self) -> float:
        """Share of the *changed* lines that are pure spelling swaps."""
        if self.changed_lines == 0:
            return 1.0
        return self.mechanical_lines / self.changed_lines

    @property
    def is_text_replacement(self) -> bool:
        """The paper's claim, as a predicate: every change is mechanical."""
        return self.mechanical_lines == self.changed_lines


class _Canonicalizer(ast.NodeTransformer):
    """Rename the façade parameter and the function itself."""

    def __init__(self, facade: str) -> None:
        self.facade = facade

    def visit_FunctionDef(self, node: ast.FunctionDef):  # noqa: N802
        """Normalize the name, drop decorators and the docstring, recurse."""
        node.name = _NAME_PLACEHOLDER
        node.decorator_list = []
        if node.args.args:
            node.args.args[0].arg = _FACADE_PLACEHOLDER
        if (
            node.body
            and isinstance(node.body[0], ast.Expr)
            and isinstance(node.body[0].value, ast.Constant)
            and isinstance(node.body[0].value.value, str)
        ):
            node.body = node.body[1:] or [ast.Pass()]
        self.generic_visit(node)
        return node

    def visit_Name(self, node: ast.Name):  # noqa: N802
        """Rewrite references to the façade parameter."""
        if node.id == self.facade:
            node.id = _FACADE_PLACEHOLDER
        return node


def _canonical_lines(source: str) -> List[str]:
    tree = ast.parse(source)
    func = next((n for n in tree.body if isinstance(n, ast.FunctionDef)), None)
    if func is None:
        raise PortError("no function definition found in kernel source")
    if not func.args.args:
        raise PortError("a kernel needs at least the façade parameter")
    facade = func.args.args[0].arg
    _Canonicalizer(facade).visit(tree)
    ast.fix_missing_locations(tree)
    return ast.unparse(tree).splitlines()


def _kernel_source(fn: Callable) -> str:
    raw = getattr(fn, "fn", fn)
    try:
        return textwrap.dedent(inspect.getsource(raw))
    except (OSError, TypeError) as exc:
        raise PortError(f"cannot read source of {raw!r}") from exc


def _diff_line_count(a: List[str], b: List[str]) -> int:
    matcher = difflib.SequenceMatcher(a=a, b=b, autojunk=False)
    changed = 0
    for tag, a0, a1, b0, b1 in matcher.get_opcodes():
        if tag != "equal":
            changed += max(a1 - a0, b1 - b0)
    return changed


def measure_port_effort(cuda_kernel: Callable, ompx_kernel: Callable) -> PortEffort:
    """Measure the textual distance between a kernel and its ompx port.

    ``changed_lines`` is the line diff between the canonicalized sources;
    ``mechanical_lines`` credits every change the automated port also
    makes, i.e. ``changed - diff(auto_port, hand_port)``.
    """
    cuda_lines = _canonical_lines(_kernel_source(cuda_kernel))
    ompx_lines = _canonical_lines(_kernel_source(ompx_kernel))
    ported_lines = _canonical_lines(port_kernel_source(cuda_kernel))

    changed = _diff_line_count(cuda_lines, ompx_lines)
    residual = _diff_line_count(ported_lines, ompx_lines)
    name = getattr(getattr(cuda_kernel, "fn", cuda_kernel), "__name__", "<kernel>")
    return PortEffort(
        kernel_name=name,
        total_lines=max(len(cuda_lines), len(ompx_lines)),
        changed_lines=changed,
        mechanical_lines=max(0, changed - residual),
    )
