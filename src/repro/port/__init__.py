"""CUDA -> ompx porting tools.

The paper claims porting "often reduces to text replacement" (§1) and
names code-rewriting tooling as future work (§6).  This package makes the
claim executable: :func:`port_kernel` mechanically rewrites a CUDA-DSL
kernel into a runnable ompx bare kernel, and :func:`port_c_source`
rewrites CUDA C/C++ source text into OpenMP-with-ompx source text.
"""

from .rules import (
    C_FUNCTION_ARG_PERMUTATIONS,
    C_FUNCTION_RENAMES,
    C_HOST_RENAMES,
    C_SIMPLE_TOKENS,
    DSL_INDEX_ATTRS,
    DSL_METHOD_ARG_PERMUTATIONS,
    DSL_METHOD_RENAMES,
)
from .effort import PortEffort, measure_port_effort
from .translate import port_c_source, port_kernel, port_kernel_source

__all__ = [
    "C_FUNCTION_ARG_PERMUTATIONS",
    "C_FUNCTION_RENAMES",
    "C_HOST_RENAMES",
    "C_SIMPLE_TOKENS",
    "DSL_INDEX_ATTRS",
    "DSL_METHOD_ARG_PERMUTATIONS",
    "DSL_METHOD_RENAMES",
    "port_c_source",
    "port_kernel",
    "port_kernel_source",
    "PortEffort",
    "measure_port_effort",
]
