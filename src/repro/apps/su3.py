"""SU3: lattice QCD SU(3) matrix-matrix multiply (§4.2.3, Figures 8c/8i).

Command line (Figure 6): ``-i 1000 -l 32 -t 128 -v 3 -w 1`` — 1000 timed
iterations over a 32^4 lattice (1 048 576 sites) with 128-thread blocks,
verification level 3, one warmup.  Derived from the MILC lattice-QCD code
(the paper's ref [3]): for each site and each of the four link directions,
``C[site][dir] = A[site][dir] x B[dir]`` with 3x3 complex matrices.

Paper results — the profiling-richest case:

* A100: ompx ~9% *slower* than Clang CUDA; the CUDA build uses 24
  registers vs the prototype's 26, and the prototype's device binary is
  29 KB vs 3.9 KB because inlined device functions are retained.
* MI250: ompx 28% *faster* than HIP — the AMDGPU backend spills this
  temporary-heavy kernel to scratch; the prototype's pipeline does not.
* Both: ompx consistently beats classic ``omp`` (whose collapsed
  worksharing loop re-reads A instead of register-tiling the site).
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

import numpy as np

from .. import cuda, ompx
from ..errors import AppError
from ..gpu.device import Device
from ..openmp import target_teams_distribute_parallel_for
from ..openmp.codegen import RegionTraits
from ..perf.roofline import Footprint
from .common import BenchmarkApp, FunctionalResult, VersionLabel, checksum

__all__ = ["SU3", "su3_cuda_kernel", "su3_ompx_kernel"]

_DIRS = 4


def complex_mul_add(acc: complex, a: complex, b: complex) -> complex:
    """``acc += a * b`` for one complex pair — MILC's CMULSUM macro."""
    return acc + a * b


def su3_matmul_site(a_site: np.ndarray, b_dir: np.ndarray, c_site: np.ndarray) -> None:
    """C = A x B for one site/direction pair of 3x3 complex matrices.

    The explicit triple loop with a scalar accumulator mirrors the MILC
    kernel; the accumulators are the temporaries that spill on AMD.
    """
    for row in range(3):
        for col in range(3):
            acc = 0.0 + 0.0j
            for k in range(3):
                acc = complex_mul_add(acc, a_site[row, k], b_dir[k, col])
            c_site[row, col] = acc


@cuda.kernel(sync_free=True, vectorize=False)
def su3_cuda_kernel(t, d_a, d_b, d_c, sites):
    site = t.blockIdx.x * t.blockDim.x + t.threadIdx.x
    if site >= sites:
        return
    a = t.array(d_a, (sites, _DIRS, 3, 3), np.complex128)
    b = t.array(d_b, (_DIRS, 3, 3), np.complex128)
    c = t.array(d_c, (sites, _DIRS, 3, 3), np.complex128)
    # The four directions are unrolled, as in the MILC original — four
    # distinct inlined call sites (which the prototype's cleanup retains,
    # hence its 29 KB device binary).
    su3_matmul_site(a[site, 0], b[0], c[site, 0])
    su3_matmul_site(a[site, 1], b[1], c[site, 1])
    su3_matmul_site(a[site, 2], b[2], c[site, 2])
    su3_matmul_site(a[site, 3], b[3], c[site, 3])


@ompx.bare_kernel(sync_free=True, vectorize=False)
def su3_ompx_kernel(x, d_a, d_b, d_c, sites):
    site = x.block_id_x() * x.block_dim_x() + x.thread_id_x()
    if site >= sites:
        return
    a = x.array(d_a, (sites, _DIRS, 3, 3), np.complex128)
    b = x.array(d_b, (_DIRS, 3, 3), np.complex128)
    c = x.array(d_c, (sites, _DIRS, 3, 3), np.complex128)
    su3_matmul_site(a[site, 0], b[0], c[site, 0])
    su3_matmul_site(a[site, 1], b[1], c[site, 1])
    su3_matmul_site(a[site, 2], b[2], c[site, 2])
    su3_matmul_site(a[site, 3], b[3], c[site, 3])


def su3_omp_body(indices: np.ndarray, acc, h_a, h_b, h_c):
    """Worksharing body: batched complex matmul over the team's site chunk."""
    a = acc.mapped(h_a)[indices]            # (chunk, 4, 3, 3)
    b = acc.mapped(h_b)                     # (4, 3, 3)
    acc.mapped(h_c)[indices] = np.einsum("sdij,djk->sdik", a, b)


class SU3(BenchmarkApp):
    name = "SU3"
    description = "Lattice QCD SU3 matrix multiply"
    command_line = "-i 1000 -l 32 -t 128 -v 3 -w 1"
    reports = "total"
    perf_hints = {"amd_scratch_spills": True}

    @classmethod
    def parse_args(cls, argv: Sequence[str]) -> Mapping[str, object]:
        args = list(argv)
        parsed = {}
        flags = {"-i": "iterations", "-l": "ldim", "-t": "threads", "-v": "verify", "-w": "warmups"}
        i = 0
        while i < len(args):
            flag = args[i]
            if flag not in flags:
                raise AppError(f"su3: unknown flag {flag!r}")
            if i + 1 >= len(args):
                raise AppError(f"su3: flag {flag!r} needs a value")
            parsed[flags[flag]] = int(args[i + 1])
            i += 2
        iterations = parsed.get("iterations", 1000)
        ldim = parsed.get("ldim", 32)
        threads = parsed.get("threads", 128)
        if min(iterations, ldim, threads) <= 0:
            raise AppError("su3 arguments must be positive")
        return {
            "iterations": iterations,
            "sites": ldim**4,
            "block": threads,
            "verify": parsed.get("verify", 3),
            "warmups": parsed.get("warmups", 1),
        }

    @classmethod
    def paper_params(cls) -> Mapping[str, object]:
        return cls.parse_args(cls.command_line.split())

    @classmethod
    def functional_params(cls) -> Mapping[str, object]:
        return {"iterations": 1, "sites": 48, "block": 16, "verify": 3, "warmups": 0}

    # --- golden reference ---------------------------------------------------------
    def _inputs(self, params):
        pre = params.get("_prebuilt")
        if pre is not None:
            return pre
        rng = np.random.default_rng(99)
        sites = params["sites"]
        a = (rng.standard_normal((sites, _DIRS, 3, 3))
             + 1j * rng.standard_normal((sites, _DIRS, 3, 3)))
        b = (rng.standard_normal((_DIRS, 3, 3))
             + 1j * rng.standard_normal((_DIRS, 3, 3)))
        return a.astype(np.complex128), b.astype(np.complex128)

    def reference(self, params) -> np.ndarray:
        a, b = self._inputs(params)
        return np.einsum("sdij,djk->sdik", a, b)

    def verify(self, result, params) -> bool:
        """Honour the benchmark's ``-v`` verification levels.

        0 = none (trust the run), 1 = checksum comparison only,
        2+ = full element-wise comparison against the reference (the
        paper ran ``-v 3``).
        """
        level = int(params.get("verify", 3))
        if level <= 0:
            result.valid = True
            return True
        expected = self.reference(params)
        if level == 1:
            expected_sum = checksum(expected.real, expected.imag)
            ok = np.isclose(result.checksum, expected_sum, rtol=1e-9)
        else:
            ok = np.allclose(result.output, expected, rtol=1e-10, atol=1e-12)
        result.valid = bool(ok)
        return result.valid

    def shard_functional_params(self, params, n):
        """Shard the lattice sites; the link matrices ``b`` are broadcast."""
        from ..sched import shard

        a, b = self._inputs(params)
        subs = []
        for a_i in shard(a, n):
            sub = dict(params)
            sub["sites"] = int(a_i.shape[0])
            sub["_prebuilt"] = (a_i, b)
            subs.append(sub)
        return subs

    def result_checksum(self, output) -> float:
        return checksum(output.real, output.imag)

    # --- functional execution ----------------------------------------------------------
    def run_single(self, variant: str, params, device: Device) -> FunctionalResult:
        sites, block = params["sites"], params["block"]
        h_a, h_b = self._inputs(params)
        h_c = np.zeros_like(h_a)
        teams = (sites + block - 1) // block

        if variant == VersionLabel.OMP:
            target_teams_distribute_parallel_for(
                device,
                sites,
                vector_body=lambda idx, acc: su3_omp_body(idx, acc, h_a, h_b, h_c),
                thread_limit=block,
                maps=[(h_a, "to"), (h_b, "to"), (h_c, "from")],
                traits=self.omp_region_traits(params),
            )
            result = h_c
        else:
            kernel = su3_ompx_kernel if variant == VersionLabel.OMPX else su3_cuda_kernel
            alloc = device.allocator
            d_a = alloc.malloc(h_a.nbytes)
            d_b = alloc.malloc(h_b.nbytes)
            d_c = alloc.malloc(h_a.nbytes)
            alloc.memcpy_h2d(d_a, h_a)
            alloc.memcpy_h2d(d_b, h_b)
            args = (d_a, d_b, d_c, sites)
            if variant == VersionLabel.OMPX:
                ompx.target_teams_bare(device, teams, block, kernel, args)
            else:
                cuda.launch(kernel, teams, block, args, device=device)
                device.synchronize()
            result = np.zeros_like(h_a)
            alloc.memcpy_d2h(result, d_c)
            for ptr in (d_a, d_b, d_c):
                alloc.free(ptr)

        return FunctionalResult(
            variant=variant,
            output=result,
            checksum=checksum(result.real, result.imag),
            valid=False,
        )

    # --- performance model --------------------------------------------------------------
    def footprint(self, params, label: str = VersionLabel.OMPX) -> Footprint:
        sites = params["sites"]
        matrix_bytes = 9 * 16.0
        reads = sites * _DIRS * matrix_bytes      # stream A
        writes = sites * _DIRS * matrix_bytes     # stream C
        if label == VersionLabel.OMP:
            # The collapsed worksharing loop assigns one (site, row, col)
            # triple per thread, so each A row is re-read per output
            # column instead of being register-tiled.
            reads *= 1.5
        return Footprint(
            flops_fp64=sites * _DIRS * 27 * 8.0,  # 27 complex FMAs per matmul
            global_read_bytes=reads,
            global_write_bytes=writes,
        )

    def transfer_plan(self, params):
        """The link fields up, the products down (once, around the loop)."""
        from ..perf.transfer import TransferPlan

        sites = params["sites"]
        matrix_bytes = sites * _DIRS * 9 * 16.0
        return TransferPlan(h2d_bytes=matrix_bytes + _DIRS * 9 * 16.0,
                            d2h_bytes=matrix_bytes,
                            h2d_transfers=2, d2h_transfers=1)

    def launch_geometry(self, params) -> Tuple[int, int]:
        sites, block = params["sites"], params["block"]
        return ((sites + block - 1) // block, block)

    def launches(self, params) -> int:
        return params["iterations"]

    def kernel_for(self, label: str):
        if label == VersionLabel.OMPX:
            return su3_ompx_kernel
        if label == VersionLabel.OMP:
            return su3_omp_body
        return su3_cuda_kernel

    def omp_region_traits(self, params) -> RegionTraits:
        return RegionTraits(
            style="worksharing",
            spmd_amenable=True,
            requested_thread_limit=params["block"],
        )
