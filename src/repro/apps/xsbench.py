"""XSBench: Monte Carlo macroscopic cross-section lookup (§4.2.1, 8a/8g).

Command line (Figure 6): ``-m event`` — event-based parallelism: one
thread per lookup event.  XSBench (Tramm et al., the paper's ref [28]) is
the *memory-intensive* OpenMC proxy: each lookup picks a material and an
energy, then for every nuclide in that material binary-searches the
nuclide's energy grid and interpolates five cross sections, accumulating
a density-weighted macroscopic XS.

Material composition and sampling probabilities follow XSBench's "large"
problem (355 isotopes, 11 303 gridpoints, 17M lookups; fuel holds 321
nuclides and dominates the sampled work).

Paper results: the ompx version beats both natives on both systems; the
``omp`` version was *excluded* because the benchmark reported an invalid
checksum (we reproduce the exclusion in the harness; our own omp port
verifies, so the exclusion is a faithfully recorded artifact of the
paper's run, not of ours).
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

import numpy as np

from .. import cuda, ompx
from ..errors import AppError
from ..gpu.device import Device
from ..openmp import target_teams_distribute_parallel_for
from ..openmp.codegen import RegionTraits
from ..perf.roofline import Footprint
from .common import BenchmarkApp, FunctionalResult, VersionLabel, checksum

__all__ = ["XSBench", "xsbench_cuda_kernel", "xsbench_ompx_kernel"]

_BLOCK = 256
_N_XS = 5  # total, elastic, absorption, fission, nu-fission

# XSBench's 12 materials: nuclide counts and sampling probabilities.
_MAT_COUNTS = (321, 5, 4, 4, 27, 21, 21, 21, 21, 21, 9, 9)
_MAT_PROBS = (
    0.140, 0.052, 0.275, 0.134, 0.154, 0.064,
    0.066, 0.055, 0.008, 0.015, 0.025, 0.013,
)


def grid_search(egrid, nuc, energy, ngp: int):
    """Binary search for the interval with egrid[nuc, k] <= e < egrid[nuc, k+1].

    A __device__ function in the CUDA source; clamped to a valid interval
    at both ends (matches ``searchsorted(side='right') - 1`` clipped).
    ``nuc`` selects the isotope row(s) of the energy-grid table: a scalar
    index per thread on the scalar engines, an index array per lane batch
    on the vector engine — where the search runs with a freeze mask so
    every lane reproduces its scalar iterate sequence exactly.
    """
    if np.ndim(energy) == 0:
        row = egrid[nuc]
        lo = 0
        hi = ngp - 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if energy >= row[mid]:
                lo = mid
            else:
                hi = mid
        return lo
    lo = np.zeros(energy.shape[0], dtype=np.int64)
    hi = np.full(energy.shape[0], ngp - 1, dtype=np.int64)
    while True:
        act = hi - lo > 1
        if not act.any():
            return lo
        mid = (lo + hi) // 2
        ge = energy >= egrid[nuc, mid]
        lo = np.where(act & ge, mid, lo)
        hi = np.where(act & ~ge, mid, hi)


def interpolate_xs(xs, egrid, nuc, k, energy):
    """Linear interpolation of the 5 XS channels at grid interval k.

    Like :func:`grid_search`, ``nuc`` (and ``k``) may be scalars or lane
    index arrays; the gathers stay lane-sized either way.
    """
    e0 = egrid[nuc, k]
    e1 = egrid[nuc, k + 1]
    f = (energy - e0) / (e1 - e0)
    if np.ndim(f):
        f = f[:, None]
    return xs[nuc, k] + f * (xs[nuc, k + 1] - xs[nuc, k])


@cuda.kernel(sync_free=True, vectorize=True)
def xsbench_cuda_kernel(
    t, d_egrid, d_xs, d_nucs, d_dens, d_offsets, d_counts,
    d_energies, d_mats, d_out, n_iso, ngp, n_lookups, total_nucs,
):
    i = t.blockIdx.x * t.blockDim.x + t.threadIdx.x
    active = i < n_lookups
    egrid = t.array(d_egrid, (n_iso, ngp), np.float64)
    xs = t.array(d_xs, (n_iso, ngp, _N_XS), np.float64)
    nucs = t.array(d_nucs, total_nucs, np.int32)
    dens = t.array(d_dens, total_nucs, np.float64)
    offsets = t.array(d_offsets, len(_MAT_COUNTS), np.int32)
    counts = t.array(d_counts, len(_MAT_COUNTS), np.int32)
    energy = t.load(t.array(d_energies, n_lookups, np.float64), i)
    mat = t.load(t.array(d_mats, n_lookups, np.int32), i)

    macro = 0.0
    base = offsets[mat]
    count = t.select(active, counts[mat], 0)
    for j in range(t.loop_max(count)):
        live = j < count
        nuc = t.load(nucs, base + j)
        k = grid_search(egrid, nuc, energy, ngp)
        micro = interpolate_xs(xs, egrid, nuc, k, energy)
        macro = macro + t.select(live, t.load(dens, base + j) * micro.sum(axis=-1), 0.0)
    t.store(t.array(d_out, n_lookups, np.float64), i, macro, mask=active)


@ompx.bare_kernel(sync_free=True, vectorize=True)
def xsbench_ompx_kernel(
    x, d_egrid, d_xs, d_nucs, d_dens, d_offsets, d_counts,
    d_energies, d_mats, d_out, n_iso, ngp, n_lookups, total_nucs,
):
    i = x.block_id_x() * x.block_dim_x() + x.thread_id_x()
    active = i < n_lookups
    egrid = x.array(d_egrid, (n_iso, ngp), np.float64)
    xs = x.array(d_xs, (n_iso, ngp, _N_XS), np.float64)
    nucs = x.array(d_nucs, total_nucs, np.int32)
    dens = x.array(d_dens, total_nucs, np.float64)
    offsets = x.array(d_offsets, len(_MAT_COUNTS), np.int32)
    counts = x.array(d_counts, len(_MAT_COUNTS), np.int32)
    energy = x.load(x.array(d_energies, n_lookups, np.float64), i)
    mat = x.load(x.array(d_mats, n_lookups, np.int32), i)

    macro = 0.0
    base = offsets[mat]
    count = x.select(active, counts[mat], 0)
    for j in range(x.loop_max(count)):
        live = j < count
        nuc = x.load(nucs, base + j)
        k = grid_search(egrid, nuc, energy, ngp)
        micro = interpolate_xs(xs, egrid, nuc, k, energy)
        macro = macro + x.select(live, x.load(dens, base + j) * micro.sum(axis=-1), 0.0)
    x.store(x.array(d_out, n_lookups, np.float64), i, macro, mask=active)


class XSBench(BenchmarkApp):
    name = "XSBench"
    description = "Monte Carlo neutron transport algorithm"
    command_line = "-m event"
    reports = "total"
    perf_hints = {"lto_inlining": True}
    #: The paper excluded the omp bar: "the benchmark reporting an invalid
    #: checksum, rendering the results non-comparable" (§4.2.1).
    omp_excluded_in_paper = True

    @classmethod
    def parse_args(cls, argv: Sequence[str]) -> Mapping[str, object]:
        args = list(argv)
        if args[:2] != ["-m", "event"]:
            raise AppError(f"xsbench expects '-m event', got {argv!r}")
        return {
            "n_isotopes": 355,
            "n_gridpoints": 11303,
            "lookups": 17_000_000,
            "block": _BLOCK,
            "mat_counts": _MAT_COUNTS,
        }

    @classmethod
    def paper_params(cls) -> Mapping[str, object]:
        return cls.parse_args(cls.command_line.split())

    @classmethod
    def functional_params(cls) -> Mapping[str, object]:
        # Scaled-down materials with the same 12-entry structure.
        return {
            "n_isotopes": 24,
            "n_gridpoints": 32,
            "lookups": 200,
            "block": 32,
            "mat_counts": (20, 3, 2, 2, 6, 5, 5, 5, 5, 5, 3, 3),
        }

    # --- problem construction ----------------------------------------------------
    def _build(self, params):
        pre = params.get("_prebuilt")
        if pre is not None:
            return pre
        rng = np.random.default_rng(1234)
        n_iso, ngp = params["n_isotopes"], params["n_gridpoints"]
        counts = np.asarray(params["mat_counts"], dtype=np.int32)
        if counts.max() > n_iso:
            raise AppError("material nuclide count exceeds isotope count")
        egrid = np.sort(rng.random((n_iso, ngp)), axis=1)
        xs = rng.random((n_iso, ngp, _N_XS))
        nucs = np.concatenate(
            [rng.choice(n_iso, size=c, replace=False) for c in counts]
        ).astype(np.int32)
        dens = rng.random(nucs.shape[0]) * 10.0
        offsets = np.concatenate(([0], np.cumsum(counts[:-1]))).astype(np.int32)
        probs = np.asarray(_MAT_PROBS)
        probs = probs / probs.sum()
        lookups = params["lookups"]
        energies = rng.random(lookups)
        mats = rng.choice(len(counts), size=lookups, p=probs).astype(np.int32)
        return egrid, xs, nucs, dens, offsets, counts, energies, mats

    def reference(self, params) -> np.ndarray:
        egrid, xs, nucs, dens, offsets, counts, energies, mats = self._build(params)
        ngp = params["n_gridpoints"]
        out = np.zeros(len(energies))
        for m in range(len(counts)):
            sel = np.flatnonzero(mats == m)
            if sel.size == 0:
                continue
            e = energies[sel]
            macro = np.zeros(sel.size)
            base = offsets[m]
            for j in range(counts[m]):
                nuc = nucs[base + j]
                k = np.clip(np.searchsorted(egrid[nuc], e, side="right") - 1, 0, ngp - 2)
                e0 = egrid[nuc][k]
                e1 = egrid[nuc][k + 1]
                f = (e - e0) / (e1 - e0)
                micro = xs[nuc][k] + f[:, None] * (xs[nuc][k + 1] - xs[nuc][k])
                macro += dens[base + j] * micro.sum(axis=1)
            out[sel] = macro
        return out

    def shard_functional_params(self, params, n):
        """Shard the lookup events; the nuclide tables are broadcast."""
        from ..sched import shard

        egrid, xs, nucs, dens, offsets, counts, energies, mats = self._build(params)
        subs = []
        for e, m in zip(shard(energies, n), shard(mats, n)):
            sub = dict(params)
            sub["lookups"] = int(e.shape[0])
            sub["_prebuilt"] = (egrid, xs, nucs, dens, offsets, counts, e, m)
            subs.append(sub)
        return subs

    # --- functional execution --------------------------------------------------------
    def run_single(self, variant: str, params, device: Device) -> FunctionalResult:
        egrid, xs, nucs, dens, offsets, counts, energies, mats = self._build(params)
        n_iso, ngp = params["n_isotopes"], params["n_gridpoints"]
        lookups, block = params["lookups"], params["block"]
        out = np.zeros(lookups)
        teams = (lookups + block - 1) // block

        if variant == VersionLabel.OMP:
            def body(idx, acc):
                e = acc.mapped(energies)[idx]
                m = acc.mapped(mats)[idx]
                eg = acc.mapped(egrid)
                xv = acc.mapped(xs)
                nv = acc.mapped(nucs)
                dv = acc.mapped(dens)
                ov = acc.mapped(offsets)
                cv = acc.mapped(counts)
                res = acc.mapped(out)
                for pos, (ei, mi) in enumerate(zip(e, m)):
                    macro = 0.0
                    base = ov[mi]
                    for j in range(cv[mi]):
                        nuc = nv[base + j]
                        k = grid_search(eg, nuc, ei, ngp)
                        micro = interpolate_xs(xv, eg, nuc, k, ei)
                        macro += dv[base + j] * micro.sum()
                    res[idx[pos]] = macro

            target_teams_distribute_parallel_for(
                device,
                lookups,
                vector_body=body,
                thread_limit=block,
                maps=[(a, "to") for a in (egrid, xs, nucs, dens, offsets, counts, energies, mats)]
                + [(out, "from")],
                traits=self.omp_region_traits(params),
            )
            result = out
        else:
            kernel = xsbench_ompx_kernel if variant == VersionLabel.OMPX else xsbench_cuda_kernel
            alloc = device.allocator
            hosts = (egrid, xs, nucs, dens, offsets, counts, energies, mats)
            ptrs = []
            for host in hosts:
                ptr = alloc.malloc(host.nbytes)
                alloc.memcpy_h2d(ptr, np.ascontiguousarray(host))
                ptrs.append(ptr)
            d_out = alloc.malloc(out.nbytes)
            args = (*ptrs[:6], ptrs[6], ptrs[7], d_out, n_iso, ngp, lookups, int(nucs.shape[0]))
            if variant == VersionLabel.OMPX:
                ompx.target_teams_bare(device, teams, block, kernel, args)
            else:
                cuda.launch(kernel, teams, block, args, device=device)
                device.synchronize()
            result = np.zeros(lookups)
            alloc.memcpy_d2h(result, d_out)
            for ptr in (*ptrs, d_out):
                alloc.free(ptr)

        return FunctionalResult(variant=variant, output=result, checksum=checksum(result), valid=False)

    # --- performance model ---------------------------------------------------------------
    @staticmethod
    def _avg_nuclides(params) -> float:
        counts = np.asarray(params["mat_counts"], dtype=np.float64)
        probs = np.asarray(_MAT_PROBS)
        probs = probs / probs.sum()
        return float(counts @ probs)

    def footprint(self, params, label: str = VersionLabel.OMPX) -> Footprint:
        lookups = params["lookups"]
        nuc_lookups = lookups * self._avg_nuclides(params)
        # Each micro-XS lookup touches ~4 distinct cache lines of grid/XS
        # data at effectively random energies (the tree's upper levels hit
        # in L2; the leaves and the 2x5 XS values miss).
        return Footprint(
            int_ops=nuc_lookups * 40.0,
            flops_fp64=nuc_lookups * 14.0,
            global_read_bytes=nuc_lookups * 4 * 128.0,
            global_write_bytes=lookups * 8.0,
            dependent_accesses=nuc_lookups * 2.0,
            warp_efficiency=0.55,  # material-dependent trip counts diverge
        )

    def transfer_plan(self, params):
        """Figure 1-style movement: grids + event arrays up, results down."""
        from ..perf.transfer import TransferPlan

        n_iso, ngp = params["n_isotopes"], params["n_gridpoints"]
        lookups = params["lookups"]
        h2d = n_iso * ngp * (1 + _N_XS) * 8.0 + lookups * (8.0 + 4.0)
        return TransferPlan(h2d_bytes=h2d, d2h_bytes=lookups * 8.0,
                            h2d_transfers=8, d2h_transfers=1)

    def launch_geometry(self, params) -> Tuple[int, int]:
        lookups, block = params["lookups"], params["block"]
        return ((lookups + block - 1) // block, block)

    def kernel_for(self, label: str):
        if label == VersionLabel.OMPX:
            return xsbench_ompx_kernel
        return xsbench_cuda_kernel

    def omp_region_traits(self, params) -> RegionTraits:
        return RegionTraits(
            style="worksharing",
            spmd_amenable=True,
            requested_thread_limit=params["block"],
        )
