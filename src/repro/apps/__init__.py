"""The six evaluated applications (paper Figure 6).

Each app ships four source variants — CUDA, HIP (textually CUDA on our
substrate), classic OpenMP, and the ompx port — a NumPy golden reference,
functional runners for the virtual GPU, and the analytic workload
footprints the Figure 8 harness prices.
"""

from .adam import Adam
from .aidw import AIDW
from .common import (
    BenchmarkApp,
    ExecutionConfig,
    FunctionalResult,
    VersionLabel,
    checksum,
    run,
)
from .rsbench import RSBench
from .stencil1d import Stencil1D
from .su3 import SU3
from .xsbench import XSBench

#: Figure 6 order.
ALL_APPS = (XSBench, RSBench, SU3, AIDW, Adam, Stencil1D)

__all__ = [
    "Adam",
    "AIDW",
    "BenchmarkApp",
    "ExecutionConfig",
    "FunctionalResult",
    "VersionLabel",
    "checksum",
    "run",
    "RSBench",
    "Stencil1D",
    "SU3",
    "XSBench",
    "ALL_APPS",
]
