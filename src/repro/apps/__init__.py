"""The six evaluated applications (paper Figure 6).

Each app ships four source variants — CUDA, HIP (textually CUDA on our
substrate), classic OpenMP, and the ompx port — a NumPy golden reference,
functional runners for the virtual GPU, and the analytic workload
footprints the Figure 8 harness prices.
"""

from .adam import Adam
from .aidw import AIDW
from .common import (
    BenchmarkApp,
    ExecutionConfig,
    FunctionalResult,
    VersionLabel,
    checksum,
    run,
)
from .mlpstep import MLPStep
from .rsbench import RSBench
from .stencil1d import Stencil1D
from .su3 import SU3
from .su3et import SU3ET
from .xsbench import XSBench

#: Figure 6 order.
ALL_APPS = (XSBench, RSBench, SU3, AIDW, Adam, Stencil1D)

#: The full workload portfolio: the six evaluated apps plus the §3.6
#: vendor-library workloads (GEMM-heavy training step, expression-
#: template lattice sweep).  Figure 8 reproduction uses ``ALL_APPS``;
#: the CLI and the composition tests use the portfolio.
PORTFOLIO_APPS = ALL_APPS + (MLPStep, SU3ET)

__all__ = [
    "Adam",
    "AIDW",
    "BenchmarkApp",
    "ExecutionConfig",
    "FunctionalResult",
    "MLPStep",
    "VersionLabel",
    "checksum",
    "run",
    "RSBench",
    "Stencil1D",
    "SU3",
    "SU3ET",
    "XSBench",
    "ALL_APPS",
    "PORTFOLIO_APPS",
]
