"""AIDW: adaptive inverse distance weighting interpolation (§4.2.4, 8d/8j).

Command line (Figure 6): ``100 0 100`` — a point-scale factor of 100
(=> 25 600 data points and as many interpolation targets), weighting mode
0 (full brute-force accumulation, no kNN pruning), 100 repetitions.

Every thread interpolates one target: the block cooperatively stages
tiles of data points in shared memory, and each thread accumulates
``w = d^-alpha`` weights over the tile — the classic tiled n-body shape
(Mei et al., the paper's ref [15]).

Paper results: near-parity everywhere, except the CUDA version compiled
with *Clang* is ~5% faster on the A100 because Clang demoted the kernel's
shared variables while the prototype (and nvcc) did not.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence, Tuple

import numpy as np

from .. import cuda, ompx
from ..errors import AppError
from ..gpu.device import Device
from ..openmp import target_teams_distribute_parallel_for
from ..openmp.codegen import RegionTraits
from ..perf.roofline import Footprint
from .common import BenchmarkApp, FunctionalResult, VersionLabel, checksum

__all__ = [
    "AIDW",
    "aidw_cuda_kernel",
    "aidw_ompx_kernel",
    "aidw_knn_cuda_kernel",
    "aidw_knn_ompx_kernel",
]

_BLOCK = 256
_ALPHA = 3.5       # non-integer power: the weight needs a real pow()
_POINTS_PER_SCALE = 256


def idw_weight(dist: float) -> float:
    """The adaptive IDW weight — a __device__ helper with a pow() inside."""
    return math.pow(dist, -_ALPHA)


@cuda.kernel(vectorize=False)
def aidw_cuda_kernel(t, d_dx, d_dy, d_dz, d_ix, d_iy, d_out, dnum, inum):
    tile_size = t.blockDim.x
    sx = t.shared("sx", tile_size, np.float64)
    sy = t.shared("sy", tile_size, np.float64)
    sz = t.shared("sz", tile_size, np.float64)
    dx = t.array(d_dx, dnum, np.float64)
    dy = t.array(d_dy, dnum, np.float64)
    dz = t.array(d_dz, dnum, np.float64)
    gid = t.blockIdx.x * tile_size + t.threadIdx.x
    if gid < inum:
        xi = t.array(d_ix, inum, np.float64)[gid]
        yi = t.array(d_iy, inum, np.float64)[gid]
    else:
        xi = 0.0
        yi = 0.0
    num = 0.0
    den = 0.0
    for tile_start in range(0, dnum, tile_size):
        j = tile_start + t.threadIdx.x
        sx[t.threadIdx.x] = dx[j] if j < dnum else 0.0
        sy[t.threadIdx.x] = dy[j] if j < dnum else 0.0
        sz[t.threadIdx.x] = dz[j] if j < dnum else 0.0
        t.syncthreads()
        limit = min(tile_size, dnum - tile_start)
        for k in range(limit):
            ddx = xi - sx[k]
            ddy = yi - sy[k]
            dist = math.sqrt(ddx * ddx + ddy * ddy)
            w = idw_weight(dist)
            num += w * sz[k]
            den += w
        t.syncthreads()
    if gid < inum:
        t.array(d_out, inum, np.float64)[gid] = num / den


@ompx.bare_kernel(vectorize=False)
def aidw_ompx_kernel(x, d_dx, d_dy, d_dz, d_ix, d_iy, d_out, dnum, inum):
    tile_size = x.block_dim_x()
    sx = x.groupprivate("sx", tile_size, np.float64)
    sy = x.groupprivate("sy", tile_size, np.float64)
    sz = x.groupprivate("sz", tile_size, np.float64)
    dx = x.array(d_dx, dnum, np.float64)
    dy = x.array(d_dy, dnum, np.float64)
    dz = x.array(d_dz, dnum, np.float64)
    gid = x.block_id_x() * tile_size + x.thread_id_x()
    if gid < inum:
        xi = x.array(d_ix, inum, np.float64)[gid]
        yi = x.array(d_iy, inum, np.float64)[gid]
    else:
        xi = 0.0
        yi = 0.0
    num = 0.0
    den = 0.0
    for tile_start in range(0, dnum, tile_size):
        j = tile_start + x.thread_id_x()
        sx[x.thread_id_x()] = dx[j] if j < dnum else 0.0
        sy[x.thread_id_x()] = dy[j] if j < dnum else 0.0
        sz[x.thread_id_x()] = dz[j] if j < dnum else 0.0
        x.sync_thread_block()
        limit = min(tile_size, dnum - tile_start)
        for k in range(limit):
            ddx = xi - sx[k]
            ddy = yi - sy[k]
            dist = math.sqrt(ddx * ddx + ddy * ddy)
            w = idw_weight(dist)
            num += w * sz[k]
            den += w
        x.sync_thread_block()
    if gid < inum:
        x.array(d_out, inum, np.float64)[gid] = num / den


_KNN_K = 16


def knn_insert(best_d: np.ndarray, best_z: np.ndarray, dist: float, z: float) -> None:
    """Insert (dist, z) into the per-thread sorted k-best arrays.

    The __device__ helper of the kNN mode (Mei et al.'s fast kNN keeps a
    small sorted buffer per query point).
    """
    k = best_d.shape[0]
    if dist >= best_d[k - 1]:
        return
    pos = k - 1
    while pos > 0 and best_d[pos - 1] > dist:
        best_d[pos] = best_d[pos - 1]
        best_z[pos] = best_z[pos - 1]
        pos -= 1
    best_d[pos] = dist
    best_z[pos] = z


@cuda.kernel(vectorize=False)
def aidw_knn_cuda_kernel(t, d_dx, d_dy, d_dz, d_ix, d_iy, d_out, dnum, inum, k):
    """Mode 1: interpolate from the k nearest neighbours only."""
    tile_size = t.blockDim.x
    sx = t.shared("sx", tile_size, np.float64)
    sy = t.shared("sy", tile_size, np.float64)
    sz = t.shared("sz", tile_size, np.float64)
    dx = t.array(d_dx, dnum, np.float64)
    dy = t.array(d_dy, dnum, np.float64)
    dz = t.array(d_dz, dnum, np.float64)
    gid = t.blockIdx.x * tile_size + t.threadIdx.x
    if gid < inum:
        xi = t.array(d_ix, inum, np.float64)[gid]
        yi = t.array(d_iy, inum, np.float64)[gid]
    else:
        xi = 0.0
        yi = 0.0
    best_d = np.full(k, np.inf)
    best_z = np.zeros(k)
    for tile_start in range(0, dnum, tile_size):
        j = tile_start + t.threadIdx.x
        sx[t.threadIdx.x] = dx[j] if j < dnum else 0.0
        sy[t.threadIdx.x] = dy[j] if j < dnum else 0.0
        sz[t.threadIdx.x] = dz[j] if j < dnum else 0.0
        t.syncthreads()
        limit = min(tile_size, dnum - tile_start)
        for idx in range(limit):
            ddx = xi - sx[idx]
            ddy = yi - sy[idx]
            dist = math.sqrt(ddx * ddx + ddy * ddy)
            knn_insert(best_d, best_z, dist, sz[idx])
        t.syncthreads()
    if gid < inum:
        num = 0.0
        den = 0.0
        for idx in range(k):
            w = idw_weight(best_d[idx])
            num += w * best_z[idx]
            den += w
        t.array(d_out, inum, np.float64)[gid] = num / den


@ompx.bare_kernel(vectorize=False)
def aidw_knn_ompx_kernel(x, d_dx, d_dy, d_dz, d_ix, d_iy, d_out, dnum, inum, k):
    """Mode 1, ompx port: the CUDA body with spellings swapped."""
    tile_size = x.block_dim_x()
    sx = x.groupprivate("sx", tile_size, np.float64)
    sy = x.groupprivate("sy", tile_size, np.float64)
    sz = x.groupprivate("sz", tile_size, np.float64)
    dx = x.array(d_dx, dnum, np.float64)
    dy = x.array(d_dy, dnum, np.float64)
    dz = x.array(d_dz, dnum, np.float64)
    gid = x.block_id_x() * tile_size + x.thread_id_x()
    if gid < inum:
        xi = x.array(d_ix, inum, np.float64)[gid]
        yi = x.array(d_iy, inum, np.float64)[gid]
    else:
        xi = 0.0
        yi = 0.0
    best_d = np.full(k, np.inf)
    best_z = np.zeros(k)
    for tile_start in range(0, dnum, tile_size):
        j = tile_start + x.thread_id_x()
        sx[x.thread_id_x()] = dx[j] if j < dnum else 0.0
        sy[x.thread_id_x()] = dy[j] if j < dnum else 0.0
        sz[x.thread_id_x()] = dz[j] if j < dnum else 0.0
        x.sync_thread_block()
        limit = min(tile_size, dnum - tile_start)
        for idx in range(limit):
            ddx = xi - sx[idx]
            ddy = yi - sy[idx]
            dist = math.sqrt(ddx * ddx + ddy * ddy)
            knn_insert(best_d, best_z, dist, sz[idx])
        x.sync_thread_block()
    if gid < inum:
        num = 0.0
        den = 0.0
        for idx in range(k):
            w = idw_weight(best_d[idx])
            num += w * best_z[idx]
            den += w
        x.array(d_out, inum, np.float64)[gid] = num / den


def aidw_omp_body(indices: np.ndarray, acc, h_dx, h_dy, h_dz, h_ix, h_iy, h_out):
    """Worksharing body: full-broadcast weight accumulation per chunk."""
    dx = acc.mapped(h_dx)
    dy = acc.mapped(h_dy)
    dz = acc.mapped(h_dz)
    xi = acc.mapped(h_ix)[indices][:, None]
    yi = acc.mapped(h_iy)[indices][:, None]
    dist = np.sqrt((xi - dx[None, :]) ** 2 + (yi - dy[None, :]) ** 2)
    w = dist ** (-_ALPHA)
    acc.mapped(h_out)[indices] = (w @ dz) / w.sum(axis=1)


def aidw_knn_omp_body(indices, acc, h_dx, h_dy, h_dz, h_ix, h_iy, h_out, k):
    """Mode 1 worksharing body: np.partition selects each row's k nearest."""
    dx = acc.mapped(h_dx)
    dy = acc.mapped(h_dy)
    dz = acc.mapped(h_dz)
    xi = acc.mapped(h_ix)[indices][:, None]
    yi = acc.mapped(h_iy)[indices][:, None]
    dist = np.sqrt((xi - dx[None, :]) ** 2 + (yi - dy[None, :]) ** 2)
    nearest = np.argpartition(dist, k - 1, axis=1)[:, :k]
    rows = np.arange(len(indices))[:, None]
    dk = dist[rows, nearest]
    order = np.argsort(dk, axis=1)
    dk = dk[rows, order]
    zk = dz[nearest][rows, order]
    w = dk ** (-_ALPHA)
    acc.mapped(h_out)[indices] = (w * zk).sum(axis=1) / w.sum(axis=1)


class AIDW(BenchmarkApp):
    name = "AIDW"
    description = "Adaptive inverse distance weighting"
    command_line = "100 0 100"
    reports = "total"
    perf_hints = {"shared_demotable": True}

    @classmethod
    def parse_args(cls, argv: Sequence[str]) -> Mapping[str, object]:
        if len(argv) != 3:
            raise AppError(f"aidw expects '<scale> <mode> <repeat>', got {argv!r}")
        scale, mode, repeat = (int(a) for a in argv)
        if scale <= 0 or repeat <= 0:
            raise AppError("scale and repeat must be positive")
        if mode not in (0, 1):
            raise AppError(f"mode must be 0 (brute force) or 1 (kNN), got {mode}")
        n = scale * _POINTS_PER_SCALE
        return {"dnum": n, "inum": n, "mode": mode, "repeat": repeat,
                "block": _BLOCK, "knn_k": _KNN_K}

    @classmethod
    def paper_params(cls) -> Mapping[str, object]:
        return cls.parse_args(cls.command_line.split())

    @classmethod
    def functional_params(cls) -> Mapping[str, object]:
        return {"dnum": 96, "inum": 80, "mode": 0, "repeat": 1, "block": 32,
                "knn_k": 8}

    # --- golden reference -------------------------------------------------------
    def _inputs(self, params):
        pre = params.get("_prebuilt")
        if pre is not None:
            return pre
        rng = np.random.default_rng(11)
        dnum, inum = params["dnum"], params["inum"]
        return (
            rng.random(dnum) * 100.0,   # data x
            rng.random(dnum) * 100.0,   # data y
            rng.standard_normal(dnum),  # data values
            rng.random(inum) * 100.0,   # interp x
            rng.random(inum) * 100.0,   # interp y
        )

    def reference(self, params) -> np.ndarray:
        dx, dy, dz, ix, iy = self._inputs(params)
        dist = np.sqrt((ix[:, None] - dx[None, :]) ** 2 + (iy[:, None] - dy[None, :]) ** 2)
        if params.get("mode", 0) == 1:
            k = params["knn_k"]
            nearest = np.argpartition(dist, k - 1, axis=1)[:, :k]
            rows = np.arange(dist.shape[0])[:, None]
            dk = np.sort(dist[rows, nearest], axis=1)
            order = np.argsort(dist[rows, nearest], axis=1)
            zk = dz[nearest][rows, order]
            w = dk ** (-_ALPHA)
            return (w * zk).sum(axis=1) / w.sum(axis=1)
        w = dist ** (-_ALPHA)
        return (w @ dz) / w.sum(axis=1)

    def shard_functional_params(self, params, n):
        """Shard the interpolation points; the data points are broadcast."""
        from ..sched import shard

        dx, dy, dz, ix, iy = self._inputs(params)
        subs = []
        for x_i, y_i in zip(shard(ix, n), shard(iy, n)):
            sub = dict(params)
            sub["inum"] = int(x_i.shape[0])
            sub["_prebuilt"] = (dx, dy, dz, x_i, y_i)
            subs.append(sub)
        return subs

    # --- functional execution --------------------------------------------------------
    def run_single(self, variant: str, params, device: Device) -> FunctionalResult:
        dnum, inum, block = params["dnum"], params["inum"], params["block"]
        dx, dy, dz, ix, iy = self._inputs(params)
        out = np.zeros(inum)
        teams = (inum + block - 1) // block

        mode = params.get("mode", 0)
        k = params.get("knn_k", _KNN_K)
        if variant == VersionLabel.OMP:
            if mode == 1:
                body = lambda idx, acc: aidw_knn_omp_body(idx, acc, dx, dy, dz, ix, iy, out, k)
            else:
                body = lambda idx, acc: aidw_omp_body(idx, acc, dx, dy, dz, ix, iy, out)
            target_teams_distribute_parallel_for(
                device,
                inum,
                vector_body=body,
                thread_limit=block,
                maps=[(dx, "to"), (dy, "to"), (dz, "to"), (ix, "to"), (iy, "to"), (out, "from")],
                traits=self.omp_region_traits(params),
            )
            result = out
        else:
            if mode == 1:
                kernel = aidw_knn_ompx_kernel if variant == VersionLabel.OMPX else aidw_knn_cuda_kernel
            else:
                kernel = aidw_ompx_kernel if variant == VersionLabel.OMPX else aidw_cuda_kernel
            alloc = device.allocator
            hosts = (dx, dy, dz, ix, iy)
            ptrs = []
            for host in hosts:
                ptr = alloc.malloc(host.nbytes)
                alloc.memcpy_h2d(ptr, host)
                ptrs.append(ptr)
            d_out = alloc.malloc(out.nbytes)
            args = (*ptrs, d_out, dnum, inum) if mode == 0 else (*ptrs, d_out, dnum, inum, k)
            if variant == VersionLabel.OMPX:
                ompx.target_teams_bare(device, teams, block, kernel, args)
            else:
                cuda.launch(kernel, teams, block, args, device=device)
                device.synchronize()
            result = np.zeros(inum)
            alloc.memcpy_d2h(result, d_out)
            for ptr in (*ptrs, d_out):
                alloc.free(ptr)

        return FunctionalResult(variant=variant, output=result, checksum=checksum(result), valid=False)

    # --- performance model ---------------------------------------------------------------
    def footprint(self, params, label: str = VersionLabel.OMPX) -> Footprint:
        pairs = float(params["dnum"]) * params["inum"]
        blocks = (params["inum"] + params["block"] - 1) // params["block"]
        return Footprint(
            flops_fp32=pairs * 16.0,
            special_ops=pairs * 3.0,   # sqrt + a two-op pow per pair
            global_read_bytes=blocks * params["dnum"] * 3 * 4.0,
            global_write_bytes=params["inum"] * 4.0,
            shared_bytes=pairs * 3 * 4.0,
        )

    def transfer_plan(self, params):
        """Data and query points up, interpolated values down."""
        from ..perf.transfer import TransferPlan

        return TransferPlan(
            h2d_bytes=params["dnum"] * 3 * 8.0 + params["inum"] * 2 * 8.0,
            d2h_bytes=params["inum"] * 8.0,
            h2d_transfers=5, d2h_transfers=1,
        )

    def launch_geometry(self, params) -> Tuple[int, int]:
        inum, block = params["inum"], params["block"]
        return ((inum + block - 1) // block, block)

    def launches(self, params) -> int:
        return params["repeat"]

    def kernel_for(self, label: str):
        if label == VersionLabel.OMPX:
            return aidw_ompx_kernel
        if label == VersionLabel.OMP:
            return aidw_omp_body
        return aidw_cuda_kernel

    def omp_region_traits(self, params) -> RegionTraits:
        # A clean `target teams distribute parallel for` — SPMD-izable.
        return RegionTraits(
            style="worksharing",
            spmd_amenable=True,
            requested_thread_limit=params["block"],
        )

    def static_shared_bytes(self, params) -> int:
        return params["block"] * 3 * 8
