"""Run a benchmark application from the command line.

Mirrors how the paper ran the HeCBench binaries — same command lines as
Figure 6 — with two modes:

* ``--estimate`` (default): price the run with the performance model at
  the given (paper) parameters, printing the four Figure 8 bars per
  system.
* ``--run``: execute the chosen variant *functionally* on the virtual GPU
  at the app's reduced functional scale, verify against the NumPy
  reference, and print the checksum.

``--trace OUT.json`` profiles either mode through :mod:`repro.trace`:
the run's spans (kernel launches, stream ops, ompx host calls, perf-model
predictions) are written as a Chrome/Perfetto ``trace_event`` JSON and an
``nvprof``-style summary table is printed.

``--faults SPEC`` runs the app under a seeded :mod:`repro.faults`
injection plan (e.g. ``"malloc:oom@3;seed=7"``) and prints the injected
fault log afterwards; ``--memcheck`` runs it under the memory sanitizer
and prints the leak/OOB report.

``--resilient`` wraps the run's DevicePool in :mod:`repro.resilience`:
failed shards are retried with deterministic backoff, poisoned devices
are quarantined, reset and canary-probed, and the whole decomposition is
re-executed over the survivors when a fault escapes mid-run — so a
seeded fault plan that kills a plain ``--devices 4`` run completes with
the same checksum as a fault-free run, followed by the recovery report.
``--verify 2`` additionally runs every shard on two devices and
cross-checks the results.  ``device=`` selectors in ``--faults`` refer
to pool indices (0..N-1) whenever a pool is in play.

``--tune`` dispatches every launch through the :mod:`repro.tune`
persistent plan cache (``--tune-cache DIR`` picks the directory): the
first run of a (kernel, shape, device spec) searches the execution
engines and persists the winner; warm runs — including later processes —
dispatch straight from the cache with zero tuning launches.  Outputs are
bit-identical to untuned runs.  Composes with ``--resilient``,
``--serve``, ``--devices`` and ``--trace``.

``--cluster N`` shards the run across N supervised worker OS
processes (:mod:`repro.cluster`), each hosting its own device — true
multi-process parallelism past the GIL, with heartbeat supervision:
a SIGKILLed or hung worker is quarantined like a failed super-device,
its shards are redispatched to the survivors, and a restarted worker is
canary-probed back in.  The recovery report prints afterwards.
Composes with ``--resilient`` (device healing *inside* each worker),
``--faults`` (the plan is shipped to and re-bound inside the workers;
trigger counters then count per worker process), ``--tune``, ``--trace``
and ``--serve``.  Degrades to the in-process pool with a warning when no
worker can be spawned.

``--serve --tenants N`` runs the app through :mod:`repro.serve`: N
concurrent tenant sessions submit the same functional run to a
:class:`~repro.serve.KernelService` over the device pool, identical
submissions coalesce onto one execution (MPS-style), every tenant's
future receives the verified result, and the per-tenant service stats
are printed.  Combine with ``--resilient`` for a self-healing backend.

``--checkpoint DIR`` makes the run crash-consistent through
:mod:`repro.ckpt`: the work is split into shards and a schema-versioned,
digest-verified snapshot of the completed shard outputs (plus the fault
plan's replay cursor) is atomically published to DIR every
``--checkpoint-every N`` shards.  After a crash — up to and including
``kill -9`` of the supervisor itself — rerunning the same command with
``--resume`` loads the newest intact snapshot (falling back down the
chain past a torn one), re-executes only the missing shards, and
produces output bit-identical to an uninterrupted run.  A
``checkpoint[DIR]: writes=... resumed_step=... steps_skipped=...``
summary prints afterwards.  Composes with ``--devices``, ``--cluster``
(worker loss and supervisor loss recover from the same chain),
``--resilient`` (retries resume from the last snapshot instead of step
zero), ``--faults`` (the replay cursor keeps injected faults
deterministic across the cut; ``checkpoint_write``/``checkpoint_read``
are themselves injectable sites), ``--trace`` and ``--tune``.  With
``--serve`` the flag instead journals accepted submissions to
DIR/journal.jsonl and ``--resume`` re-admits the not-yet-retired ones
effectively once.  ``--resume`` without ``--checkpoint`` is an error.

Examples::

    python -m repro.apps xsbench -m event
    python -m repro.apps su3 -i 1000 -l 32 -t 128 -v 3 -w 1 --estimate
    python -m repro.apps stencil1d 134217728 1000 --run --variant ompx
    python -m repro.apps stencil1d --run --trace out.json
    python -m repro.apps stencil1d --run --faults "memcpy:truncate@1,bytes=64;seed=1"
    python -m repro.apps adam --run --memcheck
    python -m repro.apps stencil1d --run --devices 4 --resilient --faults 'kernel_fault@3 device=1'
    python -m repro.apps xsbench --serve --tenants 4
    python -m repro.apps xsbench --run --tune --tune-cache /tmp/plans
    python -m repro.apps stencil1d --run --tune --serve --resilient --devices 2
    python -m repro.apps xsbench --run --cluster 3 --faults 'kernel_fault@2 device=1'
    python -m repro.apps mlpstep --run --devices 2
    python -m repro.apps su3et --run --variant ompx --device-spec xehpc
    python -m repro.apps xsbench --run --checkpoint /tmp/xs-chain --checkpoint-every 2
    python -m repro.apps xsbench --run --checkpoint /tmp/xs-chain --resume --cluster 2
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .. import faults as faults_mod
from .. import trace as trace_mod
from ..errors import AppError, FaultSpecError, ReproError
from ..harness.report import format_seconds
from ..perf.timing import AMD_SYSTEM, NVIDIA_SYSTEM
from . import PORTFOLIO_APPS, ExecutionConfig, VersionLabel
from . import run as run_app

#: CLI key -> app class, straight from the portfolio registry.
_BY_KEY = {
    app.name.lower().replace("-", "").replace(" ", ""): app
    for app in PORTFOLIO_APPS
}


def _split_args(argv: Sequence[str]):
    """Separate app arguments from our ``--`` flags.

    App command lines use single-dash flags (``-m event``, ``-i 1000``);
    everything from the first double-dash token onward belongs to us.
    """
    for i, arg in enumerate(argv):
        if arg.startswith("--"):
            return list(argv[:i]), list(argv[i:])
    return list(argv), []


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        print("apps:", ", ".join(sorted(_BY_KEY)))
        return 0

    key = argv[0].lower()
    if key not in _BY_KEY:
        print(f"unknown app {key!r}; choose from {sorted(_BY_KEY)}", file=sys.stderr)
        return 2
    app = _BY_KEY[key]()

    app_args, flag_args = _split_args(argv[1:])
    parser = argparse.ArgumentParser(prog=f"repro.apps {key}", add_help=False)
    parser.add_argument("--run", action="store_true",
                        help="functional run at reduced scale (default: estimate)")
    parser.add_argument("--estimate", action="store_true")
    parser.add_argument("--variant", default=VersionLabel.OMPX,
                        choices=list(VersionLabel.ALL))
    parser.add_argument("--device", type=int, default=0, choices=[0, 1, 2, 3])
    parser.add_argument("--device-spec", metavar="NAME", default=None,
                        help="run on the first registered device matching the "
                             "named preset (a100, mi250, xehpc — see "
                             "repro.gpu.PRESETS); overrides --device")
    parser.add_argument("--devices", type=int, default=1, metavar="N",
                        help="run data-parallel across a DevicePool of N "
                             "devices (--run mode; N=1 is the single-device "
                             "path). In --estimate mode, also print the "
                             "modeled multi-device scaling.")
    parser.add_argument("--cluster", type=int, default=0, metavar="N",
                        help="run data-parallel across N supervised worker "
                             "OS processes (repro.cluster), one device per "
                             "worker; lost workers are quarantined and their "
                             "shards redispatched. Composes with "
                             "--resilient/--faults/--tune/--trace/--serve.")
    parser.add_argument("--trace", metavar="OUT.json", default=None,
                        help="profile the run and write a Chrome/Perfetto "
                             "trace_event JSON to this path")
    parser.add_argument("--faults", metavar="SPEC", default=None,
                        help="run under a seeded fault-injection plan, e.g. "
                             "'malloc:oom@3;seed=7' (see repro.faults)")
    parser.add_argument("--memcheck", action="store_true",
                        help="run under the memory sanitizer and print its "
                             "report")
    parser.add_argument("--resilient", action="store_true",
                        help="run the pool under repro.resilience: retry "
                             "failed shards, quarantine/reset/probe faulty "
                             "devices, re-execute the run over survivors, "
                             "and print the recovery report")
    parser.add_argument("--verify", type=int, default=1, choices=[1, 2],
                        help="with --resilient, 2 runs every shard on two "
                             "devices and cross-checks the results")
    parser.add_argument("--serve", action="store_true",
                        help="run the app through the repro.serve multi-"
                             "tenant kernel service: N tenant sessions "
                             "submit the same functional run concurrently "
                             "(identical submissions coalesce to one "
                             "execution) and the service stats are printed")
    parser.add_argument("--tenants", type=int, default=2, metavar="N",
                        help="number of tenant sessions for --serve "
                             "(default 2)")
    parser.add_argument("--tune", action="store_true",
                        help="dispatch every launch through the repro.tune "
                             "plan cache: cold (kernel, shape, device spec) "
                             "keys are searched once and persisted; warm "
                             "runs dispatch with zero derivation. Output is "
                             "bit-identical to an untuned run. A tune "
                             "summary is printed afterwards.")
    parser.add_argument("--tune-cache", metavar="DIR", default=None,
                        help="plan-cache directory for --tune (default: "
                             "$XDG_CACHE_HOME/repro/tune)")
    parser.add_argument("--checkpoint", metavar="DIR", default=None,
                        help="snapshot the run's completed shards (plus the "
                             "fault-plan replay cursor) into DIR after every "
                             "--checkpoint-every shards, crash-consistently "
                             "(repro.ckpt); with --serve, journal accepted "
                             "submissions into DIR instead. Composes with "
                             "--devices/--cluster/--resilient/--tune/"
                             "--trace/--faults.")
    parser.add_argument("--checkpoint-every", type=int, default=1, metavar="N",
                        help="checkpoint cadence in shards (default 1: "
                             "snapshot after every shard)")
    parser.add_argument("--resume", action="store_true",
                        help="restore the newest valid snapshot from "
                             "--checkpoint DIR and execute only the "
                             "unfinished shards; the result is bit-identical "
                             "to an uninterrupted run")
    flags = parser.parse_args(flag_args)
    if flags.serve:
        flags.run = True  # --serve is a functional-run mode
    if flags.device_spec is not None:
        from ..gpu.device import get_spec, registered_devices

        try:
            spec = get_spec(flags.device_spec)
        except ReproError as exc:
            print(f"bad --device-spec: {exc}", file=sys.stderr)
            return 2
        flags.device = next(
            ordinal for ordinal, dev in sorted(registered_devices().items())
            if dev.spec is spec
        )

    try:
        params = app.parse_args(app_args) if app_args else app.paper_params()
    except AppError as exc:
        print(f"bad arguments: {exc}", file=sys.stderr)
        return 2

    try:
        plan = faults_mod.FaultPlan.parse(flags.faults) if flags.faults else None
    except FaultSpecError as exc:
        print(f"bad --faults spec: {exc}", file=sys.stderr)
        return 2

    tracer = trace_mod.enable() if flags.trace else None
    tune_session = None
    if flags.tune:
        from .. import tune as tune_mod

        tune_session = tune_mod.enable(flags.tune_cache)
    try:
        return _run_instrumented(app, flags, params, plan)
    finally:
        if tune_session is not None:
            from .. import tune as tune_mod

            tune_mod.disable()
            print()
            print(tune_session.describe())
        if tracer is not None:
            trace_mod.disable()
            tracer.export_chrome(flags.trace)
            print()
            print(tracer.summary())
            print(f"trace written to {flags.trace} "
                  f"(load it at https://ui.perfetto.dev)")


def _run_instrumented(app, flags, params, plan) -> int:
    """Dispatch one app run under the requested fault/sanitizer scopes.

    With a fault plan active a library error is the *expected* outcome:
    it is reported cleanly with the injected-fault log (exit code 1)
    instead of a traceback.
    """
    if plan is None and not flags.memcheck:
        return _dispatch(app, flags, params)
    checker = None
    try:
        if plan is not None and flags.memcheck:
            with faults_mod.inject(plan), faults_mod.memcheck() as checker:
                code = _dispatch(app, flags, params)
        elif plan is not None:
            with faults_mod.inject(plan):
                code = _dispatch(app, flags, params)
        else:
            with faults_mod.memcheck() as checker:
                code = _dispatch(app, flags, params)
    except ReproError as exc:
        print(f"\n{type(exc).__name__}: {exc}", file=sys.stderr)
        code = 1
    finally:
        if plan is not None:
            print()
            print(plan.summary())
    if checker is not None:
        print()
        print(checker.report.summary())
        if not checker.report.clean:
            code = code or 1
    return code


def _dispatch(app, flags, params) -> int:
    """Run one app in ``--run`` or ``--estimate`` mode; returns exit code."""
    if flags.devices < 1:
        print(f"--devices must be >= 1, got {flags.devices}", file=sys.stderr)
        return 2
    if flags.cluster < 0:
        print(f"--cluster must be >= 0, got {flags.cluster}", file=sys.stderr)
        return 2
    if flags.resume and not flags.checkpoint:
        print("--resume requires --checkpoint DIR", file=sys.stderr)
        return 2
    if flags.checkpoint_every < 1:
        print(f"--checkpoint-every must be >= 1, got {flags.checkpoint_every}",
              file=sys.stderr)
        return 2
    if flags.run:
        run_params = app.functional_params()
        if flags.serve:
            return _run_serve(app, flags, run_params)
        config = ExecutionConfig(
            variant=flags.variant,
            params=run_params,
            device=flags.device,
            devices=flags.devices,
            cluster=flags.cluster,
            resilient=flags.resilient,
            verify=flags.verify,
            checkpoint_dir=flags.checkpoint,
            checkpoint_every=flags.checkpoint_every,
            resume=flags.resume,
        )
        if flags.checkpoint:
            word = "resuming" if flags.resume else "checkpointing"
            print(f"{app.name}: {word} into {flags.checkpoint} "
                  f"(cadence: every {flags.checkpoint_every} shard(s))")
        if flags.cluster > 0:
            mode = "resilient, " if flags.resilient else ""
            print(f"{app.name}: functional run of variant {flags.variant!r} "
                  f"sharded across {flags.cluster} worker processes ({mode}"
                  f"reduced scale: {dict(run_params)})")
            result = _run_pooled(app, config)
        elif flags.devices > 1 or flags.resilient:
            mode = "resilient, " if flags.resilient else ""
            print(f"{app.name}: functional run of variant {flags.variant!r} "
                  f"sharded across {flags.devices} pool devices ({mode}"
                  f"reduced scale: {dict(run_params)})")
            result = _run_pooled(app, config)
        else:
            print(f"{app.name}: functional run of variant {flags.variant!r} on "
                  f"device {flags.device} (reduced scale: {dict(run_params)})")
            result = run_app(app, config)
        if getattr(result, "checkpoint", None) is not None:
            print(result.checkpoint.summary())
        ok = app.verify(result, run_params)
        print(f"checksum = {result.checksum:.6f}  "
              f"verification {'PASSED' if ok else 'FAILED'}")
        return 0 if ok else 1

    print(f"{app.name} ({app.command_line}): performance-model estimates")
    for system in (NVIDIA_SYSTEM, AMD_SYSTEM):
        parts = []
        for label in VersionLabel.ALL:
            display = VersionLabel.display(label, system)
            if label == VersionLabel.OMP and getattr(app, "omp_excluded_in_paper", False):
                parts.append(f"{display}=excluded")
                continue
            tb = app.estimate(label, system, params)
            parts.append(f"{display}={format_seconds(app.reported_seconds(tb))}")
        print(f"  {system.name:7s} " + "  ".join(parts))
    if flags.devices > 1:
        _print_scaling(app, flags, params)
    return 0


def _run_pooled(app, config: ExecutionConfig):
    """Run one app through the unified entry point on a pool.

    With ``resilient=True`` the recovery report prints even when recovery
    ultimately fails (retry budget exhausted, every device retired): what
    was attempted is exactly what the operator needs to see next to the
    final error.  Fault-plan ``device=`` selectors are bound to pool
    indices by :func:`repro.apps.run` itself.
    """
    if not config.resilient and not config.cluster:
        return run_app(app, config)
    from ..resilience import RecoveryReport

    report = RecoveryReport()
    try:
        return run_app(app, config, report=report)
    finally:
        print()
        print(report.summary())


def _run_serve(app, flags, run_params) -> int:
    """Serve one app's functional run to N concurrent tenant sessions.

    Every tenant submits the *same* (variant, params) job, so the serving
    tier's request coalescing collapses them onto one execution and fans
    the result out — the MPS-daemon behaviour, visible in the printed
    service stats.
    """
    from ..serve import KernelService

    variant = flags.variant
    if variant == VersionLabel.NATIVE_VENDOR:
        variant = VersionLabel.NATIVE_LLVM  # same sources
    plan = faults_mod.active_plan()
    backing = (
        f"{flags.cluster} cluster worker(s)" if flags.cluster
        else f"{flags.devices} pool device(s)"
    )
    print(f"{app.name}: serving variant {variant!r} to {flags.tenants} "
          f"tenant(s) over {backing} "
          f"(reduced scale: {dict(run_params)})")
    failures = 0
    with KernelService(
        devices=flags.devices,
        cluster=flags.cluster,
        resilient=flags.resilient,
        verify=flags.verify,
        seed=plan.seed if plan is not None else 0,
        tune=flags.tune,
        tune_cache=flags.tune_cache,
        journal_dir=flags.checkpoint,
    ) as service:
        if flags.resume and flags.checkpoint:
            recovered = service.recover()
            if recovered:
                print(f"  re-admitted {len(recovered)} journaled "
                      f"submission(s) from {flags.checkpoint}")
        if plan is not None and not flags.cluster:
            plan.bind_devices(
                {i: d.ordinal for i, d in enumerate(service.devices)}
            )
        sessions = [
            service.session(f"tenant{i}") for i in range(flags.tenants)
        ]
        futures = [
            session.submit_app(app, variant=variant, params=run_params)
            for session in sessions
        ]
        for session, future in zip(sessions, futures):
            try:
                result = future.result()
            except ReproError as exc:
                failures += 1
                print(f"  {session.tenant}: FAILED ({type(exc).__name__}: {exc})")
                continue
            ok = app.verify(result, run_params)
            failures += 0 if ok else 1
            print(f"  {session.tenant}: checksum = {result.checksum:.6f}  "
                  f"verification {'PASSED' if ok else 'FAILED'}")
        print()
        print(service.summary())
    return 1 if failures else 0


def _print_scaling(app, flags, params) -> None:
    """Modeled multi-device scaling of the ompx version (see EXPERIMENTS.md)."""
    from ..gpu.device import A100_SPEC, MI250_SPEC
    from ..sched import estimate_scaling

    print(f"  modeled {flags.devices}-device scaling (ompx, data-parallel):")
    for system, spec in ((NVIDIA_SYSTEM, A100_SPEC), (AMD_SYSTEM, MI250_SPEC)):
        tb = app.estimate(VersionLabel.OMPX, system, params)
        single = app.reported_seconds(tb)
        # Per-step halo traffic for the stencil (two edges per device per
        # iteration, matched to the reported unit — per launch or total);
        # the other apps shard without any cross-device traffic.
        peer_bytes = peer_transfers = 0
        if "radius" in params and "iterations" in params:
            peer_bytes = 2 * params["radius"] * 8
            peer_transfers = 2 if app.reports == "per_launch" \
                else 2 * params["iterations"]
        est = estimate_scaling(
            single, flags.devices, spec,
            peer_bytes=peer_bytes, peer_transfers=peer_transfers,
        )
        print(f"    {system.name:7s} {format_seconds(est.single_seconds)} -> "
              f"{format_seconds(est.multi_seconds)}  "
              f"(speedup {est.speedup:.2f}x, efficiency {est.efficiency:.0%}, "
              f"comm {format_seconds(est.comm_seconds)})")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
