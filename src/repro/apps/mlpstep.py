"""MLPStep: batched MLP training step through the vendor BLAS layer (§3.6).

Command line: ``1024 128 64 128 20`` — 1024 independent tiny MLPs
(one per hyper-parameter sample, a population-training shape), batch
128, 64 input features, 128 hidden units, 20 fused
forward/backward/Adam steps.

This is the GEMM-heavy member of the portfolio: every matrix product —
forward activations, weight gradients, back-propagated deltas — goes
through ``ompxblas_dgemm_strided_batched`` (batch = models), the loss
delta through ``dcopy``/``daxpy``/``dscal``, and only the elementwise
Adam update is a hand kernel.  All four source variants share the
vendor-library calls (the wrappers are front-end-agnostic host API —
the §3.6 porting story), so the variants differ *only* in how the Adam
kernel is expressed, and the results are bit-identical across them.

The model is deliberately linear (two dense layers, L2 loss): GEMMs
dominate, and the golden reference is a page of NumPy.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

import numpy as np

from .. import cuda, ompx
from ..errors import AppError
from ..gpu.device import Device
from ..openmp import target_teams_distribute_parallel_for
from ..openmp.codegen import RegionTraits
from ..perf.roofline import Footprint
from .adam import adam_update
from .common import BenchmarkApp, FunctionalResult, VersionLabel, checksum

__all__ = ["MLPStep", "mlp_adam_cuda_kernel", "mlp_adam_ompx_kernel"]

_BLOCK = 256
_OUT = 8          # output width of the regression head
_BETA1 = 0.9
_BETA2 = 0.999


@cuda.kernel(sync_free=True, vectorize=True)
def mlp_adam_cuda_kernel(t, d_w, d_g, d_m, d_v, n, b1_t, b2_t):
    i = t.blockIdx.x * t.blockDim.x + t.threadIdx.x
    active = i < n
    wv = t.array(d_w, n, np.float64)
    gv = t.array(d_g, n, np.float64)
    mv = t.array(d_m, n, np.float64)
    vv = t.array(d_v, n, np.float64)
    w, m, v = adam_update(
        t.load(wv, i), t.load(gv, i), t.load(mv, i), t.load(vv, i), b1_t, b2_t
    )
    t.store(wv, i, w, mask=active)
    t.store(mv, i, m, mask=active)
    t.store(vv, i, v, mask=active)


@ompx.bare_kernel(sync_free=True, vectorize=True)
def mlp_adam_ompx_kernel(x, d_w, d_g, d_m, d_v, n, b1_t, b2_t):
    i = x.block_id_x() * x.block_dim_x() + x.thread_id_x()
    active = i < n
    wv = x.array(d_w, n, np.float64)
    gv = x.array(d_g, n, np.float64)
    mv = x.array(d_m, n, np.float64)
    vv = x.array(d_v, n, np.float64)
    w, m, v = adam_update(
        x.load(wv, i), x.load(gv, i), x.load(mv, i), x.load(vv, i), b1_t, b2_t
    )
    x.store(wv, i, w, mask=active)
    x.store(mv, i, m, mask=active)
    x.store(vv, i, v, mask=active)


def mlp_adam_omp_body(indices, acc, h_w, h_g, h_m, h_v, b1_t, b2_t):
    """Classic-OpenMP worksharing body: one Adam step over the chunk."""
    w = acc.mapped(h_w)
    g = acc.mapped(h_g)
    m = acc.mapped(h_m)
    v = acc.mapped(h_v)
    wi, mi, vi = adam_update(w[indices], g[indices], m[indices], v[indices],
                             b1_t, b2_t)
    w[indices] = wi
    m[indices] = mi
    v[indices] = vi


def _cm(a: np.ndarray) -> np.ndarray:
    """Per-model column-major image of a ``(models, rows, cols)`` stack."""
    return np.ascontiguousarray(a.transpose(0, 2, 1))


class MLPStep(BenchmarkApp):
    name = "MLPStep"
    description = "Batched MLP train step over vendor BLAS"
    command_line = "1024 128 64 128 20"
    reports = "total"
    perf_hints = {"vendor_library": True}

    @classmethod
    def parse_args(cls, argv: Sequence[str]) -> Mapping[str, object]:
        if len(argv) != 5:
            raise AppError(
                f"mlpstep expects '<models> <batch> <features> <hidden> "
                f"<steps>', got {argv!r}"
            )
        models, batch, features, hidden, steps = (int(a) for a in argv)
        if min(models, batch, features, hidden, steps) <= 0:
            raise AppError("all mlpstep arguments must be positive")
        return {
            "models": models, "batch": batch, "features": features,
            "hidden": hidden, "steps": steps, "block": _BLOCK,
        }

    @classmethod
    def paper_params(cls) -> Mapping[str, object]:
        return cls.parse_args(cls.command_line.split())

    @classmethod
    def functional_params(cls) -> Mapping[str, object]:
        return {"models": 6, "batch": 5, "features": 4, "hidden": 3,
                "steps": 2, "block": 32}

    # --- golden reference ---------------------------------------------------------
    def _inputs(self, params):
        pre = params.get("_prebuilt")
        if pre is not None:
            return pre
        rng = np.random.default_rng(23)
        models, batch = params["models"], params["batch"]
        features, hidden = params["features"], params["hidden"]
        return (
            rng.standard_normal((models, batch, features)),        # x
            rng.standard_normal((models, batch, _OUT)),            # y
            rng.standard_normal((models, features, hidden)) * 0.1,  # w1
            rng.standard_normal((models, hidden, _OUT)) * 0.1,      # w2
        )

    def reference(self, params) -> np.ndarray:
        x, y, w1, w2 = (a.copy() for a in self._inputs(params))
        m1, v1 = np.zeros_like(w1), np.zeros_like(w1)
        m2, v2 = np.zeros_like(w2), np.zeros_like(w2)
        inv_batch = 1.0 / params["batch"]
        b1_t = b2_t = 1.0
        for _ in range(params["steps"]):
            z1 = x @ w1
            z2 = z1 @ w2
            dz2 = (z2 - y) * inv_batch
            gw2 = z1.transpose(0, 2, 1) @ dz2
            dz1 = dz2 @ w2.transpose(0, 2, 1)
            gw1 = x.transpose(0, 2, 1) @ dz1
            b1_t *= _BETA1
            b2_t *= _BETA2
            w1, m1, v1 = adam_update(w1, gw1, m1, v1, b1_t, b2_t)
            w2, m2, v2 = adam_update(w2, gw2, m2, v2, b1_t, b2_t)
        models = params["models"]
        return np.concatenate(
            [w1.reshape(models, -1), w2.reshape(models, -1)], axis=1
        )

    def shard_functional_params(self, params, n):
        """Shard the model population; each model trains independently."""
        from ..sched import shard

        x, y, w1, w2 = self._inputs(params)
        subs = []
        for x_i, y_i, w1_i, w2_i in zip(
            shard(x, n), shard(y, n), shard(w1, n), shard(w2, n)
        ):
            sub = dict(params)
            sub["models"] = int(x_i.shape[0])
            sub["_prebuilt"] = (x_i, y_i, w1_i, w2_i)
            subs.append(sub)
        return subs

    # --- functional execution ----------------------------------------------------------
    def run_single(self, variant: str, params, device: Device) -> FunctionalResult:
        models, batch = params["models"], params["batch"]
        feats, hidden = params["features"], params["hidden"]
        steps, block = params["steps"], params["block"]
        h_x, h_y, h_w1, h_w2 = (a.copy() for a in self._inputs(params))
        inv_batch = 1.0 / batch

        alloc = device.allocator
        handle = ompx.ompxblas_create(device)
        sizes = {
            "x": batch * feats, "y": batch * _OUT, "w1": feats * hidden,
            "w2": hidden * _OUT, "z1": batch * hidden, "z2": batch * _OUT,
            "dz1": batch * hidden, "dz2": batch * _OUT,
            "gw1": feats * hidden, "gw2": hidden * _OUT,
            "m1": feats * hidden, "v1": feats * hidden,
            "m2": hidden * _OUT, "v2": hidden * _OUT,
        }
        d = {key: alloc.malloc(models * size * 8) for key, size in sizes.items()}
        try:
            alloc.memcpy_h2d(d["x"], _cm(h_x))
            alloc.memcpy_h2d(d["y"], _cm(h_y))
            alloc.memcpy_h2d(d["w1"], _cm(h_w1))
            alloc.memcpy_h2d(d["w2"], _cm(h_w2))
            n1 = models * feats * hidden
            n2 = models * hidden * _OUT
            h_m1 = np.zeros(n1)
            h_v1 = np.zeros(n1)
            h_m2 = np.zeros(n2)
            h_v2 = np.zeros(n2)
            h_g1 = np.zeros(n1)
            h_g2 = np.zeros(n2)
            # Host-side flat weight images (the OMP variant's authoritative
            # copy; uploaded before each step's GEMMs).
            hw1 = _cm(h_w1).reshape(-1)
            hw2 = _cm(h_w2).reshape(-1)
            b1_t = b2_t = 1.0
            for _ in range(steps):
                if variant == VersionLabel.OMP:
                    alloc.memcpy_h2d(d["w1"], hw1)
                    alloc.memcpy_h2d(d["w2"], hw2)
                self._gradient_pass(
                    handle, d, models, batch, feats, hidden, inv_batch
                )
                b1_t *= _BETA1
                b2_t *= _BETA2
                layers = (
                    (n1, d["w1"], d["gw1"], d["m1"], d["v1"],
                     hw1, h_g1, h_m1, h_v1),
                    (n2, d["w2"], d["gw2"], d["m2"], d["v2"],
                     hw2, h_g2, h_m2, h_v2),
                )
                for (n, d_w, d_g, d_m, d_v, h_w, h_g, h_m, h_v) in layers:
                    teams = (n + block - 1) // block
                    if variant == VersionLabel.OMP:
                        alloc.memcpy_d2h(h_g, d_g)
                        target_teams_distribute_parallel_for(
                            device,
                            n,
                            vector_body=lambda idx, acc, w=h_w, g=h_g, m=h_m,
                            v=h_v, p=b1_t, q=b2_t: mlp_adam_omp_body(
                                idx, acc, w, g, m, v, p, q
                            ),
                            thread_limit=block,
                            maps=[(h_w, "tofrom"), (h_g, "to"),
                                  (h_m, "tofrom"), (h_v, "tofrom")],
                            traits=self.omp_region_traits(params),
                        )
                    elif variant == VersionLabel.OMPX:
                        ompx.target_teams_bare(
                            device, teams, block, mlp_adam_ompx_kernel,
                            (d_w, d_g, d_m, d_v, n, b1_t, b2_t),
                        )
                    else:
                        cuda.launch(
                            mlp_adam_cuda_kernel, teams, block,
                            (d_w, d_g, d_m, d_v, n, b1_t, b2_t), device=device,
                        )
                        device.synchronize()
            if variant == VersionLabel.OMP:
                w1_cm = hw1.reshape(models, hidden, feats)
                w2_cm = hw2.reshape(models, _OUT, hidden)
            else:
                w1_cm = np.zeros((models, hidden, feats))
                w2_cm = np.zeros((models, _OUT, hidden))
                alloc.memcpy_d2h(w1_cm, d["w1"])
                alloc.memcpy_d2h(w2_cm, d["w2"])
            out = np.concatenate(
                [
                    np.ascontiguousarray(w1_cm.transpose(0, 2, 1)).reshape(models, -1),
                    np.ascontiguousarray(w2_cm.transpose(0, 2, 1)).reshape(models, -1),
                ],
                axis=1,
            )
        finally:
            ompx.ompxblas_destroy(handle)
            for ptr in d.values():
                alloc.free(ptr)

        return FunctionalResult(
            variant=variant, output=out, checksum=checksum(out), valid=False
        )

    def _gradient_pass(self, handle, d, models, batch, feats, hidden, inv_batch):
        """One forward+backward sweep: five strided-batched GEMMs + L1 ops."""
        N, T = ompx.OMPXBLAS_OP_N, ompx.OMPXBLAS_OP_T
        gemm = ompx.ompxblas_dgemm_strided_batched
        # z1 = x @ w1
        gemm(handle, N, N, batch, hidden, feats, 1.0,
             d["x"], batch, batch * feats, d["w1"], feats, feats * hidden,
             0.0, d["z1"], batch, batch * hidden, models)
        # z2 = z1 @ w2
        gemm(handle, N, N, batch, _OUT, hidden, 1.0,
             d["z1"], batch, batch * hidden, d["w2"], hidden, hidden * _OUT,
             0.0, d["z2"], batch, batch * _OUT, models)
        # dz2 = (z2 - y) / batch
        n_out = models * batch * _OUT
        ompx.ompxblas_dcopy(handle, n_out, d["z2"], 1, d["dz2"], 1)
        ompx.ompxblas_daxpy(handle, n_out, -1.0, d["y"], 1, d["dz2"], 1)
        ompx.ompxblas_dscal(handle, n_out, inv_batch, d["dz2"], 1)
        # gw2 = z1^T @ dz2
        gemm(handle, T, N, hidden, _OUT, batch, 1.0,
             d["z1"], batch, batch * hidden, d["dz2"], batch, batch * _OUT,
             0.0, d["gw2"], hidden, hidden * _OUT, models)
        # dz1 = dz2 @ w2^T
        gemm(handle, N, T, batch, hidden, _OUT, 1.0,
             d["dz2"], batch, batch * _OUT, d["w2"], hidden, hidden * _OUT,
             0.0, d["dz1"], batch, batch * hidden, models)
        # gw1 = x^T @ dz1
        gemm(handle, T, N, feats, hidden, batch, 1.0,
             d["x"], batch, batch * feats, d["dz1"], batch, batch * hidden,
             0.0, d["gw1"], feats, feats * hidden, models)

    # --- performance model --------------------------------------------------------------
    def footprint(self, params, label: str = VersionLabel.OMPX) -> Footprint:
        from ..ompx.vendor import gemm_footprint

        models, batch = params["models"], params["batch"]
        feats, hidden, steps = params["features"], params["hidden"], params["steps"]
        gemms = (
            (batch, hidden, feats), (batch, _OUT, hidden),
            (hidden, _OUT, batch), (batch, hidden, _OUT),
            (feats, hidden, batch),
        )
        flops = reads = writes = 0.0
        for m, n, k in gemms:
            fp = gemm_footprint(m, n, k, batch=models)
            flops += fp.flops_fp64
            reads += fp.global_read_bytes
            writes += fp.global_write_bytes
        n_params = models * (feats * hidden + hidden * _OUT)
        flops += n_params * 12.0                      # the Adam update
        reads += n_params * 4 * 8.0
        writes += n_params * 3 * 8.0
        return Footprint(
            flops_fp64=flops * steps,
            special_ops=n_params * steps * 0.25,      # one sqrt per parameter
            global_read_bytes=reads * steps,
            global_write_bytes=writes * steps,
        )

    def transfer_plan(self, params):
        """Inputs and weights up once; trained weights down once."""
        from ..perf.transfer import TransferPlan

        models, batch = params["models"], params["batch"]
        feats, hidden = params["features"], params["hidden"]
        weight_bytes = models * (feats * hidden + hidden * _OUT) * 8.0
        input_bytes = models * batch * (feats + _OUT) * 8.0
        return TransferPlan(
            h2d_bytes=input_bytes + weight_bytes, d2h_bytes=weight_bytes,
            h2d_transfers=4, d2h_transfers=2,
        )

    def launch_geometry(self, params) -> Tuple[int, int]:
        models, block = params["models"], params["block"]
        n = models * (params["features"] * params["hidden"] + params["hidden"] * _OUT)
        return ((n + block - 1) // block, block)

    def launches(self, params) -> int:
        return params["steps"] * 2                    # two Adam layers per step

    def kernel_for(self, label: str):
        if label == VersionLabel.OMPX:
            return mlp_adam_ompx_kernel
        if label == VersionLabel.OMP:
            return mlp_adam_omp_body
        return mlp_adam_cuda_kernel

    def omp_region_traits(self, params) -> RegionTraits:
        return RegionTraits(
            style="worksharing",
            spmd_amenable=True,
            requested_thread_limit=params["block"],
        )
