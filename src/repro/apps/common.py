"""Shared framework for the six evaluated applications (paper Figure 6).

Each application module provides:

* parameter parsing for the exact command line the paper used (Figure 6),
* a NumPy host reference producing the golden output/checksum,
* kernels in the CUDA DSL and their ompx ports (the paper's point: the
  port is a renaming), plus a classic-OpenMP variant,
* a workload :class:`~repro.perf.Footprint` derived analytically from the
  parameters, feeding the Figure 8 harness,
* functional runners that execute each variant on the virtual GPU at a
  reduced problem size and verify the checksum.

The four *version labels* of Figure 8 (``ompx``, ``omp``, ``cuda``/
``hip``, ``cuda-nvcc``/``hip-hipcc``) are combinations of a variant and a
toolchain; :meth:`BenchmarkApp.compiled_for` resolves them.
"""

from __future__ import annotations

import abc
import functools
from dataclasses import dataclass, replace
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..compiler.compile import CompiledKernel, compile_kernel
from ..compiler.toolchain import HIPCC, LLVM_CLANG, NVCC, OMP_LLVM, OMPX_PROTO, Toolchain
from ..errors import AppError
from ..gpu.device import Device
from ..openmp.codegen import RegionTraits
from ..perf.roofline import Footprint
from ..perf.timing import SystemConfig, TimeBreakdown, estimate_time
from ..perf.transfer import TransferPlan

__all__ = [
    "VersionLabel",
    "FunctionalResult",
    "BenchmarkApp",
    "ExecutionConfig",
    "run",
    "checksum",
]


class VersionLabel:
    """The bar labels of Figure 8."""

    OMPX = "ompx"
    OMP = "omp"
    NATIVE_LLVM = "native-llvm"     # 'cuda' on NVIDIA, 'hip' on AMD
    NATIVE_VENDOR = "native-vendor"  # 'cuda-nvcc' / 'hip-hipcc'

    ALL = (OMPX, OMP, NATIVE_LLVM, NATIVE_VENDOR)

    @staticmethod
    def display(label: str, system: SystemConfig) -> str:
        """The exact bar label the paper prints for a system."""
        if label == VersionLabel.NATIVE_LLVM:
            return system.native_language
        if label == VersionLabel.NATIVE_VENDOR:
            return f"{system.native_language}-{system.vendor_compiler}"
        return label


def checksum(*arrays: np.ndarray) -> float:
    """Order-independent output digest used for cross-variant verification."""
    total = 0.0
    for arr in arrays:
        arr = np.asarray(arr, dtype=np.float64)
        total += float(np.sum(arr)) + float(np.sum(np.abs(arr))) * 0.5
    return total


@dataclass
class FunctionalResult:
    """Output of one functional (simulated) run of a variant."""

    variant: str
    output: np.ndarray
    checksum: float
    valid: bool


@dataclass
class ExecutionConfig:
    """Everything :func:`run` needs to know about *how* to execute an app.

    One submission surface replaces the old
    ``run_functional``/``run_functional_sharded``/
    ``run_functional_resilient`` trio: pick a variant and a scale, and
    :func:`run` builds (or reuses) the right execution substrate.

    * ``variant``/``params`` — what to run; ``params=None`` means the
      app's reduced :meth:`BenchmarkApp.functional_params`.
    * ``device`` — single-device target (an ordinal or a
      :class:`~repro.gpu.device.Device`; ``None`` is the thread-current
      device), used when ``devices == 1`` and no pool is given.
    * ``devices``/``placement`` — size and placement policy of the
      :class:`~repro.sched.DevicePool` :func:`run` creates for sharded
      execution.
    * ``pool`` — an externally owned backend satisfying
      :class:`~repro.sched.PoolProtocol`; :func:`run` will not close it.
      A :class:`~repro.resilience.ResilientPool` routes through
      :meth:`~repro.resilience.ResilientPool.run_to_completion`
      automatically.
    * ``cluster`` — shard across that many supervised worker OS
      processes instead of in-process pool threads (see
      :mod:`repro.cluster`); degrades to an in-process pool with a
      :class:`RuntimeWarning` when no worker can be spawned.  Composes
      with ``resilient`` (device healing inside each worker), ``tune``
      and an active fault plan (shipped to and re-bound inside the
      workers — trigger counters then count per worker process).
    * ``resilient``/``verify``/``seed``/``report`` — wrap the pool in
      :class:`~repro.resilience.ResilientPool` (``verify=2`` adds the
      dual-device cross-check); ``seed=None`` inherits the active fault
      plan's seed so chaos replays stay deterministic.  Pass a
      :class:`~repro.resilience.RecoveryReport` to observe recovery
      actions even when the run ultimately fails.
    * ``trace`` — install a process tracer for the duration when none is
      active; the tracer is attached to the result as ``result.tracer``.
    * ``tune``/``tune_cache`` — install a :mod:`repro.tune` session for
      the duration when none is active, so every launch dispatches
      through the persistent plan cache (``tune_cache`` overrides the
      default cache directory).  The session is attached to the result
      as ``result.tune_session``.  Outputs are bit-identical to untuned
      runs — tuning only picks among equivalent engines.
    * ``checkpoint_dir``/``checkpoint_every``/``checkpoint_shards``/
      ``resume`` — execute through :func:`repro.ckpt.run_checkpointed`:
      the run is sharded into waves of ``checkpoint_every`` shards with
      a crash-consistent snapshot (completed shards + fault-plan replay
      cursor) after each wave.  ``resume=True`` restores the newest
      valid snapshot from ``checkpoint_dir`` and re-executes only the
      unfinished tail — bit-identical to an uninterrupted run.
      Composes with every other axis: under ``resilient`` the retry
      loop re-enters from the last checkpoint instead of step zero;
      under ``cluster`` the chain survives SIGKILL of the supervisor
      process itself.  The session is attached to the result as
      ``result.checkpoint``.
    """

    variant: str = VersionLabel.OMPX
    params: Optional[Mapping[str, object]] = None
    device: object = None
    devices: int = 1
    placement: object = "round_robin"
    cluster: int = 0
    pool: Optional[object] = None
    resilient: bool = False
    verify: int = 1
    seed: Optional[int] = None
    report: Optional[object] = None
    trace: bool = False
    tune: bool = False
    tune_cache: Optional[str] = None
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 1
    checkpoint_shards: Optional[int] = None
    resume: bool = False


def run(app: "BenchmarkApp", config: Optional[ExecutionConfig] = None,
        **overrides) -> FunctionalResult:
    """Run one app functionally — the unified submission entry point.

    ``run(app)`` executes the ompx variant on the current device at the
    app's functional scale.  Keyword overrides are applied on top of
    ``config`` (``run(app, devices=4, resilient=True)`` works without
    building an :class:`ExecutionConfig` by hand).  The CLI
    (``python -m repro.apps``), the serving tier (:mod:`repro.serve`)
    and the deprecated ``run_functional*`` shims all route through here.
    """
    config = config or ExecutionConfig()
    if overrides:
        config = replace(config, **overrides)
    params = config.params if config.params is not None else app.functional_params()
    variant = config.variant
    if variant == VersionLabel.NATIVE_VENDOR:
        variant = VersionLabel.NATIVE_LLVM  # same sources, different toolchain

    tracer = None
    if config.trace:
        from .. import trace as trace_mod

        if trace_mod.get_tracer() is None:
            tracer = trace_mod.enable()
    tune_session = owns_tune = None
    if config.tune:
        from .. import tune as tune_mod

        tune_session = tune_mod.active_session()
        if tune_session is None:
            tune_session = owns_tune = tune_mod.enable(config.tune_cache)
    try:
        result = _run_with_config(app, variant, params, config)
    finally:
        if owns_tune is not None:
            from .. import tune as tune_mod

            tune_mod.disable()
        if tracer is not None:
            from .. import trace as trace_mod

            trace_mod.disable()
    result.tracer = tracer
    result.tune_session = tune_session
    return result


def _run_with_config(app, variant, params, config: ExecutionConfig) -> FunctionalResult:
    if config.resume and config.checkpoint_dir is None:
        raise AppError("resume=True requires checkpoint_dir (--checkpoint DIR)")
    if config.checkpoint_dir is not None:
        return _run_checkpointed(app, variant, params, config)
    if config.pool is not None:
        return _run_on_pool(app, variant, params, config.pool)
    if config.cluster > 0:
        from ..cluster import cluster_pool
        from ..faults import active_plan

        seed = config.seed if config.seed is not None else _active_plan_seed()
        pool = cluster_pool(
            config.cluster,
            resilient=config.resilient,
            verify=config.verify,
            seed=seed,
            report=config.report,
            plan=active_plan(),
            tune=config.tune,
            tune_cache=config.tune_cache,
        )
        try:
            return _run_on_pool(app, variant, params, pool)
        finally:
            pool.close()
    if config.devices > 1 or config.resilient:
        from ..sched import DevicePool

        with DevicePool(config.devices, placement=config.placement) as pool:
            _bind_fault_plan(pool)
            if not config.resilient:
                return app.run_sharded(variant, params, pool)
            from ..resilience import ResilientPool

            seed = config.seed if config.seed is not None else _active_plan_seed()
            with ResilientPool(
                pool, verify=config.verify, seed=seed, report=config.report
            ) as rpool:
                return _run_on_pool(app, variant, params, rpool)
    from ..gpu.device import resolve_placement

    return app.run_single(variant, params, resolve_placement(config.device))


def _run_checkpointed(app, variant, params, config: ExecutionConfig) -> FunctionalResult:
    """Build the configured backend and execute through the ckpt runner.

    The checkpoint strategy subsumes the plain sharded/clustered paths
    (same shard contract, plus snapshots), so every backend — external
    pool, cluster, resilient, plain — funnels into
    :func:`repro.ckpt.run_checkpointed`.  A resilient backend wraps the
    whole body in ``run_to_completion``; because a re-entered session
    restores the latest snapshot first, each retry replays only the
    unfinished tail.
    """
    from ..ckpt import CheckpointSession, run_checkpointed

    session = CheckpointSession(
        config.checkpoint_dir, every=config.checkpoint_every
    )

    def body(pool) -> FunctionalResult:
        return run_checkpointed(
            app, variant, params, pool, session,
            resume=config.resume, shards=config.checkpoint_shards,
        )

    def dispatch(pool) -> FunctionalResult:
        if hasattr(pool, "run_to_completion"):
            return pool.run_to_completion(
                body, label=f"{app.name}:{variant}:ckpt"
            )
        return body(pool)

    if config.pool is not None:
        result = dispatch(config.pool)
    elif config.cluster > 0:
        from ..cluster import cluster_pool
        from ..faults import active_plan

        seed = config.seed if config.seed is not None else _active_plan_seed()
        pool = cluster_pool(
            config.cluster,
            resilient=config.resilient,
            verify=config.verify,
            seed=seed,
            report=config.report,
            plan=active_plan(),
            tune=config.tune,
            tune_cache=config.tune_cache,
        )
        try:
            result = dispatch(pool)
        finally:
            pool.close()
    else:
        from ..sched import DevicePool

        with DevicePool(
            max(config.devices, 1), placement=config.placement
        ) as pool:
            _bind_fault_plan(pool)
            if config.resilient:
                from ..resilience import ResilientPool

                seed = (
                    config.seed if config.seed is not None
                    else _active_plan_seed()
                )
                with ResilientPool(
                    pool, verify=config.verify, seed=seed,
                    report=config.report,
                ) as rpool:
                    result = dispatch(rpool)
            else:
                result = dispatch(pool)
    result.checkpoint = session
    return result


def _run_on_pool(app, variant, params, pool) -> FunctionalResult:
    """Dispatch onto an already-built backend (plain/resilient/cluster)."""
    if getattr(pool, "is_cluster", False):
        return app.run_clustered(variant, params, pool)
    if hasattr(pool, "run_to_completion"):
        return pool.run_to_completion(
            lambda rp: app.run_sharded(variant, params, rp),
            label=f"{app.name}:{variant}",
        )
    return app.run_sharded(variant, params, pool)


def _bind_fault_plan(pool) -> None:
    """Re-map ``device=`` fault selectors onto the pool's live ordinals.

    Spec-level selectors mean *pool indices* whenever a pool is in play
    (the CLI contract since PR 5), so the same spec kills a plain pooled
    run and is survived by a resilient one.
    """
    from ..faults import active_plan

    plan = active_plan()
    if plan is not None:
        plan.bind_devices({i: d.ordinal for i, d in enumerate(pool.devices)})


def _active_plan_seed() -> int:
    from ..faults import active_plan

    plan = active_plan()
    return plan.seed if plan is not None else 0


#: The pre-1.2 runner trio, removed after its DeprecationWarning cycle;
#: looked up by ``BenchmarkApp.__getattr__`` to raise a pointed error.
_REMOVED_RUNNERS = {
    "run_functional": "repro.apps.run(app, variant=..., device=...)",
    "run_functional_sharded":
        "repro.apps.run(app, devices=N) or run(app, pool=...)",
    "run_functional_resilient": "repro.apps.run(app, resilient=True)",
}


class BenchmarkApp(abc.ABC):
    """One of the six HeCBench applications."""

    #: Figure 6 columns.
    name: str = ""
    description: str = ""
    command_line: str = ""

    #: Whether Figure 8 reports the whole measured section or a
    #: per-iteration time (the stencil/Adam plots are per launch).
    reports: str = "total"

    #: Perf hints established by the paper's profiling (see
    #: repro.compiler.toolchain); keyed by version label when they differ.
    perf_hints: Mapping[str, bool] = {}

    # --- parameters --------------------------------------------------------
    @classmethod
    @abc.abstractmethod
    def parse_args(cls, argv: Sequence[str]) -> Mapping[str, object]:
        """Parse the Figure 6 command line into parameters."""

    @classmethod
    @abc.abstractmethod
    def paper_params(cls) -> Mapping[str, object]:
        """The exact parameters of the paper's runs."""

    @classmethod
    @abc.abstractmethod
    def functional_params(cls) -> Mapping[str, object]:
        """A reduced problem the thread-level simulator can execute."""

    # --- golden reference -----------------------------------------------------
    @abc.abstractmethod
    def reference(self, params: Mapping[str, object]) -> np.ndarray:
        """Vectorized NumPy host reference (the verification oracle)."""

    # --- functional execution ----------------------------------------------------
    @abc.abstractmethod
    def run_single(
        self, variant: str, params: Mapping[str, object], device: Device
    ) -> FunctionalResult:
        """Run one variant on one virtual GPU — the per-app primitive.

        This is the hook each application implements; callers go through
        :func:`run` (or the serving tier), which handles device
        resolution, sharding and resilience around it.
        """

    #: Variants the app implements functionally; NATIVE_VENDOR shares the
    #: NATIVE_LLVM sources (only the toolchain differs).
    functional_variants: Tuple[str, ...] = (
        VersionLabel.OMPX,
        VersionLabel.OMP,
        VersionLabel.NATIVE_LLVM,
    )

    # --- multi-device execution ---------------------------------------------------
    def shard_functional_params(
        self, params: Mapping[str, object], n: int
    ) -> Sequence[Mapping[str, object]]:
        """Split one functional problem into per-device parameter dicts.

        Each returned mapping must be runnable by :meth:`run_single`
        on its own device, and concatenating the per-shard outputs in
        submission order must reproduce the single-device output exactly.
        Apps implement this by building the full problem once (so the RNG
        stream is identical to a single-device run), slicing the problem
        axis with :func:`repro.sched.shard`, and passing the slices back
        through the ``_prebuilt`` parameter their builders honour.
        """
        raise AppError(f"{self.name} does not support sharded execution")

    def result_checksum(self, output: np.ndarray) -> float:
        """Checksum of a gathered output (su3 overrides for complex data)."""
        return checksum(output)

    def run_sharded(
        self, variant: str, params: Mapping[str, object], pool
    ) -> FunctionalResult:
        """Run one variant data-parallel across a :class:`~repro.sched.DevicePool`.

        The default strategy shards the problem axis with
        :meth:`shard_functional_params`, runs each shard's
        :meth:`run_single` on its own pool worker, gathers the
        futures, and concatenates the outputs — bit-identical to the
        single-device run because the per-element computation never
        crosses shard boundaries.  Stencil-1D overrides this with a true
        halo-exchange decomposition (its windows *do* cross boundaries).
        """
        from ..sched import gather

        if variant == VersionLabel.OMP:
            raise AppError(
                "the classic-OpenMP variant offloads through host mapping "
                "tables and cannot be sharded across a DevicePool; use the "
                "ompx or native variant"
            )
        shards = self.shard_functional_params(params, len(pool))
        # Shards are self-contained (each run_single call allocates,
        # computes and downloads on whatever device it is handed), so
        # they are submitted *unpinned*: round-robin placement spreads
        # them one per device exactly as pinning did, but a resilient
        # pool is free to re-place a retried shard on a surviving device.
        # ``shard=True`` is part of the PoolProtocol signature: resilient
        # pools count retries of these jobs as re-executed shards, plain
        # pools accept and ignore it.
        futures = [
            pool.submit_call(
                functools.partial(self.run_single, variant, sub),
                label=f"{self.name}:shard{i}",
                shard=True,
            )
            for i, sub in enumerate(shards)
        ]
        results = gather(futures)
        output = np.concatenate([r.output for r in results])
        return FunctionalResult(
            variant=variant,
            output=output,
            checksum=self.result_checksum(output),
            valid=False,
        )

    def run_clustered(
        self, variant: str, params: Mapping[str, object], pool
    ) -> FunctionalResult:
        """Run one variant across a :class:`~repro.cluster.ClusterPool`.

        Always uses the *generic* self-contained shard strategy — the
        base :meth:`run_sharded` — never an app's in-process override:
        Stencil-1D's halo exchange rides streams, events and peer copies
        that cannot cross process boundaries, so under a cluster it
        decomposes with deep ghost cells instead (see its
        ``shard_functional_params``).  Shards are submitted unpinned, so
        a worker lost mid-run redispatches its shards to the survivors
        and the gathered output stays bit-identical.
        """
        return BenchmarkApp.run_sharded(self, variant, params, pool)

    # --- removed pre-1.2 entry points ----------------------------------------------
    def __getattr__(self, name: str):
        if name in _REMOVED_RUNNERS:
            raise AttributeError(
                f"BenchmarkApp.{name} was removed in release 1.2 at the "
                f"end of its deprecation cycle; use "
                f"{_REMOVED_RUNNERS[name]} instead (see the README "
                f"migration table for the unified run() API)"
            )
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    # --- performance-model inputs ---------------------------------------------------
    @abc.abstractmethod
    def footprint(
        self, params: Mapping[str, object], label: str = "ompx"
    ) -> Footprint:
        """Bytes/flops of ONE kernel launch at these parameters.

        ``label`` matters when the versions are *algorithmically* different
        — e.g. the classic OpenMP Stencil cannot stage a shared tile from a
        worksharing loop, so it re-reads the halo from global memory.
        """

    @abc.abstractmethod
    def launch_geometry(self, params: Mapping[str, object]) -> Tuple[int, int]:
        """(teams, threads_per_team) requested by the host code."""

    def launches(self, params: Mapping[str, object]) -> int:
        """Kernel launches in the measured section (default: one)."""
        return 1

    @abc.abstractmethod
    def kernel_for(self, label: str):
        """The kernel object compiled for a version label."""

    def omp_region_traits(self, params: Mapping[str, object]) -> RegionTraits:
        """How the classic OpenMP version's region lowers (per app)."""
        _, block = self.launch_geometry(params)
        return RegionTraits(style="worksharing", requested_thread_limit=block)

    def static_shared_bytes(self, params: Mapping[str, object]) -> int:
        """Static ``__shared__`` usage per block (0 for most apps)."""
        return 0

    # --- version resolution -----------------------------------------------------------
    def _toolchain_for(self, label: str, system: SystemConfig) -> Tuple[str, Toolchain]:
        if label == VersionLabel.OMPX:
            return "ompx", OMPX_PROTO
        if label == VersionLabel.OMP:
            return "omp", OMP_LLVM
        language = system.native_language
        if label == VersionLabel.NATIVE_LLVM:
            return language, LLVM_CLANG
        if label == VersionLabel.NATIVE_VENDOR:
            return language, NVCC if language == "cuda" else HIPCC
        raise AppError(f"unknown version label {label!r}; expected {VersionLabel.ALL}")

    def compiled_for(
        self, label: str, system: SystemConfig, params: Mapping[str, object]
    ) -> CompiledKernel:
        """Compile the app's kernel as one of the Figure 8 versions."""
        language, toolchain = self._toolchain_for(label, system)
        region_traits = self.omp_region_traits(params) if label == VersionLabel.OMP else None
        return compile_kernel(
            self.kernel_for(label),
            system.gpu,
            language=language,
            toolchain=toolchain,
            shared_bytes=self.static_shared_bytes(params),
            region_traits=region_traits,
            hints=dict(self.perf_hints),
        )

    def footprint_ex(
        self, params: Mapping[str, object], label: str, system: SystemConfig
    ) -> Footprint:
        """System-aware footprint hook.

        Most apps delegate to :meth:`footprint`; RSBench overrides it
        because its register-spill traffic exists only where the register
        file is tight (the A100, not the MI250).
        """
        return self.footprint(params, label)

    def estimate(
        self,
        label: str,
        system: SystemConfig,
        params: Optional[Mapping[str, object]] = None,
    ) -> TimeBreakdown:
        """Price one Figure 8 cell: (this app, this version, this system)."""
        params = params or self.paper_params()
        compiled = self.compiled_for(label, system, params)
        teams, block = self.launch_geometry(params)
        return estimate_time(
            compiled,
            self.footprint_ex(params, label, system),
            block_threads=block,
            teams=teams,
            launches=self.launches(params),
        )

    def reported_seconds(self, tb: TimeBreakdown) -> float:
        """Map a TimeBreakdown onto what the benchmark itself reports."""
        return tb.per_launch_s if self.reports == "per_launch" else tb.total_s

    def transfer_plan(self, params: Mapping[str, object]) -> TransferPlan:
        """Host<->device data movement around the measured section.

        Default: no movement (the Figure 8 timings are device-side only);
        apps override with their Figure 1-style upload/download sizes.
        """
        return TransferPlan(h2d_bytes=0.0, d2h_bytes=0.0,
                            h2d_transfers=0, d2h_transfers=0)

    def estimate_end_to_end(
        self,
        label: str,
        system: SystemConfig,
        params: Optional[Mapping[str, object]] = None,
    ) -> float:
        """Measured section plus the host<->device transfers, in seconds."""
        params = params or self.paper_params()
        tb = self.estimate(label, system, params)
        return tb.total_s + self.transfer_plan(params).seconds(system.host_link)

    # --- verification helper -------------------------------------------------------------
    def verify(self, result: FunctionalResult, params: Mapping[str, object]) -> bool:
        """Compare a functional result against the NumPy golden reference."""
        expected = self.reference(params)
        ok = np.allclose(result.output, expected, rtol=1e-10, atol=1e-12)
        result.valid = bool(ok)
        return result.valid
