"""RSBench: multipole cross-section lookup (§4.2.2, Figures 8b/8h).

Command line (Figure 6): ``-m event``.  RSBench (Tramm et al., the
paper's ref [27]) is the *compute-bound* OpenMC proxy: instead of reading
tabulated cross sections, each lookup reconstructs them from resonance
poles — windowed multipole data with complex arithmetic per pole.

Materials and sampling match XSBench; each nuclide carries 100 windows of
10 poles.

Paper results: ompx beats the LLVM-compiled native on both systems, and —
the interesting one — classic ``omp`` beats CUDA on the A100: the
kernel's per-thread scratch (~2 KB) spills to local memory in the CUDA
build, while OpenMP's heap-to-shared optimization (Huber et al. CGO'22)
parks it in shared memory.  We model the spill as extra global traffic
paid only where the register file is tight (the A100, not the MI250 with
its doubled register file), converted to shared-memory traffic for the
omp version.
"""

from __future__ import annotations

import cmath
import math
from typing import Mapping, Sequence, Tuple

import numpy as np

from .. import cuda, ompx
from ..errors import AppError
from ..gpu.device import Device
from ..openmp import target_teams_distribute_parallel_for
from ..openmp.codegen import RegionTraits
from ..perf.roofline import Footprint
from ..perf.timing import SystemConfig
from .common import BenchmarkApp, FunctionalResult, VersionLabel, checksum
from .xsbench import _MAT_COUNTS, _MAT_PROBS

__all__ = ["RSBench", "rsbench_cuda_kernel", "rsbench_ompx_kernel"]

_BLOCK = 256
_N_L_VALUES = 4
#: Per-thread scratch of the lookup (the 2 KB the paper's profiling saw).
_SCRATCH_BYTES = 2048


def sig_t_factor(pseudo_k: float, sqrt_e: float) -> complex:
    """The angular sigT phase factor for one l-value (has sin/cos inside)."""
    phi = pseudo_k * sqrt_e
    return complex(math.cos(phi), -math.sin(phi))


def pole_contribution(ea: complex, rt: complex, ra: complex, sqrt_e: float, factor: complex):
    """One pole's (sigT, sigA) contribution: a complex division + products."""
    psi = 1.0 / (ea - sqrt_e)
    sig_t = (rt * psi * factor).real
    sig_a = (ra * psi).real
    return sig_t, sig_a


@cuda.kernel(sync_free=True, vectorize=False)
def rsbench_cuda_kernel(
    t, d_ea, d_rt, d_ra, d_lval, d_pseudo, d_nucs, d_dens, d_offsets, d_counts,
    d_energies, d_mats, d_out, n_iso, n_win, ppw, n_lookups, total_nucs,
):
    i = t.blockIdx.x * t.blockDim.x + t.threadIdx.x
    if i >= n_lookups:
        return
    ea = t.array(d_ea, (n_iso, n_win, ppw), np.complex128)
    rt = t.array(d_rt, (n_iso, n_win, ppw), np.complex128)
    ra = t.array(d_ra, (n_iso, n_win, ppw), np.complex128)
    lval = t.array(d_lval, (n_iso, n_win, ppw), np.int32)
    pseudo = t.array(d_pseudo, (n_iso, _N_L_VALUES), np.float64)
    nucs = t.array(d_nucs, total_nucs, np.int32)
    dens = t.array(d_dens, total_nucs, np.float64)
    offsets = t.array(d_offsets, len(_MAT_COUNTS), np.int32)
    counts = t.array(d_counts, len(_MAT_COUNTS), np.int32)
    energy = t.array(d_energies, n_lookups, np.float64)[i]
    mat = t.array(d_mats, n_lookups, np.int32)[i]

    sqrt_e = math.sqrt(energy)
    window = min(int(energy * n_win), n_win - 1)
    macro = 0.0
    base = offsets[mat]
    for j in range(counts[mat]):
        nuc = nucs[base + j]
        sig_t = 0.0
        sig_a = 0.0
        for p in range(ppw):
            factor = sig_t_factor(pseudo[nuc, lval[nuc, window, p]], sqrt_e)
            dt, da = pole_contribution(
                ea[nuc, window, p], rt[nuc, window, p], ra[nuc, window, p],
                sqrt_e, factor,
            )
            sig_t += dt
            sig_a += da
        macro += dens[base + j] * (sig_t + sig_a)
    t.array(d_out, n_lookups, np.float64)[i] = macro


@ompx.bare_kernel(sync_free=True, vectorize=False)
def rsbench_ompx_kernel(
    x, d_ea, d_rt, d_ra, d_lval, d_pseudo, d_nucs, d_dens, d_offsets, d_counts,
    d_energies, d_mats, d_out, n_iso, n_win, ppw, n_lookups, total_nucs,
):
    i = x.block_id_x() * x.block_dim_x() + x.thread_id_x()
    if i >= n_lookups:
        return
    ea = x.array(d_ea, (n_iso, n_win, ppw), np.complex128)
    rt = x.array(d_rt, (n_iso, n_win, ppw), np.complex128)
    ra = x.array(d_ra, (n_iso, n_win, ppw), np.complex128)
    lval = x.array(d_lval, (n_iso, n_win, ppw), np.int32)
    pseudo = x.array(d_pseudo, (n_iso, _N_L_VALUES), np.float64)
    nucs = x.array(d_nucs, total_nucs, np.int32)
    dens = x.array(d_dens, total_nucs, np.float64)
    offsets = x.array(d_offsets, len(_MAT_COUNTS), np.int32)
    counts = x.array(d_counts, len(_MAT_COUNTS), np.int32)
    energy = x.array(d_energies, n_lookups, np.float64)[i]
    mat = x.array(d_mats, n_lookups, np.int32)[i]

    sqrt_e = math.sqrt(energy)
    window = min(int(energy * n_win), n_win - 1)
    macro = 0.0
    base = offsets[mat]
    for j in range(counts[mat]):
        nuc = nucs[base + j]
        sig_t = 0.0
        sig_a = 0.0
        for p in range(ppw):
            factor = sig_t_factor(pseudo[nuc, lval[nuc, window, p]], sqrt_e)
            dt, da = pole_contribution(
                ea[nuc, window, p], rt[nuc, window, p], ra[nuc, window, p],
                sqrt_e, factor,
            )
            sig_t += dt
            sig_a += da
        macro += dens[base + j] * (sig_t + sig_a)
    x.array(d_out, n_lookups, np.float64)[i] = macro


class RSBench(BenchmarkApp):
    name = "RSBench"
    description = "Monte Carlo neutron transport algorithm"
    command_line = "-m event"
    reports = "total"
    perf_hints = {"lto_inlining": True}

    @classmethod
    def parse_args(cls, argv: Sequence[str]) -> Mapping[str, object]:
        if list(argv)[:2] != ["-m", "event"]:
            raise AppError(f"rsbench expects '-m event', got {argv!r}")
        return {
            "n_isotopes": 355,
            "n_windows": 100,
            "poles_per_window": 10,
            "lookups": 17_000_000,
            "block": _BLOCK,
            "mat_counts": _MAT_COUNTS,
        }

    @classmethod
    def paper_params(cls) -> Mapping[str, object]:
        return cls.parse_args(cls.command_line.split())

    @classmethod
    def functional_params(cls) -> Mapping[str, object]:
        return {
            "n_isotopes": 18,
            "n_windows": 6,
            "poles_per_window": 3,
            "lookups": 160,
            "block": 32,
            "mat_counts": (12, 3, 2, 2, 6, 5, 5, 5, 5, 5, 3, 3),
        }

    # --- problem construction ----------------------------------------------------
    def _build(self, params):
        pre = params.get("_prebuilt")
        if pre is not None:
            return pre
        rng = np.random.default_rng(4321)
        n_iso = params["n_isotopes"]
        n_win = params["n_windows"]
        ppw = params["poles_per_window"]
        counts = np.asarray(params["mat_counts"], dtype=np.int32)
        shape = (n_iso, n_win, ppw)
        # Pole positions live off the real axis so 1/(EA - sqrt_e) is tame.
        ea = (rng.random(shape) + 1j * (0.5 + rng.random(shape))).astype(np.complex128)
        rt = (rng.standard_normal(shape) + 1j * rng.standard_normal(shape)).astype(np.complex128)
        ra = (rng.standard_normal(shape) + 1j * rng.standard_normal(shape)).astype(np.complex128)
        lval = rng.integers(0, _N_L_VALUES, size=shape).astype(np.int32)
        pseudo = rng.random((n_iso, _N_L_VALUES)) * 2.0
        nucs = np.concatenate(
            [rng.choice(n_iso, size=c, replace=False) for c in counts]
        ).astype(np.int32)
        dens = rng.random(nucs.shape[0]) * 10.0
        offsets = np.concatenate(([0], np.cumsum(counts[:-1]))).astype(np.int32)
        probs = np.asarray(_MAT_PROBS)
        probs = probs / probs.sum()
        lookups = params["lookups"]
        energies = rng.random(lookups)
        mats = rng.choice(len(counts), size=lookups, p=probs).astype(np.int32)
        return ea, rt, ra, lval, pseudo, nucs, dens, offsets, counts, energies, mats

    def reference(self, params) -> np.ndarray:
        ea, rt, ra, lval, pseudo, nucs, dens, offsets, counts, energies, mats = self._build(params)
        n_win = params["n_windows"]
        ppw = params["poles_per_window"]
        sqrt_e = np.sqrt(energies)
        windows = np.minimum((energies * n_win).astype(np.int64), n_win - 1)
        out = np.zeros(len(energies))
        for m in range(len(counts)):
            sel = np.flatnonzero(mats == m)
            if sel.size == 0:
                continue
            se = sqrt_e[sel]
            win = windows[sel]
            macro = np.zeros(sel.size)
            base = offsets[m]
            for j in range(counts[m]):
                nuc = nucs[base + j]
                sig = np.zeros(sel.size)
                for p in range(ppw):
                    lv = lval[nuc, win, p]
                    phi = pseudo[nuc, lv] * se
                    factor = np.cos(phi) - 1j * np.sin(phi)
                    psi = 1.0 / (ea[nuc, win, p] - se)
                    sig += (rt[nuc, win, p] * psi * factor).real
                    sig += (ra[nuc, win, p] * psi).real
                macro += dens[base + j] * sig
            out[sel] = macro
        return out

    def shard_functional_params(self, params, n):
        """Shard the lookup events; the pole/window tables are broadcast."""
        from ..sched import shard

        ea, rt, ra, lval, pseudo, nucs, dens, offsets, counts, energies, mats = (
            self._build(params)
        )
        subs = []
        for e, m in zip(shard(energies, n), shard(mats, n)):
            sub = dict(params)
            sub["lookups"] = int(e.shape[0])
            sub["_prebuilt"] = (
                ea, rt, ra, lval, pseudo, nucs, dens, offsets, counts, e, m,
            )
            subs.append(sub)
        return subs

    # --- functional execution --------------------------------------------------------
    def run_single(self, variant: str, params, device: Device) -> FunctionalResult:
        data = self._build(params)
        ea, rt, ra, lval, pseudo, nucs, dens, offsets, counts, energies, mats = data
        n_iso = params["n_isotopes"]
        n_win = params["n_windows"]
        ppw = params["poles_per_window"]
        lookups, block = params["lookups"], params["block"]
        out = np.zeros(lookups)
        teams = (lookups + block - 1) // block

        if variant == VersionLabel.OMP:
            def body(idx, acc):
                e = acc.mapped(energies)[idx]
                m = acc.mapped(mats)[idx]
                eav = acc.mapped(ea)
                rtv = acc.mapped(rt)
                rav = acc.mapped(ra)
                lvv = acc.mapped(lval)
                psv = acc.mapped(pseudo)
                nv = acc.mapped(nucs)
                dv = acc.mapped(dens)
                ov = acc.mapped(offsets)
                cv = acc.mapped(counts)
                res = acc.mapped(out)
                for pos, (ei, mi) in enumerate(zip(e, m)):
                    sqrt_e = math.sqrt(ei)
                    window = min(int(ei * n_win), n_win - 1)
                    macro = 0.0
                    base = ov[mi]
                    for j in range(cv[mi]):
                        nuc = nv[base + j]
                        sig_t = 0.0
                        sig_a = 0.0
                        for p in range(ppw):
                            factor = sig_t_factor(psv[nuc, lvv[nuc, window, p]], sqrt_e)
                            dt, da = pole_contribution(
                                eav[nuc, window, p], rtv[nuc, window, p],
                                rav[nuc, window, p], sqrt_e, factor,
                            )
                            sig_t += dt
                            sig_a += da
                        macro += dv[base + j] * (sig_t + sig_a)
                    res[idx[pos]] = macro

            target_teams_distribute_parallel_for(
                device,
                lookups,
                vector_body=body,
                thread_limit=block,
                maps=[(a, "to") for a in (ea, rt, ra, lval, pseudo, nucs, dens,
                                           offsets, counts, energies, mats)]
                + [(out, "from")],
                traits=self.omp_region_traits(params),
            )
            result = out
        else:
            kernel = rsbench_ompx_kernel if variant == VersionLabel.OMPX else rsbench_cuda_kernel
            alloc = device.allocator
            hosts = (ea, rt, ra, lval, pseudo, nucs, dens, offsets, counts, energies, mats)
            ptrs = []
            for host in hosts:
                ptr = alloc.malloc(host.nbytes)
                alloc.memcpy_h2d(ptr, np.ascontiguousarray(host))
                ptrs.append(ptr)
            d_out = alloc.malloc(out.nbytes)
            args = (*ptrs, d_out, n_iso, n_win, ppw, lookups, int(nucs.shape[0]))
            if variant == VersionLabel.OMPX:
                ompx.target_teams_bare(device, teams, block, kernel, args)
            else:
                cuda.launch(kernel, teams, block, args, device=device)
                device.synchronize()
            result = np.zeros(lookups)
            alloc.memcpy_d2h(result, d_out)
            for ptr in (*ptrs, d_out):
                alloc.free(ptr)

        return FunctionalResult(variant=variant, output=result, checksum=checksum(result), valid=False)

    # --- performance model ---------------------------------------------------------------
    @staticmethod
    def _avg_nuclides(params) -> float:
        counts = np.asarray(params["mat_counts"], dtype=np.float64)
        probs = np.asarray(_MAT_PROBS)
        return float(counts @ (probs / probs.sum()))

    def footprint(self, params, label: str = VersionLabel.OMPX) -> Footprint:
        lookups = params["lookups"]
        ppw = params["poles_per_window"]
        nuc_lookups = lookups * self._avg_nuclides(params)
        # One window of poles per nuclide: ppw * (3 complex + 1 int) values
        # at a random window — ~5 cache lines.
        return Footprint(
            flops_fp64=nuc_lookups * ppw * 35.0,
            special_ops=nuc_lookups * (2.0 + ppw * 2.0),  # sqrt + sin/cos per pole
            int_ops=nuc_lookups * 20.0,
            global_read_bytes=nuc_lookups * 5 * 128.0,
            global_write_bytes=lookups * 8.0,
            warp_efficiency=0.30,
        )

    def footprint_ex(self, params, label: str, system: SystemConfig) -> Footprint:
        fp = self.footprint(params, label)
        if system.gpu.vendor != "nvidia":
            # The MI250's doubled register file absorbs the scratch; no
            # spill on AMD (hence no omp advantage there, Figure 8h).
            return fp
        # A100: ~2 KB of per-lookup scratch traffic.  Native and ompx
        # builds pay it as local-memory (global) traffic; the omp build's
        # heap-to-shared optimization turns it into shared-memory traffic.
        spill = params["lookups"] * float(_SCRATCH_BYTES) * 0.25
        if label == VersionLabel.OMP:
            return Footprint(
                **{**fp.__dict__, "shared_bytes": fp.shared_bytes + spill}
            )
        return fp.with_extra_global_bytes(spill)

    def transfer_plan(self, params):
        """Pole tables and event arrays up, macro XS results down."""
        from ..perf.transfer import TransferPlan

        n_iso = params["n_isotopes"]
        n_win = params["n_windows"]
        ppw = params["poles_per_window"]
        lookups = params["lookups"]
        h2d = n_iso * n_win * ppw * (3 * 16.0 + 4.0) + lookups * 12.0
        return TransferPlan(h2d_bytes=h2d, d2h_bytes=lookups * 8.0,
                            h2d_transfers=11, d2h_transfers=1)

    def launch_geometry(self, params) -> Tuple[int, int]:
        lookups, block = params["lookups"], params["block"]
        return ((lookups + block - 1) // block, block)

    def kernel_for(self, label: str):
        if label == VersionLabel.OMPX:
            return rsbench_ompx_kernel
        return rsbench_cuda_kernel

    def omp_region_traits(self, params) -> RegionTraits:
        # SPMD-amenable worksharing with ~2 KB of escaping locals — the
        # heap-to-shared candidate the paper's profiling identified.
        return RegionTraits(
            style="worksharing",
            spmd_amenable=True,
            requested_thread_limit=params["block"],
            escaping_local_bytes=_SCRATCH_BYTES,
        )
