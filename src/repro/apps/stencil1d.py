"""Stencil-1D: shared-memory 1-D stencil (paper §4.2.6, Figures 8f/8l).

Command line (Figure 6): ``134217728 1000`` — a 134M-element array updated
for 1000 iterations.  The CUDA version (adapted from a CUDA tutorial on
shared memory) stages a block tile plus halos into shared memory, syncs,
and sums a ``2*RADIUS + 1`` window per element.

Paper results: the ompx version beats the natives on both systems; the
classic ``omp`` version is ~100x slower because the generic-mode state
machine cannot be rewritten (and a worksharing loop cannot stage the tile,
so every output re-reads its window from global memory).
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

import numpy as np

from .. import cuda, ompx
from ..errors import AppError
from ..gpu.device import Device
from ..openmp import target_teams_distribute_parallel_for
from ..openmp.codegen import RegionTraits
from ..perf.roofline import Footprint
from .common import BenchmarkApp, FunctionalResult, VersionLabel, checksum

__all__ = ["Stencil1D", "stencil_cuda_kernel", "stencil_ompx_kernel"]

_RADIUS = 7
_BLOCK = 256
_DTYPE = np.float64


def apply_boundary(value, in_range):
    """The stencil's zero boundary — kept as a device function so the
    toolchain models see a call in the hot loop (the tutorial code has an
    equivalent helper).  ``np.where`` keeps it polymorphic over scalar
    threads and lane batches."""
    return np.where(in_range, value, 0.0)


@cuda.kernel(vectorize=True)
def stencil_cuda_kernel(t, d_in, d_out, n, r):
    """The CUDA tutorial kernel: tile + halo staging, sync, windowed sum."""
    bdim = t.blockDim.x
    tile = t.shared("tile", bdim + 2 * r, _DTYPE)
    gid = t.blockIdx.x * bdim + t.threadIdx.x
    lid = t.threadIdx.x + r
    vin = t.array(d_in, n, _DTYPE)
    t.store(tile, lid, apply_boundary(t.load(vin, gid), gid < n))
    halo = t.threadIdx.x < r
    left = gid - r
    t.store(tile, lid - r, apply_boundary(t.load(vin, left), left >= 0), mask=halo)
    right = gid + bdim
    t.store(tile, lid + bdim, apply_boundary(t.load(vin, right), right < n), mask=halo)
    t.syncthreads()
    result = 0.0
    for offset in range(-r, r + 1):
        result = result + t.load(tile, lid + offset)
    vout = t.array(d_out, n, _DTYPE)
    t.store(vout, gid, result, mask=gid < n)


@ompx.bare_kernel(vectorize=True)
def stencil_ompx_kernel(x, d_in, d_out, n, r):
    """The ompx port: the CUDA body with spellings swapped (paper §3.1)."""
    bdim = x.block_dim_x()
    tile = x.groupprivate("tile", bdim + 2 * r, _DTYPE)
    gid = x.block_id_x() * bdim + x.thread_id_x()
    lid = x.thread_id_x() + r
    vin = x.array(d_in, n, _DTYPE)
    x.store(tile, lid, apply_boundary(x.load(vin, gid), gid < n))
    halo = x.thread_id_x() < r
    left = gid - r
    x.store(tile, lid - r, apply_boundary(x.load(vin, left), left >= 0), mask=halo)
    right = gid + bdim
    x.store(tile, lid + bdim, apply_boundary(x.load(vin, right), right < n), mask=halo)
    x.sync_thread_block()
    result = 0.0
    for offset in range(-r, r + 1):
        result = result + x.load(tile, lid + offset)
    vout = x.array(d_out, n, _DTYPE)
    x.store(vout, gid, result, mask=gid < n)


def stencil_omp_body(indices: np.ndarray, acc, h_in: np.ndarray, h_out: np.ndarray, r: int):
    """The classic-OpenMP worksharing body: windowed sum from global memory.

    No tile is possible from a ``distribute parallel for``; each iteration
    reads its whole window — the traffic difference the footprint prices.
    """
    vin = acc.mapped(h_in)
    vout = acc.mapped(h_out)
    n = vin.shape[0]
    padded = np.zeros(n + 2 * r, dtype=vin.dtype)
    padded[r : r + n] = vin
    acc_sum = np.zeros(len(indices), dtype=vin.dtype)
    for offset in range(2 * r + 1):
        acc_sum += padded[indices + offset]
    vout[indices] = acc_sum


class Stencil1D(BenchmarkApp):
    name = "Stencil 1D"
    description = "1D version of stencil computation"
    command_line = "134217728 1000"
    reports = "per_launch"
    perf_hints = {"lto_inlining": True}

    # --- parameters ---------------------------------------------------------
    @classmethod
    def parse_args(cls, argv: Sequence[str]) -> Mapping[str, object]:
        if len(argv) != 2:
            raise AppError(f"stencil1d expects '<length> <iterations>', got {argv!r}")
        n, iterations = int(argv[0]), int(argv[1])
        if n <= 0 or iterations <= 0:
            raise AppError("length and iterations must be positive")
        return {"n": n, "iterations": iterations, "radius": _RADIUS, "block": _BLOCK}

    @classmethod
    def paper_params(cls) -> Mapping[str, object]:
        return cls.parse_args(cls.command_line.split())

    @classmethod
    def functional_params(cls) -> Mapping[str, object]:
        # Three iterations, not one: the reduced problem still exercises
        # the ping-pong buffers and (sharded) the per-iteration halo
        # exchange, and gives mid-run fault plans ('kernel_fault@3')
        # later launches to fire on.
        return {"n": 1000, "iterations": 3, "radius": 3, "block": 64}

    # --- golden reference ------------------------------------------------------
    def _input(self, params) -> np.ndarray:
        rng = np.random.default_rng(42)
        return rng.random(params["n"]).astype(_DTYPE)

    def reference(self, params) -> np.ndarray:
        data = self._input(params)
        r = params["radius"]
        out = data
        for _ in range(params["iterations"]):
            padded = np.zeros(len(out) + 2 * r, dtype=_DTYPE)
            padded[r : r + len(out)] = out
            windows = np.lib.stride_tricks.sliding_window_view(padded, 2 * r + 1)
            out = windows.sum(axis=1)
        return out

    # --- functional execution ------------------------------------------------------
    def run_single(self, variant: str, params, device: Device) -> FunctionalResult:
        n, r, block = params["n"], params["radius"], params["block"]
        iterations = params["iterations"]
        h_in = params.get("_prebuilt")
        if h_in is None:
            h_in = self._input(params)
        h_out = np.zeros(n, dtype=_DTYPE)
        teams = (n + block - 1) // block

        if variant == VersionLabel.OMP:
            cur = h_in.copy()
            for _ in range(iterations):
                target_teams_distribute_parallel_for(
                    device,
                    n,
                    vector_body=lambda idx, acc: stencil_omp_body(idx, acc, cur, h_out, r),
                    num_teams=teams,
                    thread_limit=block,
                    maps=[(cur, "to"), (h_out, "from")],
                    traits=self.omp_region_traits(params),
                )
                cur, h_out = h_out.copy(), h_out
            result = cur
        else:
            kernel = stencil_ompx_kernel if variant == VersionLabel.OMPX else stencil_cuda_kernel
            alloc = device.allocator
            d_a = alloc.malloc(n * 8)
            d_b = alloc.malloc(n * 8)
            alloc.memcpy_h2d(d_a, h_in)
            for _ in range(iterations):
                if variant == VersionLabel.OMPX:
                    ompx.target_teams_bare(device, teams, block, kernel, (d_a, d_b, n, r))
                else:
                    cuda.launch(kernel, teams, block, (d_a, d_b, n, r), device=device)
                    device.synchronize()
                d_a, d_b = d_b, d_a
            result = np.zeros(n, dtype=_DTYPE)
            alloc.memcpy_d2h(result, d_a)
            alloc.free(d_a)
            alloc.free(d_b)

        trim = params.get("_trim")
        if trim is not None:
            left, right = trim
            result = result[left : len(result) - right if right else None]
        return FunctionalResult(variant=variant, output=result, checksum=checksum(result), valid=False)

    # --- multi-device execution ---------------------------------------------------
    def shard_functional_params(self, params, n_shards: int):
        """Deep-ghost decomposition for *process-isolated* execution.

        The in-process :meth:`run_sharded` exchanges ``radius`` halo
        cells per iteration over the peer interconnect; across process
        boundaries there is no interconnect, so each shard instead
        carries ``radius * iterations`` ghost cells per interior side —
        enough true data for the full dependency cone of every kept cell
        over the whole iteration loop — and trims the ghosts off after
        running all iterations locally.  Bit-identical to the
        single-device run: every kept output's window sums the same
        values in the same order, and a zero local boundary only ever
        coincides with the true global boundary.
        """
        from ..sched import shard

        n, r = params["n"], params["radius"]
        iterations = params["iterations"]
        ghost = r * iterations
        full = self._input(params)
        sizes = [int(c.shape[0]) for c in shard(full, n_shards)]
        if min(sizes) < 1:
            raise AppError(
                f"stencil cannot split {n} cells across {n_shards} shards"
            )
        subs = []
        start = 0
        for size in sizes:
            lo = max(start - ghost, 0)
            hi = min(start + size + ghost, n)
            sub = dict(params)
            sub["n"] = hi - lo
            sub["_prebuilt"] = full[lo:hi].copy()
            sub["_trim"] = (start - lo, hi - (start + size))
            subs.append(sub)
            start += size
        return subs

    def run_sharded(self, variant: str, params, pool) -> FunctionalResult:
        """True domain decomposition: per-iteration halo exchange over peers.

        Unlike the embarrassingly parallel apps, a stencil window crosses
        shard boundaries, so each device owns a contiguous chunk padded by
        ``radius`` halo cells per side.  Every iteration the devices trade
        freshly computed edge cells over the peer interconnect
        (``ompx_memcpy_peer`` enqueued on the destination device's default
        stream), gated on the neighbours' kernel events — the cross-device
        :meth:`~repro.gpu.stream.Stream.wait_event` idiom.  All ordering
        lives in streams and events; the host never synchronizes inside
        the iteration loop.
        """
        from ..gpu.launch import LaunchConfig, launch_kernel
        from ..ompx.host import ompx_memcpy_peer
        from ..sched import gather, shard

        if variant == VersionLabel.OMP:
            raise AppError(
                "the classic-OpenMP stencil offloads through host mapping "
                "tables and cannot be sharded across a DevicePool; use the "
                "ompx or native variant"
            )
        kernel = stencil_ompx_kernel if variant == VersionLabel.OMPX else stencil_cuda_kernel
        entry = getattr(kernel, "entry", kernel)
        n, r, block = params["n"], params["radius"], params["block"]
        iterations = params["iterations"]
        full = self._input(params)
        chunks = shard(full, len(pool))
        sizes = [int(c.shape[0]) for c in chunks]
        if min(sizes) < r:
            raise AppError(
                f"stencil shards must hold at least radius={r} cells "
                f"(smallest shard has {min(sizes)}); use fewer devices"
            )
        ndev = len(chunks)
        devices = pool.devices[:ndev]
        starts = [0]
        for size in sizes[:-1]:
            starts.append(starts[-1] + size)

        # Direct links between neighbours: the copies would still succeed
        # staged through host memory, but the modeled cost (and the trace's
        # path= annotation) should ride the peer interconnect.
        for left, right in zip(devices, devices[1:]):
            left.enable_peer_access(right)
            right.enable_peer_access(left)

        # Per-device padded double buffers, uploaded with their true halos
        # so the first kernel launch needs no exchange.
        def make_setup(d):
            def setup(device):
                start, size = starts[d], sizes[d]
                padded = np.zeros(size + 2 * r, dtype=_DTYPE)
                lo, hi = max(start - r, 0), min(start + size + r, n)
                padded[lo - start + r : hi - start + r] = full[lo:hi]
                alloc = device.allocator
                front, back = alloc.malloc(padded.nbytes), alloc.malloc(padded.nbytes)
                alloc.memcpy_h2d(front, padded)
                return [front, back]
            return setup

        bufs = gather([
            pool.submit_call(make_setup(d), device=d, label=f"stencil-setup{d}")
            for d in range(ndev)
        ])

        streams = [dev.default_stream for dev in devices]
        kern_ev = [None] * ndev
        halo_ev = [None] * ndev
        for it in range(iterations):
            prev_halo = list(halo_ev)
            for d in range(ndev):
                s = streams[d]
                # The neighbours' previous halo copies read this device's
                # buffers; wait for them before the kernel overwrites one.
                for nb in (d - 1, d + 1):
                    if 0 <= nb < ndev and prev_halo[nb] is not None:
                        s.wait_event(prev_halo[nb])
                npad = sizes[d] + 2 * r
                config = LaunchConfig.create(
                    (npad + block - 1) // block, block, stream=s
                )
                launch_kernel(
                    config, entry, (bufs[d][0], bufs[d][1], npad, r),
                    devices[d], synchronous=False,
                )
                kern_ev[d] = s.record_event()
            if it + 1 == iterations:
                break
            for d in range(ndev):
                s, dev = streams[d], devices[d]
                out = bufs[d][1]
                for nb in (d - 1, d + 1):
                    if 0 <= nb < ndev:
                        s.wait_event(kern_ev[nb])
                if d > 0:
                    # Left halo <- left neighbour's last r interior cells.
                    src = bufs[d - 1][1] + sizes[d - 1] * 8
                    ompx_memcpy_peer(out, dev, src, devices[d - 1], r * 8, stream=s)
                else:
                    s.enqueue(
                        lambda dev=dev, ptr=out: dev.allocator.memset(ptr, 0, r * 8),
                        label="halo-zero:left",
                    )
                if d + 1 < ndev:
                    # Right halo <- right neighbour's first r interior cells.
                    src = bufs[d + 1][1] + r * 8
                    ompx_memcpy_peer(
                        out + (r + sizes[d]) * 8, dev, src, devices[d + 1],
                        r * 8, stream=s,
                    )
                else:
                    s.enqueue(
                        lambda dev=dev, ptr=out + (r + sizes[d]) * 8:
                            dev.allocator.memset(ptr, 0, r * 8),
                        label="halo-zero:right",
                    )
                halo_ev[d] = s.record_event()
            for d in range(ndev):
                bufs[d].reverse()
        for s in streams:
            s.synchronize()

        def make_download(d):
            def download(device):
                out = np.zeros(sizes[d], dtype=_DTYPE)
                alloc = device.allocator
                alloc.memcpy_d2h(out, bufs[d][1] + r * 8)
                for ptr in bufs[d]:
                    alloc.free(ptr)
                return out
            return download

        parts = gather([
            pool.submit_call(make_download(d), device=d, label=f"stencil-gather{d}")
            for d in range(ndev)
        ])
        result = np.concatenate(parts)
        return FunctionalResult(
            variant=variant, output=result, checksum=checksum(result), valid=False
        )

    # --- performance model -----------------------------------------------------------
    def footprint(self, params, label: str = VersionLabel.OMPX) -> Footprint:
        n, r = params["n"], params["radius"]
        if label == VersionLabel.OMP:
            # No shared tile: every output re-reads its (2r+1)-wide window,
            # and generic-mode's strided per-thread chunks defeat the
            # coalescing the cache hierarchy would otherwise recover.
            reads = n * 8.0 * (2 * r + 1)
            shared = 0.0
        else:
            reads = n * 8.0
            shared = n * 8.0 * (2 * r + 2)
        return Footprint(
            flops_fp64=n * (2 * r + 1),
            global_read_bytes=reads,
            global_write_bytes=n * 8.0,
            shared_bytes=shared,
        )

    def transfer_plan(self, params):
        """One array up before the iteration loop, one down after."""
        from ..perf.transfer import TransferPlan

        n = params["n"]
        return TransferPlan(h2d_bytes=n * 8.0, d2h_bytes=n * 8.0)

    def launch_geometry(self, params) -> Tuple[int, int]:
        n, block = params["n"], params["block"]
        return ((n + block - 1) // block, block)

    def launches(self, params) -> int:
        return params["iterations"]

    def kernel_for(self, label: str):
        if label == VersionLabel.OMPX:
            return stencil_ompx_kernel
        if label == VersionLabel.OMP:
            return stencil_omp_body
        return stencil_cuda_kernel

    def omp_region_traits(self, params) -> RegionTraits:
        # The HeCBench OpenMP port keeps serial team code around the loop,
        # so SPMD-ization fails and the state machine survives — the §4.2.6
        # explanation for the ~100x collapse.
        return RegionTraits(
            style="simt",
            spmd_amenable=False,
            state_machine_rewritable=False,
            requested_thread_limit=params["block"],
        )

    def static_shared_bytes(self, params) -> int:
        return (params["block"] + 2 * params["radius"]) * 8
