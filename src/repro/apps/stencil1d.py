"""Stencil-1D: shared-memory 1-D stencil (paper §4.2.6, Figures 8f/8l).

Command line (Figure 6): ``134217728 1000`` — a 134M-element array updated
for 1000 iterations.  The CUDA version (adapted from a CUDA tutorial on
shared memory) stages a block tile plus halos into shared memory, syncs,
and sums a ``2*RADIUS + 1`` window per element.

Paper results: the ompx version beats the natives on both systems; the
classic ``omp`` version is ~100x slower because the generic-mode state
machine cannot be rewritten (and a worksharing loop cannot stage the tile,
so every output re-reads its window from global memory).
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

import numpy as np

from .. import cuda, ompx
from ..errors import AppError
from ..gpu.device import Device
from ..openmp import target_teams_distribute_parallel_for
from ..openmp.codegen import RegionTraits
from ..perf.roofline import Footprint
from .common import BenchmarkApp, FunctionalResult, VersionLabel, checksum

__all__ = ["Stencil1D", "stencil_cuda_kernel", "stencil_ompx_kernel"]

_RADIUS = 7
_BLOCK = 256
_DTYPE = np.float64


def apply_boundary(value, in_range):
    """The stencil's zero boundary — kept as a device function so the
    toolchain models see a call in the hot loop (the tutorial code has an
    equivalent helper).  ``np.where`` keeps it polymorphic over scalar
    threads and lane batches."""
    return np.where(in_range, value, 0.0)


@cuda.kernel(vectorize=True)
def stencil_cuda_kernel(t, d_in, d_out, n, r):
    """The CUDA tutorial kernel: tile + halo staging, sync, windowed sum."""
    bdim = t.blockDim.x
    tile = t.shared("tile", bdim + 2 * r, _DTYPE)
    gid = t.blockIdx.x * bdim + t.threadIdx.x
    lid = t.threadIdx.x + r
    vin = t.array(d_in, n, _DTYPE)
    t.store(tile, lid, apply_boundary(t.load(vin, gid), gid < n))
    halo = t.threadIdx.x < r
    left = gid - r
    t.store(tile, lid - r, apply_boundary(t.load(vin, left), left >= 0), mask=halo)
    right = gid + bdim
    t.store(tile, lid + bdim, apply_boundary(t.load(vin, right), right < n), mask=halo)
    t.syncthreads()
    result = 0.0
    for offset in range(-r, r + 1):
        result = result + t.load(tile, lid + offset)
    vout = t.array(d_out, n, _DTYPE)
    t.store(vout, gid, result, mask=gid < n)


@ompx.bare_kernel(vectorize=True)
def stencil_ompx_kernel(x, d_in, d_out, n, r):
    """The ompx port: the CUDA body with spellings swapped (paper §3.1)."""
    bdim = x.block_dim_x()
    tile = x.groupprivate("tile", bdim + 2 * r, _DTYPE)
    gid = x.block_id_x() * bdim + x.thread_id_x()
    lid = x.thread_id_x() + r
    vin = x.array(d_in, n, _DTYPE)
    x.store(tile, lid, apply_boundary(x.load(vin, gid), gid < n))
    halo = x.thread_id_x() < r
    left = gid - r
    x.store(tile, lid - r, apply_boundary(x.load(vin, left), left >= 0), mask=halo)
    right = gid + bdim
    x.store(tile, lid + bdim, apply_boundary(x.load(vin, right), right < n), mask=halo)
    x.sync_thread_block()
    result = 0.0
    for offset in range(-r, r + 1):
        result = result + x.load(tile, lid + offset)
    vout = x.array(d_out, n, _DTYPE)
    x.store(vout, gid, result, mask=gid < n)


def stencil_omp_body(indices: np.ndarray, acc, h_in: np.ndarray, h_out: np.ndarray, r: int):
    """The classic-OpenMP worksharing body: windowed sum from global memory.

    No tile is possible from a ``distribute parallel for``; each iteration
    reads its whole window — the traffic difference the footprint prices.
    """
    vin = acc.mapped(h_in)
    vout = acc.mapped(h_out)
    n = vin.shape[0]
    padded = np.zeros(n + 2 * r, dtype=vin.dtype)
    padded[r : r + n] = vin
    acc_sum = np.zeros(len(indices), dtype=vin.dtype)
    for offset in range(2 * r + 1):
        acc_sum += padded[indices + offset]
    vout[indices] = acc_sum


class Stencil1D(BenchmarkApp):
    name = "Stencil 1D"
    description = "1D version of stencil computation"
    command_line = "134217728 1000"
    reports = "per_launch"
    perf_hints = {"lto_inlining": True}

    # --- parameters ---------------------------------------------------------
    @classmethod
    def parse_args(cls, argv: Sequence[str]) -> Mapping[str, object]:
        if len(argv) != 2:
            raise AppError(f"stencil1d expects '<length> <iterations>', got {argv!r}")
        n, iterations = int(argv[0]), int(argv[1])
        if n <= 0 or iterations <= 0:
            raise AppError("length and iterations must be positive")
        return {"n": n, "iterations": iterations, "radius": _RADIUS, "block": _BLOCK}

    @classmethod
    def paper_params(cls) -> Mapping[str, object]:
        return cls.parse_args(cls.command_line.split())

    @classmethod
    def functional_params(cls) -> Mapping[str, object]:
        return {"n": 1000, "iterations": 1, "radius": 3, "block": 64}

    # --- golden reference ------------------------------------------------------
    def _input(self, params) -> np.ndarray:
        rng = np.random.default_rng(42)
        return rng.random(params["n"]).astype(_DTYPE)

    def reference(self, params) -> np.ndarray:
        data = self._input(params)
        r = params["radius"]
        out = data
        for _ in range(params["iterations"]):
            padded = np.zeros(len(out) + 2 * r, dtype=_DTYPE)
            padded[r : r + len(out)] = out
            windows = np.lib.stride_tricks.sliding_window_view(padded, 2 * r + 1)
            out = windows.sum(axis=1)
        return out

    # --- functional execution ------------------------------------------------------
    def run_functional(self, variant: str, params, device: Device) -> FunctionalResult:
        n, r, block = params["n"], params["radius"], params["block"]
        iterations = params["iterations"]
        h_in = self._input(params)
        h_out = np.zeros(n, dtype=_DTYPE)
        teams = (n + block - 1) // block

        if variant == VersionLabel.OMP:
            cur = h_in.copy()
            for _ in range(iterations):
                target_teams_distribute_parallel_for(
                    device,
                    n,
                    vector_body=lambda idx, acc: stencil_omp_body(idx, acc, cur, h_out, r),
                    num_teams=teams,
                    thread_limit=block,
                    maps=[(cur, "to"), (h_out, "from")],
                    traits=self.omp_region_traits(params),
                )
                cur, h_out = h_out.copy(), h_out
            result = cur
        else:
            kernel = stencil_ompx_kernel if variant == VersionLabel.OMPX else stencil_cuda_kernel
            alloc = device.allocator
            d_a = alloc.malloc(n * 8)
            d_b = alloc.malloc(n * 8)
            alloc.memcpy_h2d(d_a, h_in)
            for _ in range(iterations):
                if variant == VersionLabel.OMPX:
                    ompx.target_teams_bare(device, teams, block, kernel, (d_a, d_b, n, r))
                else:
                    cuda.launch(kernel, teams, block, (d_a, d_b, n, r), device=device)
                    device.synchronize()
                d_a, d_b = d_b, d_a
            result = np.zeros(n, dtype=_DTYPE)
            alloc.memcpy_d2h(result, d_a)
            alloc.free(d_a)
            alloc.free(d_b)

        return FunctionalResult(variant=variant, output=result, checksum=checksum(result), valid=False)

    # --- performance model -----------------------------------------------------------
    def footprint(self, params, label: str = VersionLabel.OMPX) -> Footprint:
        n, r = params["n"], params["radius"]
        if label == VersionLabel.OMP:
            # No shared tile: every output re-reads its (2r+1)-wide window,
            # and generic-mode's strided per-thread chunks defeat the
            # coalescing the cache hierarchy would otherwise recover.
            reads = n * 8.0 * (2 * r + 1)
            shared = 0.0
        else:
            reads = n * 8.0
            shared = n * 8.0 * (2 * r + 2)
        return Footprint(
            flops_fp64=n * (2 * r + 1),
            global_read_bytes=reads,
            global_write_bytes=n * 8.0,
            shared_bytes=shared,
        )

    def transfer_plan(self, params):
        """One array up before the iteration loop, one down after."""
        from ..perf.transfer import TransferPlan

        n = params["n"]
        return TransferPlan(h2d_bytes=n * 8.0, d2h_bytes=n * 8.0)

    def launch_geometry(self, params) -> Tuple[int, int]:
        n, block = params["n"], params["block"]
        return ((n + block - 1) // block, block)

    def launches(self, params) -> int:
        return params["iterations"]

    def kernel_for(self, label: str):
        if label == VersionLabel.OMPX:
            return stencil_ompx_kernel
        if label == VersionLabel.OMP:
            return stencil_omp_body
        return stencil_cuda_kernel

    def omp_region_traits(self, params) -> RegionTraits:
        # The HeCBench OpenMP port keeps serial team code around the loop,
        # so SPMD-ization fails and the state machine survives — the §4.2.6
        # explanation for the ~100x collapse.
        return RegionTraits(
            style="simt",
            spmd_amenable=False,
            state_machine_rewritable=False,
            requested_thread_limit=params["block"],
        )

    def static_shared_bytes(self, params) -> int:
        return (params["block"] + 2 * params["radius"]) * 8
