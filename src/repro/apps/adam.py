"""Adam: adaptive moment estimation optimizer (paper §4.2.5, Figures 8e/8k).

Command line (Figure 6): ``10000 200 100`` — 10 000 parameters, 200
optimizer time steps per kernel, 100 repetitions of the kernel launch.

Each thread owns one parameter and walks all time steps, updating the
first/second moment estimates and the weight.  No intra-block
communication at all — which is exactly why the paper's ``omp`` result is
so diagnostic: the kernel itself is trivial, and the 8x slowdown is purely
the LLVM thread-limit bug launching 32-thread blocks.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

import numpy as np

from .. import cuda, ompx
from ..errors import AppError
from ..gpu.device import Device
from ..openmp import target_teams_distribute_parallel_for
from ..openmp.codegen import RegionTraits
from ..perf.roofline import Footprint
from .common import BenchmarkApp, FunctionalResult, VersionLabel, checksum

__all__ = ["Adam", "adam_cuda_kernel", "adam_ompx_kernel"]

_BLOCK = 256
_LR = 1e-3
_BETA1 = 0.9
_BETA2 = 0.999
_EPS = 1e-8


def adam_update(w, g, m, v, b1_t, b2_t):
    """One Adam step for one parameter (the __device__ helper).

    ``np.sqrt`` (bit-identical to ``math.sqrt`` on scalars) keeps the
    helper polymorphic over scalar threads and lane batches.
    """
    m = _BETA1 * m + (1.0 - _BETA1) * g
    v = _BETA2 * v + (1.0 - _BETA2) * g * g
    m_hat = m / (1.0 - b1_t)
    v_hat = v / (1.0 - b2_t)
    w = w - _LR * m_hat / (np.sqrt(v_hat) + _EPS)
    return w, m, v


@cuda.kernel(sync_free=True, vectorize=True)
def adam_cuda_kernel(t, d_w, d_g, d_m, d_v, n, steps):
    i = t.blockIdx.x * t.blockDim.x + t.threadIdx.x
    active = i < n
    wv = t.array(d_w, n, np.float64)
    gv = t.array(d_g, n, np.float64)
    mv = t.array(d_m, n, np.float64)
    vv = t.array(d_v, n, np.float64)
    w = t.load(wv, i)
    g = t.load(gv, i)
    m = t.load(mv, i)
    v = t.load(vv, i)
    b1_t = 1.0
    b2_t = 1.0
    for _ in range(steps):
        b1_t *= _BETA1
        b2_t *= _BETA2
        w, m, v = adam_update(w, g, m, v, b1_t, b2_t)
    t.store(wv, i, w, mask=active)
    t.store(mv, i, m, mask=active)
    t.store(vv, i, v, mask=active)


@ompx.bare_kernel(sync_free=True, vectorize=True)
def adam_ompx_kernel(x, d_w, d_g, d_m, d_v, n, steps):
    i = x.block_id_x() * x.block_dim_x() + x.thread_id_x()
    active = i < n
    wv = x.array(d_w, n, np.float64)
    gv = x.array(d_g, n, np.float64)
    mv = x.array(d_m, n, np.float64)
    vv = x.array(d_v, n, np.float64)
    w = x.load(wv, i)
    g = x.load(gv, i)
    m = x.load(mv, i)
    v = x.load(vv, i)
    b1_t = 1.0
    b2_t = 1.0
    for _ in range(steps):
        b1_t *= _BETA1
        b2_t *= _BETA2
        w, m, v = adam_update(w, g, m, v, b1_t, b2_t)
    x.store(wv, i, w, mask=active)
    x.store(mv, i, m, mask=active)
    x.store(vv, i, v, mask=active)


def adam_omp_body(indices: np.ndarray, acc, h_w, h_g, h_m, h_v, steps: int):
    """Classic-OpenMP worksharing body (vectorized over the team's chunk)."""
    w = acc.mapped(h_w)
    g = acc.mapped(h_g)
    m = acc.mapped(h_m)
    v = acc.mapped(h_v)
    wi, gi, mi, vi = w[indices], g[indices], m[indices], v[indices]
    b1_t = 1.0
    b2_t = 1.0
    for _ in range(steps):
        b1_t *= _BETA1
        b2_t *= _BETA2
        mi = _BETA1 * mi + (1.0 - _BETA1) * gi
        vi = _BETA2 * vi + (1.0 - _BETA2) * gi * gi
        m_hat = mi / (1.0 - b1_t)
        v_hat = vi / (1.0 - b2_t)
        wi = wi - _LR * m_hat / (np.sqrt(v_hat) + _EPS)
    w[indices] = wi
    m[indices] = mi
    v[indices] = vi


class Adam(BenchmarkApp):
    name = "Adam"
    description = "Adaptive moment estimation"
    command_line = "10000 200 100"
    reports = "total"
    perf_hints = {"lto_inlining": True}

    @classmethod
    def parse_args(cls, argv: Sequence[str]) -> Mapping[str, object]:
        if len(argv) != 3:
            raise AppError(f"adam expects '<params> <steps> <repeat>', got {argv!r}")
        n, steps, repeat = (int(a) for a in argv)
        if min(n, steps, repeat) <= 0:
            raise AppError("all adam arguments must be positive")
        return {"n": n, "steps": steps, "repeat": repeat, "block": _BLOCK}

    @classmethod
    def paper_params(cls) -> Mapping[str, object]:
        return cls.parse_args(cls.command_line.split())

    @classmethod
    def functional_params(cls) -> Mapping[str, object]:
        return {"n": 300, "steps": 5, "repeat": 2, "block": 64}

    # --- golden reference -----------------------------------------------------
    def _inputs(self, params):
        pre = params.get("_prebuilt")
        if pre is not None:
            return pre
        rng = np.random.default_rng(7)
        n = params["n"]
        return (
            rng.standard_normal(n),          # w
            rng.standard_normal(n) * 0.01,   # g
            np.zeros(n),                     # m
            np.zeros(n),                     # v
        )

    def reference(self, params) -> np.ndarray:
        w, g, m, v = (a.copy() for a in self._inputs(params))
        for _ in range(params["repeat"]):
            b1_t = 1.0
            b2_t = 1.0
            for _ in range(params["steps"]):
                b1_t *= _BETA1
                b2_t *= _BETA2
                m = _BETA1 * m + (1.0 - _BETA1) * g
                v = _BETA2 * v + (1.0 - _BETA2) * g * g
                m_hat = m / (1.0 - b1_t)
                v_hat = v / (1.0 - b2_t)
                w = w - _LR * m_hat / (np.sqrt(v_hat) + _EPS)
        return w

    def shard_functional_params(self, params, n):
        """Shard the parameter vector; each element's walk is independent."""
        from ..sched import shard

        h_w, h_g, h_m, h_v = self._inputs(params)
        subs = []
        for w, g, m, v in zip(
            shard(h_w, n), shard(h_g, n), shard(h_m, n), shard(h_v, n)
        ):
            sub = dict(params)
            sub["n"] = int(w.shape[0])
            sub["_prebuilt"] = (w, g, m, v)
            subs.append(sub)
        return subs

    # --- functional execution ------------------------------------------------------
    def run_single(self, variant: str, params, device: Device) -> FunctionalResult:
        n, steps, repeat, block = params["n"], params["steps"], params["repeat"], params["block"]
        h_w, h_g, h_m, h_v = (a.copy() for a in self._inputs(params))
        teams = (n + block - 1) // block

        if variant == VersionLabel.OMP:
            for _ in range(repeat):
                target_teams_distribute_parallel_for(
                    device,
                    n,
                    vector_body=lambda idx, acc: adam_omp_body(idx, acc, h_w, h_g, h_m, h_v, steps),
                    thread_limit=block,
                    maps=[(h_w, "tofrom"), (h_g, "to"), (h_m, "tofrom"), (h_v, "tofrom")],
                    traits=self.omp_region_traits(params),
                )
            result = h_w
        else:
            kernel = adam_ompx_kernel if variant == VersionLabel.OMPX else adam_cuda_kernel
            alloc = device.allocator
            ptrs = [alloc.malloc(n * 8) for _ in range(4)]
            for ptr, host in zip(ptrs, (h_w, h_g, h_m, h_v)):
                alloc.memcpy_h2d(ptr, host)
            for _ in range(repeat):
                if variant == VersionLabel.OMPX:
                    ompx.target_teams_bare(device, teams, block, kernel, (*ptrs, n, steps))
                else:
                    cuda.launch(kernel, teams, block, (*ptrs, n, steps), device=device)
                    device.synchronize()
            result = np.zeros(n)
            alloc.memcpy_d2h(result, ptrs[0])
            for ptr in ptrs:
                alloc.free(ptr)

        return FunctionalResult(variant=variant, output=result, checksum=checksum(result), valid=False)

    # --- performance model -----------------------------------------------------------
    def footprint(self, params, label: str = VersionLabel.OMPX) -> Footprint:
        n, steps = params["n"], params["steps"]
        return Footprint(
            flops_fp64=n * steps * 12.0,
            # One sqrt per step, pipelined through the SFUs.
            special_ops=n * steps * 0.25,
            global_read_bytes=n * 4 * 8.0,
            global_write_bytes=n * 3 * 8.0,
        )

    def transfer_plan(self, params):
        """Weights, gradients, moments up; weights down."""
        from ..perf.transfer import TransferPlan

        n = params["n"]
        return TransferPlan(h2d_bytes=n * 4 * 8.0, d2h_bytes=n * 8.0,
                            h2d_transfers=4, d2h_transfers=1)

    def launch_geometry(self, params) -> Tuple[int, int]:
        n, block = params["n"], params["block"]
        return ((n + block - 1) // block, block)

    def launches(self, params) -> int:
        return params["repeat"]

    def kernel_for(self, label: str):
        if label == VersionLabel.OMPX:
            return adam_ompx_kernel
        if label == VersionLabel.OMP:
            return adam_omp_body
        return adam_cuda_kernel

    def omp_region_traits(self, params) -> RegionTraits:
        # §4.2.5: "an issue in LLVM OpenMP that results in the launch of
        # only 32 threads per thread block" — the explicit defect flag.
        return RegionTraits(
            style="worksharing",
            spmd_amenable=True,
            requested_thread_limit=params["block"],
            thread_limit_bug=True,
        )
