"""SU3-ET: the SU3 sweep through Grid-style expression templates (§3.6).

Same workload, command line and golden reference as :class:`SU3` — for
each site and direction, ``C = A x B`` over 3x3 complex matrices — but
the ompx variant never writes a matmul kernel.  It builds the lazy
lattice expression ``c.assign(a * b)`` (:mod:`repro.ompx.lattice`),
which fuses the whole sweep for one link direction into a *single*
``ompxblas_zgemm_strided_batched`` call: batch = sites, m = n = k = 3,
with the direction's link matrix as a zero-stride broadcast operand.
That is how Grid [Boyle et al.] and QUDA actually consume vendor BLAS,
and it is the paper's §3.6 argument in executable form: the port from
CUDA+cuBLAS is a prefix rename, and the lattice-specific code is pure
host-side C++-style templates with no kernel language in sight.

The simulated backends accumulate in the same ascending-``k`` order as
the hand kernel's triple loop, so the fused library path is
bit-identical to the CUDA/HIP variants — the checksum is *the same
number* whichever front end ran, and the same as plain SU3's.
"""

from __future__ import annotations

import numpy as np

from .. import ompx
from ..gpu.device import Device
from ..ompx.lattice import LatticeField
from .common import FunctionalResult, VersionLabel, checksum
from .su3 import _DIRS, SU3

__all__ = ["SU3ET"]


class SU3ET(SU3):
    name = "SU3-ET"
    description = "Lattice QCD SU3 via expression templates"
    perf_hints = {"vendor_library": True}

    # CUDA/HIP/OMP variants are inherited from SU3 unchanged — the point
    # of the app is that only the ompx variant's *host* code differs.
    def run_single(self, variant: str, params, device: Device) -> FunctionalResult:
        if variant != VersionLabel.OMPX:
            return super().run_single(variant, params, device)

        sites = params["sites"]
        h_a, h_b = self._inputs(params)
        out = np.zeros_like(h_a)
        handle = ompx.ompxblas_create(device)
        try:
            for dim in range(_DIRS):
                a = LatticeField.from_host(
                    handle, np.ascontiguousarray(h_a[:, dim])
                )
                b = LatticeField.from_host(handle, h_b[dim][None])  # broadcast
                c = LatticeField(handle, sites)
                try:
                    c.assign(a * b)   # lazy; fuses into one batched zgemm
                    out[:, dim] = c.to_host()
                finally:
                    for field in (a, b, c):
                        field.free()
        finally:
            ompx.ompxblas_destroy(handle)

        return FunctionalResult(
            variant=variant,
            output=out,
            checksum=checksum(out.real, out.imag),
            valid=False,
        )

    def launches(self, params) -> int:
        # The ompx variant issues one fused library call per direction
        # instead of per-iteration kernel launches.
        return _DIRS * params["iterations"]
