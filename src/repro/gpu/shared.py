"""Block-scoped shared memory.

CUDA's ``__shared__`` (and the proposed OpenMP ``groupprivate(team: var)``
from the paper's §2.5 footnote) declare variables visible to all threads of
one block.  In the simulator a block owns a :class:`SharedMemory` holding
named NumPy arrays plus the dynamic shared region requested at launch.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

import numpy as np

from ..errors import LaunchError

__all__ = ["SharedMemory"]


class SharedMemory:
    """Shared memory for one thread block.

    ``array(name, shape, dtype)`` is idempotent per block: the first caller
    allocates, later callers (other threads of the block) get the same
    array.  Total static + dynamic usage is checked against the device's
    per-block limit.
    """

    def __init__(self, limit_bytes: int, dynamic_bytes: int = 0) -> None:
        if dynamic_bytes > limit_bytes:
            raise LaunchError(
                f"dynamic shared memory {dynamic_bytes} B exceeds the per-block "
                f"limit of {limit_bytes} B"
            )
        self._limit = limit_bytes
        self._lock = threading.Lock()
        self._arrays: Dict[str, np.ndarray] = {}
        self._static_bytes = 0
        self._dynamic = np.zeros(dynamic_bytes, dtype=np.uint8)

    def array(self, name: str, shape, dtype) -> np.ndarray:
        """Get or create the named shared array for this block."""
        dtype = np.dtype(dtype)
        shape = (int(shape),) if np.isscalar(shape) else tuple(int(s) for s in shape)
        with self._lock:
            existing = self._arrays.get(name)
            if existing is not None:
                if existing.shape != shape or existing.dtype != dtype:
                    raise LaunchError(
                        f"shared array {name!r} redeclared with shape={shape} "
                        f"dtype={dtype}, but exists with shape={existing.shape} "
                        f"dtype={existing.dtype}"
                    )
                return existing
            nbytes = int(np.prod(shape)) * dtype.itemsize if shape else dtype.itemsize
            if self._static_bytes + nbytes + self._dynamic.nbytes > self._limit:
                raise LaunchError(
                    f"shared array {name!r} ({nbytes} B) would exceed the "
                    f"per-block shared memory limit of {self._limit} B "
                    f"(in use: {self._static_bytes + self._dynamic.nbytes} B)"
                )
            arr = np.zeros(shape, dtype=dtype)
            self._arrays[name] = arr
            self._static_bytes += nbytes
            return arr

    def dynamic(self, dtype) -> np.ndarray:
        """View the dynamic shared region (``extern __shared__``) as ``dtype``."""
        dtype = np.dtype(dtype)
        usable = (self._dynamic.nbytes // dtype.itemsize) * dtype.itemsize
        return self._dynamic[:usable].view(dtype)

    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self._static_bytes + self._dynamic.nbytes
