"""Warp-level collectives and the cooperative block barrier.

These implement the synchronization gap the paper identifies in §2.7: CUDA
has warp, block and kernel level synchronization plus primitives like
shuffle, while stock OpenMP only has ``barrier``.  The ompx layer (§3.3.2)
exposes these through ``ompx_sync_warp``, ``ompx_sync_thread_block`` and
``ompx_shfl_sync``-style APIs; the CUDA/HIP layers expose the native
spellings.  All of them bottom out here.

The simulator runs one OS thread per GPU thread, so collectives are
rendezvous points: every participating lane deposits its value, the last
arrival computes per-lane results, and everyone picks theirs up.  Threads
that exit the kernel are removed from the expected set, matching the
post-Volta semantics where barriers wait only for live threads.  A warp
collective whose mask names an exited lane raises :class:`SyncError` —
that is undefined behaviour on hardware, and surfacing it loudly is the
simulator's job.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, FrozenSet, Optional, Set

from ..errors import SyncError

__all__ = ["LiveSet", "CooperativeBarrier", "WarpCollectives", "full_mask", "mask_to_lanes"]


def full_mask(width: int) -> int:
    """The all-lanes-active mask for a warp of ``width`` lanes."""
    return (1 << width) - 1


def mask_to_lanes(mask: int, width: int) -> FrozenSet[int]:
    """Decode a lane bitmask into the set of participating lane ids."""
    if mask <= 0:
        raise SyncError(f"warp collective mask must be positive, got {mask:#x}")
    lanes = frozenset(lane for lane in range(width) if mask >> lane & 1)
    if mask >> width:
        raise SyncError(
            f"mask {mask:#x} names lanes beyond warp width {width}"
        )
    return lanes


class LiveSet:
    """The set of thread flat-ids in a block that have not exited.

    Shared by the barrier and all warp collectives of one block so that a
    thread's exit can wake any waiters whose expected set just shrank.
    """

    def __init__(self, flat_ids) -> None:
        self._cv = threading.Condition()
        self._live: Set[int] = set(flat_ids)
        self._watchers: list = []

    @property
    def cv(self) -> threading.Condition:
        return self._cv

    def live(self) -> Set[int]:
        """Snapshot of the flat ids that have not exited."""
        with self._cv:
            return set(self._live)

    def is_live(self, flat_id: int) -> bool:
        """Whether the given flat id is still executing."""
        with self._cv:
            return flat_id in self._live

    def mark_exited(self, flat_id: int) -> None:
        """Remove a thread from the live set and wake any waiters."""
        with self._cv:
            self._live.discard(flat_id)
            self._cv.notify_all()


class CooperativeBarrier:
    """Block-wide barrier (``__syncthreads`` / ``ompx_sync_thread_block``).

    Releases when every *live* thread of the block has arrived.  Exited
    threads do not count (post-Volta semantics).  Generations prevent a
    fast thread from lapping a slow one.
    """

    def __init__(self, live: LiveSet) -> None:
        self._live = live
        self._generation = 0
        self._arrived: Set[int] = set()

    def wait(self, flat_id: int) -> None:
        """Block until released (all live threads arrived / task completed)."""
        cv = self._live.cv
        with cv:
            gen = self._generation
            self._arrived.add(flat_id)
            if self._arrived >= self._live._live:
                # Last live arrival: open the next generation.
                self._generation += 1
                self._arrived = set()
                cv.notify_all()
                return
            while self._generation == gen:
                cv.wait(timeout=None)
                # A thread exit may have satisfied the barrier.
                if self._generation == gen and self._arrived >= self._live._live:
                    self._generation += 1
                    self._arrived = set()
                    cv.notify_all()
                    return


class _CollectiveRecord:
    __slots__ = ("phase", "values", "results", "remaining")

    def __init__(self) -> None:
        self.phase = "gather"
        self.values: Dict[int, object] = {}
        self.results: Dict[int, object] = {}
        self.remaining = 0


class WarpCollectives:
    """Rendezvous engine for one warp.

    Each collective call provides the participating lane set (from the
    mask), the caller's lane, its contributed value and a ``result_fn``
    mapping ``(values, lane) -> result``.  Lanes outside the mask must not
    call; all lanes inside the mask must call with the same mask, mirroring
    CUDA's ``*_sync`` contract.
    """

    def __init__(self, warp_index: int, lane_to_flat: Dict[int, int], live: LiveSet) -> None:
        self._warp_index = warp_index
        self._lane_to_flat = dict(lane_to_flat)
        self._live = live
        self._records: Dict[FrozenSet[int], _CollectiveRecord] = {}

    @property
    def width(self) -> int:
        return len(self._lane_to_flat)

    def _check_mask_live(self, lanes: FrozenSet[int]) -> None:
        for lane in lanes:
            flat = self._lane_to_flat.get(lane)
            if flat is None:
                raise SyncError(
                    f"mask names lane {lane}, but warp {self._warp_index} has "
                    f"only {self.width} lanes (partial warp at the block edge)"
                )
            if not self._live.is_live(flat):
                raise SyncError(
                    f"warp collective in warp {self._warp_index} includes lane "
                    f"{lane}, which already exited the kernel (undefined "
                    f"behaviour on hardware)"
                )

    def collective(
        self,
        lanes: FrozenSet[int],
        lane: int,
        value,
        result_fn: Callable[[Dict[int, object], int], object],
    ):
        """Run one rendezvous: gather all lanes' values, scatter results."""
        if lane not in lanes:
            raise SyncError(
                f"lane {lane} executed a warp collective whose mask {sorted(lanes)} "
                f"does not include it"
            )
        cv = self._live.cv
        with cv:
            # Wait out a previous collective on the same mask that is still
            # scattering results.
            while True:
                record = self._records.get(lanes)
                if record is None or record.phase == "gather":
                    break
                cv.wait()
            if record is None:
                record = _CollectiveRecord()
                self._records[lanes] = record
            record.values[lane] = value
            if set(record.values) >= lanes:
                # Last arrival: compute every lane's result.
                record.results = {l: result_fn(record.values, l) for l in lanes}
                record.remaining = len(lanes)
                record.phase = "scatter"
                cv.notify_all()
            else:
                while record.phase != "scatter":
                    # Liveness only matters while gathering: a lane that
                    # exits after results are published already contributed.
                    self._check_mask_live(lanes)
                    cv.wait()
            result = record.results[lane]
            record.remaining -= 1
            if record.remaining == 0:
                del self._records[lanes]
                cv.notify_all()
            return result

    # --- the standard ops ----------------------------------------------------
    def sync(self, lanes: FrozenSet[int], lane: int) -> None:
        """``__syncwarp(mask)`` / ``ompx_sync_warp``."""
        self.collective(lanes, lane, None, lambda values, l: None)

    def shfl(self, lanes: FrozenSet[int], lane: int, value, src_lane: int):
        """``__shfl_sync``: every lane reads ``src_lane``'s value."""
        def result(values: Dict[int, object], l: int):
            if src_lane not in values:
                # Reading from a lane outside the mask yields an undefined
                # value on hardware; we return the caller's own value, which
                # is one of the allowed behaviours, and keep it deterministic.
                return values[l]
            return values[src_lane]

        return self.collective(lanes, lane, value, result)

    def shfl_up(self, lanes: FrozenSet[int], lane: int, value, delta: int):
        """Shuffle from ``delta`` lanes below (out-of-range lanes keep their value)."""
        def result(values: Dict[int, object], l: int):
            src = l - delta
            return values[src] if src in values else values[l]

        return self.collective(lanes, lane, value, result)

    def shfl_down(self, lanes: FrozenSet[int], lane: int, value, delta: int):
        """Shuffle from ``delta`` lanes above (out-of-range lanes keep their value)."""
        def result(values: Dict[int, object], l: int):
            src = l + delta
            return values[src] if src in values else values[l]

        return self.collective(lanes, lane, value, result)

    def shfl_xor(self, lanes: FrozenSet[int], lane: int, value, lane_mask: int):
        """Butterfly shuffle with partner ``lane ^ lane_mask``."""
        def result(values: Dict[int, object], l: int):
            src = l ^ lane_mask
            return values[src] if src in values else values[l]

        return self.collective(lanes, lane, value, result)

    def ballot(self, lanes: FrozenSet[int], lane: int, predicate: bool) -> int:
        """Bitmask of participating lanes with a true predicate."""
        def result(values: Dict[int, object], l: int) -> int:
            bits = 0
            for src, pred in values.items():
                if pred:
                    bits |= 1 << src
            return bits

        return self.collective(lanes, lane, bool(predicate), result)

    def any(self, lanes: FrozenSet[int], lane: int, predicate: bool) -> bool:
        """True iff any participating lane's predicate is true."""
        return self.collective(
            lanes, lane, bool(predicate), lambda values, l: any(values.values())
        )

    def all(self, lanes: FrozenSet[int], lane: int, predicate: bool) -> bool:
        """True iff every participating lane's predicate is true."""
        return self.collective(
            lanes, lane, bool(predicate), lambda values, l: all(values.values())
        )

    def reduce(self, lanes: FrozenSet[int], lane: int, value, op: Callable):
        """Warp-wide reduction; every lane receives the combined value."""
        def result(values: Dict[int, object], l: int):
            acc = None
            for src in sorted(values):
                acc = values[src] if acc is None else op(acc, values[src])
            return acc

        return self.collective(lanes, lane, value, result)

    def match_any(self, lanes: FrozenSet[int], lane: int, value) -> int:
        """``__match_any_sync``: mask of lanes holding the same value."""
        def result(values: Dict[int, object], l: int) -> int:
            bits = 0
            for src, v in values.items():
                if v == values[l]:
                    bits |= 1 << src
            return bits

        return self.collective(lanes, lane, value, result)

    def match_all(self, lanes: FrozenSet[int], lane: int, value):
        """``__match_all_sync``: (mask, pred) — full mask iff all values equal."""
        def result(values: Dict[int, object], l: int):
            distinct = set(values.values())
            if len(distinct) == 1:
                bits = 0
                for src in values:
                    bits |= 1 << src
                return (bits, True)
            return (0, False)

        return self.collective(lanes, lane, value, result)
