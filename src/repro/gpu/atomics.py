"""Device atomic operations.

GPU atomics (``atomicAdd`` and friends) are read-modify-write operations
that are indivisible with respect to every other thread on the device.  The
simulator serializes them through one device-wide lock, which is exactly
the ordering guarantee (and no more) that hardware provides.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["AtomicDomain"]


class AtomicDomain:
    """Atomic read-modify-write operations over NumPy-backed memory.

    One instance is shared by all threads of a launch (it models the
    device's atomic units).  ``array`` may be a view of global memory or a
    shared-memory array; ``index`` any valid NumPy index for it.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()

    def add(self, array: np.ndarray, index, value):
        """``old = array[index]; array[index] += value; return old``."""
        with self._lock:
            old = array[index].copy() if hasattr(array[index], "copy") else array[index]
            array[index] = array[index] + value
            return old

    def sub(self, array: np.ndarray, index, value):
        """Atomic fetch-and-subtract; returns the old value."""
        with self._lock:
            old = array[index]
            array[index] = array[index] - value
            return old

    def max(self, array: np.ndarray, index, value):
        """Atomic fetch-and-max; returns the old value."""
        with self._lock:
            old = array[index]
            if value > old:
                array[index] = value
            return old

    def min(self, array: np.ndarray, index, value):
        """Atomic fetch-and-min; returns the old value."""
        with self._lock:
            old = array[index]
            if value < old:
                array[index] = value
            return old

    def exchange(self, array: np.ndarray, index, value):
        """Atomic exchange; returns the old value."""
        with self._lock:
            old = array[index]
            array[index] = value
            return old

    def cas(self, array: np.ndarray, index, compare, value):
        """Compare-and-swap; returns the old value (swap happened iff old == compare)."""
        with self._lock:
            old = array[index]
            if old == compare:
                array[index] = value
            return old

    def and_(self, array: np.ndarray, index, value):
        """Atomic bitwise AND; returns the old value."""
        with self._lock:
            old = array[index]
            array[index] = old & value
            return old

    def or_(self, array: np.ndarray, index, value):
        """Atomic bitwise OR; returns the old value."""
        with self._lock:
            old = array[index]
            array[index] = old | value
            return old

    def xor(self, array: np.ndarray, index, value):
        """Atomic bitwise XOR; returns the old value."""
        with self._lock:
            old = array[index]
            array[index] = old ^ value
            return old

    def inc(self, array: np.ndarray, index, limit):
        """CUDA ``atomicInc``: old = a[i]; a[i] = (old >= limit) ? 0 : old+1."""
        with self._lock:
            old = array[index]
            array[index] = 0 if old >= limit else old + 1
            return old
