"""Kernel execution engines.

Two functional engines execute kernels on the virtual GPU:

* :class:`BlockThreadEngine` — one cooperative OS thread per GPU thread of
  a block, blocks run one after another.  Honours barriers, warp
  collectives, shared memory.  This is the full-SIMT reference engine.
* :class:`MapEngine` — for kernels declared ``sync_free``: threads are
  independent, so they run as a plain sequential loop with no OS-thread
  overhead.  Calling any sync primitive under this engine raises
  :class:`~repro.errors.SyncError`.

Engines are deliberately *functional only*.  Timing comes from
:mod:`repro.perf`, which consumes the launch geometry and the compiled
kernel's resource usage instead of wall-clock measurements of the
interpreter (the interpreter's speed says nothing about a GPU).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import LaunchError
from .atomics import AtomicDomain
from .context import BlockState, ThreadCtx
from .dim import Dim3, delinearize

__all__ = ["KernelStats", "Engine", "BlockThreadEngine", "MapEngine", "select_engine"]

# Guard rail: a full-SIMT simulation of a paper-scale launch (e.g. the
# 134M-element stencil) is not meaningful to attempt thread-by-thread.
_MAX_COOPERATIVE_THREADS = 2_000_000
#: The sequential map engine absorbs more threads, but still refuses a
#: paper-scale launch clearly instead of hanging for hours.
_MAX_MAP_THREADS = 20_000_000


@dataclass
class KernelStats:
    """What a launch actually executed — consumed by tests and the perf model.

    The behavioural counters (barriers, warp collectives, global derefs,
    shared declarations) are summed over every thread of the launch; they
    give tests and the perf model an observed-behaviour cross-check
    against the static kernel analysis.
    """

    grid: Dim3 = field(default_factory=Dim3)
    block: Dim3 = field(default_factory=Dim3)
    threads_run: int = 0
    blocks_run: int = 0
    shared_bytes: int = 0
    engine: str = ""
    barriers: int = 0
    warp_collectives: int = 0
    global_derefs: int = 0
    shared_declarations: int = 0

    def absorb(self, ctx) -> None:
        """Accumulate one thread's counters (engines call this)."""
        self.barriers += ctx.n_barriers
        self.warp_collectives += ctx.n_warp_collectives
        self.global_derefs += ctx.n_global_derefs
        self.shared_declarations += ctx.n_shared_decls


class Engine:
    """Interface: run ``kernel(ctx, *args)`` over a grid of blocks."""

    name = "abstract"

    def run(
        self,
        kernel: Callable,
        grid: Dim3,
        block: Dim3,
        args: Sequence,
        device,
        shared_bytes: int = 0,
    ) -> KernelStats:
        """Execute ``kernel`` over the grid; returns the launch's KernelStats."""
        raise NotImplementedError


class BlockThreadEngine(Engine):
    """Full SIMT semantics via one OS thread per GPU thread of a block."""

    name = "block-thread"

    def run(
        self,
        kernel: Callable,
        grid: Dim3,
        block: Dim3,
        args: Sequence,
        device,
        shared_bytes: int = 0,
    ) -> KernelStats:
        """Execute ``kernel`` over the grid; returns the launch's KernelStats."""
        total = grid.volume * block.volume
        if total > _MAX_COOPERATIVE_THREADS:
            raise LaunchError(
                f"cooperative simulation of {total} threads exceeds the "
                f"{_MAX_COOPERATIVE_THREADS}-thread guard rail; use a smaller "
                f"functional problem size (paper-scale runs go through the "
                f"vectorized references + perf model)"
            )
        atomics = AtomicDomain()
        stats = KernelStats(grid=grid, block=block, shared_bytes=shared_bytes, engine=self.name)
        for flat_block in range(grid.volume):
            block_idx = delinearize(flat_block, grid)
            self._run_block(
                kernel, block_idx, block, grid, args, device, shared_bytes,
                atomics, stats,
            )
            stats.blocks_run += 1
            stats.threads_run += block.volume
        return stats

    def _run_block(
        self,
        kernel: Callable,
        block_idx: Dim3,
        block_dim: Dim3,
        grid_dim: Dim3,
        args: Sequence,
        device,
        shared_bytes: int,
        atomics: AtomicDomain,
        stats: KernelStats,
    ) -> None:
        state = BlockState(block_idx, block_dim, grid_dim, device, shared_bytes, atomics)
        errors: List[Tuple[int, BaseException]] = []
        errors_lock = threading.Lock()

        def worker(flat_id: int) -> None:
            ctx = ThreadCtx(state, delinearize(flat_id, block_dim))
            try:
                kernel(ctx, *args)
            except BaseException as exc:  # noqa: BLE001 - must propagate to launcher
                with errors_lock:
                    errors.append((flat_id, exc))
            finally:
                state.live.mark_exited(flat_id)
                with errors_lock:
                    stats.absorb(ctx)

        threads = [
            threading.Thread(
                target=worker,
                args=(flat_id,),
                name=f"gpu-b{block_idx}-t{flat_id}",
                daemon=True,
            )
            for flat_id in range(block_dim.volume)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            flat_id, exc = min(errors, key=lambda e: e[0])
            raise LaunchError(
                f"kernel failed in block {block_idx}, thread {flat_id}: {exc!r}"
            ) from exc


class MapEngine(Engine):
    """Fast path for sync-free kernels: a plain sequential thread loop."""

    name = "map"

    def run(
        self,
        kernel: Callable,
        grid: Dim3,
        block: Dim3,
        args: Sequence,
        device,
        shared_bytes: int = 0,
    ) -> KernelStats:
        """Execute ``kernel`` over the grid; returns the launch's KernelStats."""
        total = grid.volume * block.volume
        if total > _MAX_MAP_THREADS:
            raise LaunchError(
                f"sequential simulation of {total} threads exceeds the "
                f"{_MAX_MAP_THREADS}-thread guard rail; use a smaller "
                f"functional problem size (paper-scale runs go through the "
                f"vectorized references + perf model)"
            )
        atomics = AtomicDomain()
        stats = KernelStats(grid=grid, block=block, shared_bytes=shared_bytes, engine=self.name)
        for flat_block in range(grid.volume):
            block_idx = delinearize(flat_block, grid)
            state = BlockState(block_idx, block, grid, device, shared_bytes, atomics)
            for flat_id in range(block.volume):
                ctx = ThreadCtx(state, delinearize(flat_id, block), sync_free=True)
                try:
                    kernel(ctx, *args)
                except BaseException as exc:  # noqa: BLE001 - same surface as cooperative engine
                    raise LaunchError(
                        f"kernel failed in block {block_idx}, thread {flat_id}: {exc!r}"
                    ) from exc
                finally:
                    state.live.mark_exited(flat_id)
                    stats.absorb(ctx)
            stats.blocks_run += 1
            stats.threads_run += block.volume
        return stats


_BLOCK_THREAD = BlockThreadEngine()
_MAP = MapEngine()


def select_engine(kernel: Callable) -> Engine:
    """Pick the engine for a kernel.

    Kernels opt into the fast path by carrying ``sync_free = True``
    (set by the ``@kernel(sync_free=True)`` decorators of the language
    layers).  Anything else gets full SIMT semantics.
    """
    if getattr(kernel, "sync_free", False):
        return _MAP
    return _BLOCK_THREAD
