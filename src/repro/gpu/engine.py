"""Kernel execution engines.

Three functional engines execute kernels on the virtual GPU:

* :class:`BlockThreadEngine` — one cooperative OS thread per GPU thread of
  a block, blocks run one after another.  Honours barriers, warp
  collectives, shared memory.  This is the full-SIMT reference engine.
* :class:`MapEngine` — for kernels declared ``sync_free``: threads are
  independent, so they run as a plain sequential loop with no OS-thread
  overhead.  Calling any sync primitive under this engine raises
  :class:`~repro.errors.SyncError`.
* :class:`WaveVectorEngine` — lane-batched execution for kernels the
  static analysis (:mod:`repro.compiler.analysis`) proves vectorizable:
  sync-free kernels run as fused NumPy index vectors spanning many blocks
  (``"vector"`` mode); barrier-only kernels run one block per batch in
  lockstep (``"wave"`` mode).  This is what makes paper-scale problem
  sizes (§4's 134M-element stencil) tractable on the simulated substrate.

:func:`select_engine` consults the kernel's declared flags
(``sync_free``/``vectorize``) and static analysis to pick an engine, and
memoizes the decision per ``(kernel, device, block shape, hint)``.

Engines are deliberately *functional only*.  Timing comes from
:mod:`repro.perf`, which consumes the launch geometry and the compiled
kernel's resource usage instead of wall-clock measurements of the
interpreter (the interpreter's speed says nothing about a GPU).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import LaunchError
from .atomics import AtomicDomain
from .context import BlockState, ThreadCtx
from .dim import Dim3, delinearize
from .vector import VectorThreadCtx

__all__ = [
    "KernelStats",
    "Engine",
    "BlockThreadEngine",
    "MapEngine",
    "WaveVectorEngine",
    "select_engine",
    "clear_engine_plans",
    "plan_key",
    "describe_plan_key",
]

# Guard rail: a full-SIMT simulation of a paper-scale launch (e.g. the
# 134M-element stencil) is not meaningful to attempt thread-by-thread.
_MAX_COOPERATIVE_THREADS = 2_000_000
#: The sequential map engine absorbs more threads, but still refuses a
#: paper-scale launch clearly instead of hanging for hours.
_MAX_MAP_THREADS = 20_000_000
#: Lane-batched execution is array-at-a-time, so it can absorb paper-scale
#: grids outright; the rail only catches pathological requests.
_MAX_VECTOR_THREADS = 1 << 28
#: Fused ("vector" mode) batches are chunked so gathers with a per-lane
#: inner dimension stay within a bounded memory footprint.
_VECTOR_CHUNK_THREADS = 1 << 16


@dataclass
class KernelStats:
    """What a launch actually executed — consumed by tests and the perf model.

    The behavioural counters (barriers, warp collectives, global derefs,
    shared declarations) are summed over every thread of the launch; they
    give tests and the perf model an observed-behaviour cross-check
    against the static kernel analysis.
    """

    grid: Dim3 = field(default_factory=Dim3)
    block: Dim3 = field(default_factory=Dim3)
    threads_run: int = 0
    blocks_run: int = 0
    shared_bytes: int = 0
    engine: str = ""
    barriers: int = 0
    warp_collectives: int = 0
    global_derefs: int = 0
    shared_declarations: int = 0

    def absorb(self, ctx) -> None:
        """Accumulate one thread's counters (engines call this)."""
        self.barriers += ctx.n_barriers
        self.warp_collectives += ctx.n_warp_collectives
        self.global_derefs += ctx.n_global_derefs
        self.shared_declarations += ctx.n_shared_decls


class Engine:
    """Interface: run ``kernel(ctx, *args)`` over a grid of blocks."""

    name = "abstract"

    def run(
        self,
        kernel: Callable,
        grid: Dim3,
        block: Dim3,
        args: Sequence,
        device,
        shared_bytes: int = 0,
    ) -> KernelStats:
        """Execute ``kernel`` over the grid; returns the launch's KernelStats."""
        raise NotImplementedError


class BlockThreadEngine(Engine):
    """Full SIMT semantics via one OS thread per GPU thread of a block."""

    name = "block-thread"

    def run(
        self,
        kernel: Callable,
        grid: Dim3,
        block: Dim3,
        args: Sequence,
        device,
        shared_bytes: int = 0,
    ) -> KernelStats:
        """Execute ``kernel`` over the grid; returns the launch's KernelStats."""
        total = grid.volume * block.volume
        if total > _MAX_COOPERATIVE_THREADS:
            raise LaunchError(
                f"cooperative simulation of {total} threads exceeds the "
                f"{_MAX_COOPERATIVE_THREADS}-thread guard rail of the "
                f"'{self.name}' engine; declare the kernel sync_free=True "
                f"and/or vectorize=True so a lane-batched engine can take it, "
                f"or use a smaller functional problem size",
                engine=self.name,
                cap=_MAX_COOPERATIVE_THREADS,
                requested=total,
                hint="declare sync_free=True and/or vectorize=True",
            )
        atomics = AtomicDomain()
        stats = KernelStats(grid=grid, block=block, shared_bytes=shared_bytes, engine=self.name)
        for flat_block in range(grid.volume):
            block_idx = delinearize(flat_block, grid)
            self._run_block(
                kernel, block_idx, block, grid, args, device, shared_bytes,
                atomics, stats,
            )
            stats.blocks_run += 1
            stats.threads_run += block.volume
        return stats

    def _run_block(
        self,
        kernel: Callable,
        block_idx: Dim3,
        block_dim: Dim3,
        grid_dim: Dim3,
        args: Sequence,
        device,
        shared_bytes: int,
        atomics: AtomicDomain,
        stats: KernelStats,
    ) -> None:
        state = BlockState(block_idx, block_dim, grid_dim, device, shared_bytes, atomics)
        errors: List[Tuple[int, BaseException]] = []
        errors_lock = threading.Lock()

        def worker(flat_id: int) -> None:
            ctx = ThreadCtx(state, delinearize(flat_id, block_dim))
            try:
                kernel(ctx, *args)
            except BaseException as exc:  # noqa: BLE001 - must propagate to launcher
                with errors_lock:
                    errors.append((flat_id, exc))
            finally:
                state.live.mark_exited(flat_id)
                with errors_lock:
                    stats.absorb(ctx)

        threads = [
            threading.Thread(
                target=worker,
                args=(flat_id,),
                name=f"gpu-b{block_idx}-t{flat_id}",
                daemon=True,
            )
            for flat_id in range(block_dim.volume)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            flat_id, exc = min(errors, key=lambda e: e[0])
            raise LaunchError(
                f"kernel failed in block {block_idx}, thread {flat_id}: {exc!r}",
                engine=self.name,
            ) from exc


class MapEngine(Engine):
    """Fast path for sync-free kernels: a plain sequential thread loop."""

    name = "map"

    def run(
        self,
        kernel: Callable,
        grid: Dim3,
        block: Dim3,
        args: Sequence,
        device,
        shared_bytes: int = 0,
    ) -> KernelStats:
        """Execute ``kernel`` over the grid; returns the launch's KernelStats."""
        total = grid.volume * block.volume
        if total > _MAX_MAP_THREADS:
            raise LaunchError(
                f"sequential simulation of {total} threads exceeds the "
                f"{_MAX_MAP_THREADS}-thread guard rail of the '{self.name}' "
                f"engine; declare the kernel vectorize=True (and write it "
                f"against the select/load/store intrinsics) so the vector "
                f"engine can take it, or use a smaller functional problem size",
                engine=self.name,
                cap=_MAX_MAP_THREADS,
                requested=total,
                hint="declare vectorize=True",
            )
        atomics = AtomicDomain()
        stats = KernelStats(grid=grid, block=block, shared_bytes=shared_bytes, engine=self.name)
        for flat_block in range(grid.volume):
            block_idx = delinearize(flat_block, grid)
            state = BlockState(block_idx, block, grid, device, shared_bytes, atomics)
            for flat_id in range(block.volume):
                ctx = ThreadCtx(state, delinearize(flat_id, block), sync_free=True)
                try:
                    kernel(ctx, *args)
                except BaseException as exc:  # noqa: BLE001 - same surface as cooperative engine
                    raise LaunchError(
                        f"kernel failed in block {block_idx}, thread {flat_id}: {exc!r}",
                        engine=self.name,
                    ) from exc
                finally:
                    state.live.mark_exited(flat_id)
                    stats.absorb(ctx)
            stats.blocks_run += 1
            stats.threads_run += block.volume
        return stats


class WaveVectorEngine(Engine):
    """Lane-batched execution: whole blocks (or block ranges) per kernel call.

    One class, two modes (see :mod:`repro.gpu.vector`):

    * ``"vector"`` — sync-free kernels; lanes are fused across blocks into
      contiguous chunks of global flat thread ids.
    * ``"wave"`` — barrier-only cooperative kernels; one batch per block,
      with real shared memory and a lockstep (counting no-op) barrier.
    """

    def __init__(self, mode: str) -> None:
        if mode not in ("vector", "wave"):
            raise ValueError(f"unknown WaveVectorEngine mode {mode!r}")
        self._mode = mode
        self.name = mode

    def run(
        self,
        kernel: Callable,
        grid: Dim3,
        block: Dim3,
        args: Sequence,
        device,
        shared_bytes: int = 0,
    ) -> KernelStats:
        """Execute ``kernel`` over the grid; returns the launch's KernelStats."""
        total = grid.volume * block.volume
        if total > _MAX_VECTOR_THREADS:
            raise LaunchError(
                f"lane-batched simulation of {total} threads exceeds the "
                f"{_MAX_VECTOR_THREADS}-thread guard rail of the "
                f"'{self.name}' engine; shard the launch or use a smaller "
                f"problem size",
                engine=self.name,
                cap=_MAX_VECTOR_THREADS,
                requested=total,
                hint="shard the launch across multiple kernel invocations",
            )
        stats = KernelStats(grid=grid, block=block, shared_bytes=shared_bytes, engine=self.name)
        if self._mode == "wave":
            self._run_wave(kernel, grid, block, args, device, shared_bytes, stats)
        else:
            self._run_vector(kernel, grid, block, args, device, stats)
        return stats

    def _run_wave(
        self,
        kernel: Callable,
        grid: Dim3,
        block: Dim3,
        args: Sequence,
        device,
        shared_bytes: int,
        stats: KernelStats,
    ) -> None:
        for flat_block in range(grid.volume):
            block_idx = delinearize(flat_block, grid)
            ctx = VectorThreadCtx(
                device, grid, block,
                mode="wave", block_idx=block_idx, shared_bytes=shared_bytes,
            )
            try:
                kernel(ctx, *args)
            except BaseException as exc:  # noqa: BLE001 - same surface as scalar engines
                raise LaunchError(
                    f"kernel failed in block {block_idx} (wave batch of "
                    f"{block.volume} lanes): {exc!r}",
                    engine=self.name,
                ) from exc
            finally:
                stats.absorb(ctx)
            stats.blocks_run += 1
            stats.threads_run += block.volume

    def _run_vector(
        self,
        kernel: Callable,
        grid: Dim3,
        block: Dim3,
        args: Sequence,
        device,
        stats: KernelStats,
    ) -> None:
        total = grid.volume * block.volume
        for start in range(0, total, _VECTOR_CHUNK_THREADS):
            stop = min(start + _VECTOR_CHUNK_THREADS, total)
            ctx = VectorThreadCtx(
                device, grid, block,
                mode="vector",
                global_flat=np.arange(start, stop, dtype=np.int64),
            )
            try:
                kernel(ctx, *args)
            except BaseException as exc:  # noqa: BLE001 - same surface as scalar engines
                raise LaunchError(
                    f"kernel failed in vector lanes [{start}, {stop}): {exc!r}",
                    engine=self.name,
                ) from exc
            finally:
                stats.absorb(ctx)
            stats.threads_run += stop - start
        stats.blocks_run = grid.volume


_BLOCK_THREAD = BlockThreadEngine()
_MAP = MapEngine()
_VECTOR = WaveVectorEngine("vector")
_WAVE = WaveVectorEngine("wave")

_ENGINES_BY_NAME: Dict[str, Engine] = {
    "block-thread": _BLOCK_THREAD,
    "map": _MAP,
    "vector": _VECTOR,
    "wave": _WAVE,
}

#: Memoized engine decisions, keyed by (kernel, device name, block shape, hint).
_PLAN_CACHE: Dict[Tuple, Engine] = {}


def clear_engine_plans() -> None:
    """Drop every memoized engine decision (tests and hot-reload hooks)."""
    _PLAN_CACHE.clear()


def plan_key(
    kernel: Callable,
    device=None,
    block: Optional[Dim3] = None,
    hint: Optional[str] = None,
) -> Optional[Tuple]:
    """The memoization key :func:`select_engine` caches decisions under.

    ``None`` when the kernel is unhashable (such launches are planned
    fresh every time and never cached).
    """
    device_name = getattr(getattr(device, "spec", None), "name", None)
    block_shape = block.as_tuple() if isinstance(block, Dim3) else block
    try:
        hash(kernel)
    except TypeError:
        return None
    return (kernel, device_name, block_shape, hint)


def describe_plan_key(
    kernel: Callable,
    device=None,
    block: Optional[Dim3] = None,
    hint: Optional[str] = None,
) -> Tuple:
    """Human-readable rendering of :func:`plan_key` for error messages.

    The cache key proper holds the kernel *object*; error text (and the
    trace summary) wants its name, so the first element is replaced with
    the kernel's ``__name__`` (falling back through the wrapped ``fn``
    the front-end adapters attach).
    """
    fn = getattr(kernel, "fn", None) or kernel
    name = getattr(fn, "__name__", None) or repr(kernel)
    device_name = getattr(getattr(device, "spec", None), "name", None)
    block_shape = block.as_tuple() if isinstance(block, Dim3) else block
    return (name, device_name, block_shape, hint)


def _legacy_engine(kernel: Callable) -> Engine:
    """The pre-vectorization rule: sync-free -> map, else full SIMT."""
    if getattr(kernel, "sync_free", False):
        return _MAP
    return _BLOCK_THREAD


def _analyze_or_none(kernel: Callable):
    """Static traits of ``kernel``, or ``None`` when analysis is impossible.

    Lambdas and exotic callables defeat source retrieval; selection then
    falls back to the declared-flags rule rather than failing the launch.
    """
    from ..compiler.analysis import analyze_kernel

    try:
        return analyze_kernel(kernel)
    except Exception:
        return None


def _plan(kernel: Callable) -> Engine:
    """Decide the engine for one kernel from its flags and static traits."""
    sync_free = bool(getattr(kernel, "sync_free", False))
    vectorize = getattr(kernel, "vectorize", None)
    if vectorize is False:
        return _legacy_engine(kernel)
    traits = _analyze_or_none(kernel)
    if vectorize:
        # The author vouches for vectorizability; only pick the mode.
        cooperative = traits is not None and (traits.uses_barrier or traits.uses_shared)
        if sync_free and not cooperative:
            return _VECTOR
        return _WAVE
    # Automatic path: only take kernels the analysis proves batchable.
    if traits is None or traits.uses_warp_collectives or traits.uses_atomics:
        return _legacy_engine(kernel)
    if sync_free:
        if traits.uses_barrier or traits.uses_shared or not traits.vectorizable:
            return _MAP
        return _VECTOR
    if traits.uses_barrier and traits.vectorizable:
        return _WAVE
    return _BLOCK_THREAD


def select_engine(
    kernel: Callable,
    device=None,
    block: Optional[Dim3] = None,
    *,
    hint: Optional[str] = None,
) -> Engine:
    """Pick the engine for a kernel launch.

    Precedence: an explicit ``hint`` (the :class:`LaunchConfig` engine
    field) wins; a kernel declared ``vectorize=False`` keeps the legacy
    sync-free/cooperative split; otherwise static analysis routes
    provably-batchable kernels to the :class:`WaveVectorEngine` and
    everything else to the scalar engines.  Decisions are memoized per
    ``(kernel, device, block shape, hint)``.
    """
    if hint is not None:
        try:
            return _ENGINES_BY_NAME[hint]
        except KeyError:
            raise LaunchError(
                f"unknown engine hint {hint!r}; choose one of "
                f"{sorted(_ENGINES_BY_NAME)}",
                hint=hint,
            ) from None
    key = plan_key(kernel, device, block, hint)
    cached = _PLAN_CACHE.get(key) if key is not None else None
    if cached is not None:
        return cached
    engine = _plan(kernel)
    if key is not None:
        _PLAN_CACHE[key] = engine
    return engine
