"""Kernel launch: geometry validation + engine dispatch + stream routing.

This is the one choke point every language layer calls:  CUDA's chevron
launch, HIP's ``hipLaunchKernelGGL`` and ompx's ``target teams ompx_bare``
all build a :class:`LaunchConfig` and call :func:`launch_kernel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from .dim import Dim3, DimLike, as_dim3
from .engine import KernelStats, select_engine
from .stream import Stream

__all__ = ["LaunchConfig", "launch_kernel"]


@dataclass(frozen=True)
class LaunchConfig:
    """Grid/block geometry plus the optional dynamic-shared size and stream.

    Mirrors CUDA's ``<<<grid, block, sharedBytes, stream>>>`` and the ompx
    ``num_teams(...) thread_limit(...)`` clauses.
    """

    grid: Dim3
    block: Dim3
    shared_bytes: int = 0
    stream: Optional[Stream] = None

    @classmethod
    def create(
        cls,
        grid: DimLike,
        block: DimLike,
        shared_bytes: int = 0,
        stream: Optional[Stream] = None,
    ) -> "LaunchConfig":
        return cls(as_dim3(grid), as_dim3(block), int(shared_bytes), stream)

    @property
    def total_threads(self) -> int:
        return self.grid.volume * self.block.volume


def launch_kernel(
    kernel: Callable,
    config: LaunchConfig,
    args: Sequence,
    device,
    *,
    synchronous: bool = True,
) -> Optional[KernelStats]:
    """Validate and run a kernel.

    With a stream and ``synchronous=False`` the launch is enqueued and
    ``None`` is returned (stats are unavailable until the stream drains) —
    the CUDA behaviour.  Otherwise the kernel runs to completion and its
    :class:`KernelStats` are returned — the default OpenMP ``target``
    behaviour the paper contrasts in §2.3.
    """
    device.spec.validate_launch(config.grid, config.block, config.shared_bytes)
    engine = select_engine(kernel)

    def run() -> KernelStats:
        return engine.run(
            kernel, config.grid, config.block, args, device, config.shared_bytes
        )

    if config.stream is not None and not synchronous:
        config.stream.enqueue(run)
        return None
    if config.stream is not None:
        # Synchronous launch on a stream still respects stream ordering.
        result: list = []
        config.stream.enqueue(lambda: result.append(run()))
        config.stream.synchronize()
        return result[0]
    return run()
