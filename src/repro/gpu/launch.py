"""Kernel launch: geometry validation + engine dispatch + stream routing.

This is the one choke point every language layer calls:  CUDA's chevron
launch, HIP's ``hipLaunchKernelGGL``, OpenMP's ``target teams`` lowering
and ompx's ``target teams ompx_bare`` all build a :class:`LaunchConfig`
and call :func:`launch_kernel`.

The canonical signature is config-first::

    launch_kernel(config, kernel, args, device=None, synchronous=True)

The pre-redesign kernel-first order is still accepted as a thin shim that
emits :class:`DeprecationWarning`; it will be removed two releases after
the :class:`LaunchConfig` consolidation (see the README's deprecation
timeline).
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..errors import KernelFault, LaunchError
from ..faults.inject import active_plan as _fault_plan
from ..trace import get_tracer
from .dim import Dim3, DimLike, as_dim3
from .engine import (
    _ENGINES_BY_NAME,
    KernelStats,
    describe_plan_key,
    select_engine,
)
from .stream import Stream

__all__ = ["LaunchConfig", "launch_kernel"]

#: ``REPRO_ENGINE_FALLBACK=strict`` (or ``0``/``off``) turns the graceful
#: vector->block-thread degradation into a hard failure, for CI runs that
#: want to know their kernels stopped vectorizing.
_FALLBACK_ENV = "REPRO_ENGINE_FALLBACK"


def _fallback_allowed() -> bool:
    return os.environ.get(_FALLBACK_ENV, "").strip().lower() not in (
        "strict", "0", "off", "false",
    )


#: Lazily bound ``repro.tune.state.active_session`` — resolved on first
#: launch rather than at import time, which keeps the tune <-> launch
#: dependency acyclic (tune imports the engine/perf layers).
_tune_active = None


def _tune_session():
    global _tune_active
    if _tune_active is None:
        from ..tune.state import active_session

        _tune_active = active_session
    return _tune_active()


def _with_injected_fault(kernel: Callable, kernel_name: str, spec: dict) -> Callable:
    """Wrap ``kernel`` so the planned :class:`KernelFault` fires in-flight.

    ``spec`` comes from a ``launch:kernel_fault`` rule: ``block`` restricts
    the fault to one flat block id (every thread of that block raises, so
    cooperative barriers cannot deadlock on divergence), ``after_barriers``
    delays it until that many barriers completed.
    """
    block_sel = spec.get("block")
    after = int(spec.get("after_barriers") or 0)
    message = spec.get("message", "injected kernel fault")

    def fault(ctx) -> None:
        block = block_sel if block_sel is not None else ctx.block_idx
        raise KernelFault(message, kernel=kernel_name, block=block, injected=True)

    def wrapped(ctx, *args):
        flat_block = ctx.flat_block_id
        if block_sel is not None and not np.any(np.asarray(flat_block) == block_sel):
            return kernel(ctx, *args)
        if after <= 0:
            fault(ctx)
        return kernel(_BarrierFaultCtx(ctx, after, fault), *args)

    wrapped.__name__ = kernel_name
    return wrapped


class _BarrierFaultCtx:
    """Proxy around a thread context that faults after N completed barriers.

    The wrapped barrier finishes first (all threads of the block cross it
    together), *then* every thread raises — so the injected fault never
    manufactures barrier divergence on top of itself.
    """

    def __init__(self, ctx, after: int, fault) -> None:
        self._ctx = ctx
        self._after = after
        self._fault = fault
        self._count = 0

    def __getattr__(self, name):
        return getattr(self._ctx, name)

    def sync_threads(self) -> None:
        self._ctx.sync_threads()
        self._count += 1
        if self._count == self._after:
            self._fault(self._ctx)


def _should_fall_back(engine, config, exc: LaunchError) -> bool:
    """Graceful degradation policy for lane-batched engine failures.

    Retry on the cooperative engine only when (a) the engine was *chosen*,
    not pinned by the config hint — a pinned engine failing is an answer,
    not an accident; (b) the failure came from inside the kernel body
    (guard-rail refusals carry no ``__cause__`` and would just re-fail);
    (c) the cause is not a (possibly injected) device fault, which must
    poison the context rather than be papered over; and (d) the
    environment has not requested strict mode.
    """
    if config.engine is not None or engine.name not in ("vector", "wave"):
        return False
    cause = exc.__cause__
    if cause is None or isinstance(cause, KernelFault):
        return False
    if getattr(cause, "injected", False):
        return False
    return _fallback_allowed()


@dataclass(frozen=True)
class LaunchConfig:
    """Grid/block geometry plus dynamic-shared size, stream and engine hint.

    Mirrors CUDA's ``<<<grid, block, sharedBytes, stream>>>`` and the ompx
    ``num_teams(...) thread_limit(...)`` clauses.  ``engine`` optionally
    pins the execution engine by name (``"block-thread"``, ``"map"``,
    ``"vector"``, ``"wave"``) instead of letting
    :func:`~repro.gpu.engine.select_engine` decide.
    """

    grid: Dim3
    block: Dim3
    shared_bytes: int = 0
    stream: Optional[Stream] = None
    engine: Optional[str] = None

    @classmethod
    def create(
        cls,
        grid: DimLike,
        block: DimLike,
        shared_bytes: int = 0,
        *legacy,
        stream: Optional[Stream] = None,
        engine: Optional[str] = None,
    ) -> "LaunchConfig":
        """Build a config, coercing int/tuple geometry into :class:`Dim3`.

        ``stream``/``engine`` are keyword-only.  The positional form left
        over from the PR-1 launch unification
        (``create(grid, block, shared, stream, engine)``) completed its
        documented deprecation timeline: it now raises
        :class:`~repro.errors.LaunchError` pointing at the keyword
        spelling instead of emitting :class:`DeprecationWarning`.
        """
        if legacy:
            raise LaunchError(
                "LaunchConfig.create takes at most (grid, block, "
                "shared_bytes) positionally; the deprecated positional "
                "stream/engine form was removed — write "
                "LaunchConfig.create(grid, block, shared_bytes, "
                "stream=..., engine=...) with keywords"
            )
        return cls(as_dim3(grid), as_dim3(block), int(shared_bytes), stream, engine)

    @property
    def total_threads(self) -> int:
        """Threads launched: grid volume times block volume."""
        return self.grid.volume * self.block.volume


def launch_kernel(
    config,
    kernel,
    args: Sequence = (),
    device=None,
    *,
    synchronous: bool = True,
) -> Optional[KernelStats]:
    """Validate and run a kernel described by a :class:`LaunchConfig`.

    ``device=`` accepts anything :func:`repro.gpu.device.resolve_placement`
    does — an ``int`` ordinal, a :class:`Device`, or ``None`` for the
    thread-current device.  With a stream and
    ``synchronous=False`` the launch is enqueued and ``None`` is returned
    (stats are unavailable until the stream drains) — the CUDA behaviour.
    Otherwise the kernel runs to completion and its :class:`KernelStats`
    are returned — the default OpenMP ``target`` behaviour the paper
    contrasts in §2.3.
    """
    dispatch_begin = time.perf_counter_ns()
    if not isinstance(config, LaunchConfig):
        if isinstance(kernel, LaunchConfig) and callable(config):
            warnings.warn(
                "launch_kernel(kernel, config, ...) is deprecated; pass the "
                "LaunchConfig first: launch_kernel(config, kernel, ...)",
                DeprecationWarning,
                stacklevel=2,
            )
            config, kernel = kernel, config
        else:
            raise LaunchError(
                f"launch_kernel expects a LaunchConfig first, got "
                f"{type(config).__name__!s}"
            )
    from .device import resolve_placement

    device = resolve_placement(device)
    device.check_poison()
    device.spec.validate_launch(config.grid, config.block, config.shared_bytes)
    # Tune fast path: an installed session resolves the engine from its
    # persisted plan cache (or searches on a cold miss) before ordinary
    # plan derivation runs.  An explicit config.engine pin always wins.
    session = _tune_session()
    engine = None
    search_ns = 0
    if session is not None and config.engine is None:
        engine, search_ns = session.resolve(kernel, config, args, device)
    if engine is None:
        engine = select_engine(kernel, device, config.block, hint=config.engine)
    kernel_name = getattr(
        getattr(kernel, "fn", None) or kernel, "__name__", "kernel"
    )

    run_kernel = kernel
    plan = _fault_plan()
    if plan is not None:
        effects = plan.fire(
            "launch",
            kernel=kernel_name,
            device=device.ordinal,
            stream=config.stream.name if config.stream is not None else None,
        )
        fault_spec = effects.get("kernel_fault")
        if fault_spec is not None:
            run_kernel = _with_injected_fault(kernel, kernel_name, fault_spec)
        delay_s = effects.get("delay_s")
        if delay_s:
            # A hung kernel: the sleep happens on whichever thread runs
            # the launch (a stream worker or a pool worker), where the
            # resilience watchdog can observe the stall.
            time.sleep(delay_s)

    def run_once(eng) -> KernelStats:
        tracer = get_tracer()
        try:
            if tracer is None:
                return eng.run(
                    run_kernel, config.grid, config.block, tuple(args), device,
                    config.shared_bytes,
                )
            with tracer.span(
                f"kernel:{kernel_name}",
                cat="kernel",
                engine=eng.name,
                grid=list(config.grid.as_tuple()),
                block=list(config.block.as_tuple()),
                shared_bytes=config.shared_bytes,
            ) as sp:
                stats = eng.run(
                    run_kernel, config.grid, config.block, tuple(args), device,
                    config.shared_bytes,
                )
                # Harvest the launch's observed-behaviour counters into
                # the span so trace consumers see what KernelStats saw.
                sp.args.update(
                    threads_run=stats.threads_run,
                    blocks_run=stats.blocks_run,
                    barriers=stats.barriers,
                    warp_collectives=stats.warp_collectives,
                    global_derefs=stats.global_derefs,
                    shared_declarations=stats.shared_declarations,
                )
                tracer.counter("launches")
                return stats
        except LaunchError as exc:
            if exc.engine is None:
                exc.engine = eng.name
            if exc.key is None:
                exc.key = describe_plan_key(
                    kernel, device, config.block, config.engine
                )
            cause = exc.__cause__
            if isinstance(cause, KernelFault):
                # CUDA sticky semantics: an in-flight kernel fault poisons
                # the whole device context, not just this launch.
                if cause.kernel is None:
                    cause.kernel = kernel_name
                device.poison(cause)
            raise

    def run() -> KernelStats:
        try:
            return run_once(engine)
        except LaunchError as exc:
            if not _should_fall_back(engine, config, exc):
                raise
            warnings.warn(
                f"kernel {kernel_name!r} failed on the lane-batched "
                f"{engine.name!r} engine ({exc.__cause__!r}); retrying once "
                f"on the cooperative block-thread engine. Set "
                f"{_FALLBACK_ENV}=strict to fail instead.",
                RuntimeWarning,
                stacklevel=2,
            )
            tracer = get_tracer()
            if tracer is not None:
                tracer.counter("engine_fallbacks")
            return run_once(_ENGINES_BY_NAME["block-thread"])

    if session is not None:
        # Dispatch-overhead profiling: everything this function did
        # before handing off to an engine or stream, minus time spent
        # searching (a cold search is a one-off investment, not
        # dispatch; excluding it keeps warm and untuned runs directly
        # comparable).
        session.overhead.record(
            time.perf_counter_ns() - dispatch_begin - search_ns
        )
    if config.stream is not None and not synchronous:
        config.stream.enqueue(run, label=f"launch:{kernel_name}")
        return None
    if config.stream is not None:
        # Synchronous launch on a stream still respects stream ordering.
        result: list = []
        config.stream.enqueue(
            lambda: result.append(run()), label=f"launch:{kernel_name}"
        )
        config.stream.synchronize()
        return result[0]
    return run()
