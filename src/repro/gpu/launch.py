"""Kernel launch: geometry validation + engine dispatch + stream routing.

This is the one choke point every language layer calls:  CUDA's chevron
launch, HIP's ``hipLaunchKernelGGL``, OpenMP's ``target teams`` lowering
and ompx's ``target teams ompx_bare`` all build a :class:`LaunchConfig`
and call :func:`launch_kernel`.

The canonical signature is config-first::

    launch_kernel(config, kernel, args, device=None, synchronous=True)

The pre-redesign kernel-first order is still accepted as a thin shim that
emits :class:`DeprecationWarning`; it will be removed two releases after
the :class:`LaunchConfig` consolidation (see the README's deprecation
timeline).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..errors import LaunchError
from ..trace import get_tracer
from .dim import Dim3, DimLike, as_dim3
from .engine import KernelStats, describe_plan_key, select_engine
from .stream import Stream

__all__ = ["LaunchConfig", "launch_kernel"]


@dataclass(frozen=True)
class LaunchConfig:
    """Grid/block geometry plus dynamic-shared size, stream and engine hint.

    Mirrors CUDA's ``<<<grid, block, sharedBytes, stream>>>`` and the ompx
    ``num_teams(...) thread_limit(...)`` clauses.  ``engine`` optionally
    pins the execution engine by name (``"block-thread"``, ``"map"``,
    ``"vector"``, ``"wave"``) instead of letting
    :func:`~repro.gpu.engine.select_engine` decide.
    """

    grid: Dim3
    block: Dim3
    shared_bytes: int = 0
    stream: Optional[Stream] = None
    engine: Optional[str] = None

    @classmethod
    def create(
        cls,
        grid: DimLike,
        block: DimLike,
        shared_bytes: int = 0,
        stream: Optional[Stream] = None,
        engine: Optional[str] = None,
    ) -> "LaunchConfig":
        """Build a config, coercing int/tuple geometry into :class:`Dim3`."""
        return cls(as_dim3(grid), as_dim3(block), int(shared_bytes), stream, engine)

    @property
    def total_threads(self) -> int:
        """Threads launched: grid volume times block volume."""
        return self.grid.volume * self.block.volume


def launch_kernel(
    config,
    kernel,
    args: Sequence = (),
    device=None,
    *,
    synchronous: bool = True,
) -> Optional[KernelStats]:
    """Validate and run a kernel described by a :class:`LaunchConfig`.

    ``device=None`` resolves to the current device.  With a stream and
    ``synchronous=False`` the launch is enqueued and ``None`` is returned
    (stats are unavailable until the stream drains) — the CUDA behaviour.
    Otherwise the kernel runs to completion and its :class:`KernelStats`
    are returned — the default OpenMP ``target`` behaviour the paper
    contrasts in §2.3.
    """
    if not isinstance(config, LaunchConfig):
        if isinstance(kernel, LaunchConfig) and callable(config):
            warnings.warn(
                "launch_kernel(kernel, config, ...) is deprecated; pass the "
                "LaunchConfig first: launch_kernel(config, kernel, ...)",
                DeprecationWarning,
                stacklevel=2,
            )
            config, kernel = kernel, config
        else:
            raise LaunchError(
                f"launch_kernel expects a LaunchConfig first, got "
                f"{type(config).__name__!s}"
            )
    if device is None:
        from .device import current_device

        device = current_device()
    device.spec.validate_launch(config.grid, config.block, config.shared_bytes)
    engine = select_engine(kernel, device, config.block, hint=config.engine)
    kernel_name = getattr(
        getattr(kernel, "fn", None) or kernel, "__name__", "kernel"
    )

    def run() -> KernelStats:
        tracer = get_tracer()
        try:
            if tracer is None:
                return engine.run(
                    kernel, config.grid, config.block, tuple(args), device,
                    config.shared_bytes,
                )
            with tracer.span(
                f"kernel:{kernel_name}",
                cat="kernel",
                engine=engine.name,
                grid=list(config.grid.as_tuple()),
                block=list(config.block.as_tuple()),
                shared_bytes=config.shared_bytes,
            ) as sp:
                stats = engine.run(
                    kernel, config.grid, config.block, tuple(args), device,
                    config.shared_bytes,
                )
                # Harvest the launch's observed-behaviour counters into
                # the span so trace consumers see what KernelStats saw.
                sp.args.update(
                    threads_run=stats.threads_run,
                    blocks_run=stats.blocks_run,
                    barriers=stats.barriers,
                    warp_collectives=stats.warp_collectives,
                    global_derefs=stats.global_derefs,
                    shared_declarations=stats.shared_declarations,
                )
                tracer.counter("launches")
                return stats
        except LaunchError as exc:
            if exc.engine is None:
                exc.engine = engine.name
            if exc.key is None:
                exc.key = describe_plan_key(
                    kernel, device, config.block, config.engine
                )
            raise

    if config.stream is not None and not synchronous:
        config.stream.enqueue(run, label=f"launch:{kernel_name}")
        return None
    if config.stream is not None:
        # Synchronous launch on a stream still respects stream ordering.
        result: list = []
        config.stream.enqueue(
            lambda: result.append(run()), label=f"launch:{kernel_name}"
        )
        config.stream.synchronize()
        return result[0]
    return run()
