"""Virtual GPU device descriptions and the device registry.

The paper evaluates on an NVIDIA A100 (40 GB, CUDA 11.8) and an AMD MI250
(ROCm 5.5) — Figure 7.  :class:`DeviceSpec` captures the architectural
parameters that matter to both the functional simulator (warp size, limits)
and the performance model (peaks, latencies, register files).
"""

from __future__ import annotations

import operator
import threading
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Union

from ..errors import GpuError, LaunchError
from .dim import Dim3, as_dim3

__all__ = [
    "Vendor",
    "DeviceSpec",
    "A100_SPEC",
    "MI250_SPEC",
    "XEHPC_SPEC",
    "PRESETS",
    "get_spec",
    "Device",
    "Placement",
    "resolve_placement",
    "get_device",
    "add_device",
    "remove_device",
    "set_current_device",
    "current_device",
    "reset_devices",
    "registered_devices",
]


class Vendor:
    """Vendor tags used for dispatch (e.g. the §3.6 wrapper layer)."""

    NVIDIA = "nvidia"
    AMD = "amd"
    INTEL = "intel"


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural description of a virtual GPU.

    Functional fields (``warp_size``, ``max_*``) constrain what kernels may
    do; performance fields (``peak_*``, ``*_latency_us``) feed
    :mod:`repro.perf`.
    """

    name: str
    vendor: str
    # --- functional limits -------------------------------------------------
    warp_size: int = 32
    max_threads_per_block: int = 1024
    max_block_dim: Dim3 = field(default_factory=lambda: Dim3(1024, 1024, 64))
    max_grid_dim: Dim3 = field(default_factory=lambda: Dim3(2**31 - 1, 65535, 65535))
    shared_mem_per_block: int = 48 * 1024       # bytes
    shared_mem_per_sm: int = 164 * 1024         # bytes
    registers_per_thread_max: int = 255
    registers_per_sm: int = 65536
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 32
    num_sms: int = 108
    global_mem_bytes: int = 40 * 1024**3
    constant_mem_bytes: int = 64 * 1024
    # --- performance parameters -------------------------------------------
    peak_bandwidth_gbs: float = 1555.0          # HBM bandwidth, GB/s
    peak_fp64_gflops: float = 9700.0
    peak_fp32_gflops: float = 19500.0
    peak_int_gops: float = 19500.0
    #: Special-function throughput (rsqrt/pow/exp/sin); NVIDIA ships dense
    #: SFU arrays, AMD emulates more in the vector ALUs.
    peak_special_gops: float = 4875.0
    shared_bandwidth_gbs: float = 19400.0       # aggregate LDS/shared bandwidth
    #: Per-SM instruction cache; device binaries past this size start
    #: missing (drives the SU3 ompx binary-bloat penalty, paper §4.2.3).
    icache_bytes: int = 16 * 1024
    kernel_launch_latency_us: float = 3.0
    sm_clock_ghz: float = 1.41

    def __post_init__(self) -> None:
        if self.warp_size <= 0 or self.warp_size & (self.warp_size - 1):
            raise ValueError(f"warp_size must be a positive power of two, got {self.warp_size}")
        if self.num_sms <= 0:
            raise ValueError("num_sms must be positive")
        if self.max_threads_per_block <= 0:
            raise ValueError("max_threads_per_block must be positive")

    def validate_launch(self, grid: Dim3, block: Dim3, shared_bytes: int = 0) -> None:
        """Raise :class:`LaunchError` if a launch is impossible on this device.

        Dimensions beyond the device's capability are *not* silently
        accepted: the paper (§3.2) says excess dimensions "will be
        disregarded", which the ompx layer implements by clamping before it
        reaches this check.
        """
        if grid.volume == 0 or block.volume == 0:
            raise LaunchError(
                f"empty launch: grid={grid} block={block}",
                cap=1,
                requested=0,
                hint="every launch needs at least one team with one thread",
            )
        if block.volume > self.max_threads_per_block:
            raise LaunchError(
                f"block {block} has {block.volume} threads; device "
                f"{self.name!r} allows {self.max_threads_per_block}",
                cap=self.max_threads_per_block,
                requested=block.volume,
                hint="shrink thread_limit/blockDim or split work across teams",
            )
        for axis in range(3):
            if block[axis] > self.max_block_dim[axis]:
                raise LaunchError(
                    f"block dim {axis} = {block[axis]} exceeds device limit "
                    f"{self.max_block_dim[axis]}",
                    cap=self.max_block_dim[axis],
                    requested=block[axis],
                    hint=f"reshape the block along axis {axis}",
                )
            if grid[axis] > self.max_grid_dim[axis]:
                raise LaunchError(
                    f"grid dim {axis} = {grid[axis]} exceeds device limit "
                    f"{self.max_grid_dim[axis]}",
                    cap=self.max_grid_dim[axis],
                    requested=grid[axis],
                    hint=f"reshape the grid along axis {axis}",
                )
        if shared_bytes > self.shared_mem_per_block:
            raise LaunchError(
                f"requested {shared_bytes} B of shared memory; device "
                f"{self.name!r} allows {self.shared_mem_per_block} B per block",
                cap=self.shared_mem_per_block,
                requested=shared_bytes,
                hint="shrink the dynamic shared allocation",
            )

    def clamp_dims(self, dims: Dim3, *, kind: str) -> Dim3:
        """Clamp dims exceeding this device's dimensionality support.

        ``kind`` is ``"grid"`` or ``"block"``.  Used by the ompx layer to
        implement §3.2's "dimensions exceeding a device's capability will be
        disregarded".
        """
        limit = self.max_grid_dim if kind == "grid" else self.max_block_dim
        clamped = [min(dims[i], limit[i]) if dims[i] > 0 else dims[i] for i in range(3)]
        return as_dim3(tuple(max(c, 1) for c in clamped))


# Figure 7 presets.  Performance parameters use public datasheet numbers for
# the A100-40GB and one GCD of the MI250 (LLVM OpenMP treats each GCD as a
# device).
A100_SPEC = DeviceSpec(
    name="NVIDIA A100 (40 GB)",
    vendor=Vendor.NVIDIA,
    warp_size=32,
    num_sms=108,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    registers_per_sm=65536,
    shared_mem_per_block=48 * 1024,
    shared_mem_per_sm=164 * 1024,
    global_mem_bytes=40 * 1024**3,
    peak_bandwidth_gbs=1555.0,
    peak_fp64_gflops=9700.0,
    peak_fp32_gflops=19500.0,
    peak_int_gops=19500.0,
    peak_special_gops=4875.0,
    shared_bandwidth_gbs=19400.0,
    icache_bytes=16 * 1024,
    kernel_launch_latency_us=1.0,
    sm_clock_ghz=1.41,
)

MI250_SPEC = DeviceSpec(
    name="AMD MI250 (1 GCD)",
    vendor=Vendor.AMD,
    warp_size=64,
    num_sms=104,                    # CUs per GCD
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    registers_per_sm=65536 * 2,     # AMD vector registers are larger
    shared_mem_per_block=64 * 1024,
    shared_mem_per_sm=64 * 1024,
    global_mem_bytes=64 * 1024**3,
    peak_bandwidth_gbs=1638.0,
    peak_fp64_gflops=23900.0,       # per GCD, vector FP64
    peak_fp32_gflops=23900.0,
    peak_int_gops=23900.0,
    peak_special_gops=1500.0,       # emulated specials; far below NVIDIA's SFUs
    shared_bandwidth_gbs=12800.0,
    icache_bytes=32 * 1024,
    kernel_launch_latency_us=2.0,   # ROCm launch overhead is higher
    sm_clock_ghz=1.7,
    max_threads_per_block=1024,
)

# The third-vendor preset the portability-and-scalability study argues
# for: an Intel XeHPC-class accelerator (Data Center GPU Max / Ponte
# Vecchio).  Level Zero exposes each stack as its own device (implicit
# scaling off), so the numbers are one stack of a Max 1550: 64 Xe-cores,
# 64 GB HBM2e at half the two-stack 3.2 TB/s, and FP64 at the same rate
# as FP32 (no narrow FP64 path).
XEHPC_SPEC = DeviceSpec(
    name="Intel Max 1550 (1 stack)",
    vendor=Vendor.INTEL,
    warp_size=32,                   # SIMD32 sub-groups
    num_sms=64,                     # Xe-cores per stack
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    registers_per_sm=64 * 1024,     # large GRF, exposed as 64K regs/Xe-core
    shared_mem_per_block=128 * 1024,  # SLM per work-group
    shared_mem_per_sm=128 * 1024,
    global_mem_bytes=64 * 1024**3,
    peak_bandwidth_gbs=1638.0,
    peak_fp64_gflops=26000.0,       # vector FP64 == FP32 rate per stack
    peak_fp32_gflops=26000.0,
    peak_int_gops=26000.0,
    peak_special_gops=3250.0,       # XMX helps matmul, not specials
    shared_bandwidth_gbs=11200.0,
    icache_bytes=96 * 1024,         # generous per-Xe-core instruction cache
    kernel_launch_latency_us=4.0,   # Level Zero submission overhead
    sm_clock_ghz=1.6,
    max_threads_per_block=1024,
)


#: Named device presets: every spec selectable by name instead of by
#: positional registry ordinal (``--device-spec``, tests, serving
#: configs).  Keys are the short architecture names.
PRESETS: Dict[str, DeviceSpec] = {
    "a100": A100_SPEC,
    "mi250": MI250_SPEC,
    "xehpc": XEHPC_SPEC,
}


def get_spec(name: str) -> DeviceSpec:
    """Look up a device preset by name (case-insensitive).

    The named companion to ordinal selection: ``get_spec("xehpc")``
    returns :data:`XEHPC_SPEC` wherever code previously had to import
    the constant or hardcode an ordinal.
    """
    try:
        return PRESETS[str(name).lower()]
    except KeyError:
        raise GpuError(
            f"no device preset named {name!r}; known presets: "
            f"{', '.join(sorted(PRESETS))}"
        ) from None


class Device:
    """A live virtual GPU: a spec plus mutable memory/stream state.

    The memory allocator and default stream live in other modules but attach
    themselves here so that all state for one device is reachable from the
    one object (and can be torn down by :func:`reset_devices` in tests).
    """

    def __init__(self, spec: DeviceSpec, ordinal: int) -> None:
        self.spec = spec
        self.ordinal = ordinal
        self._lock = threading.RLock()
        # Lazily attached by memory.py / stream.py to avoid import cycles.
        self._allocator = None
        self._default_stream = None
        self._streams: list = []
        # __constant__ memory: named, host-written, device-read-only.
        self._constants: Dict[str, "object"] = {}
        self._constant_bytes = 0
        # Sticky context poison (CUDA semantics): the first unhandled
        # kernel fault is captured here and re-reported by every later
        # API call on this device until reset().
        self._sticky: Optional[BaseException] = None
        # Peer access state: ordinals of devices whose memory this context
        # may reach over a direct interconnect link.  Directional, like
        # cudaDeviceEnablePeerAccess (enabling 0->1 says nothing about
        # 1->0).  Copies work either way; enablement changes the *modeled
        # cost* from staged-through-host to the direct peer link.
        self._peer_enabled: set = set()
        # Pre-teardown reset hooks.  A DevicePool registers one so that
        # resetting a pooled device first drains its worker queue
        # (cancelling queued jobs deterministically) instead of racing the
        # worker thread against the allocator teardown.
        self._reset_hooks: list = []

    # --- sticky context (CUDA cudaErrorIllegalAddress semantics) ------------
    def poison(self, error: BaseException) -> None:
        """Record an unhandled kernel fault as this context's sticky error.

        First fault wins, as on real hardware: subsequent faults on an
        already-poisoned context do not replace the original diagnosis.
        """
        with self._lock:
            if self._sticky is None:
                self._sticky = error

    @property
    def is_poisoned(self) -> bool:
        with self._lock:
            return self._sticky is not None

    @property
    def sticky_error(self) -> Optional[BaseException]:
        """The captured fault poisoning this context, if any."""
        with self._lock:
            return self._sticky

    def check_poison(self) -> None:
        """Raise the sticky error if this context is poisoned.

        Every device API entry point (launch, malloc, free, memcpy,
        memset, synchronize, target regions) calls this, mirroring how a
        poisoned CUDA context returns the same error from every call.
        """
        with self._lock:
            sticky = self._sticky
        if sticky is not None:
            from ..errors import StickyContextError

            raise StickyContextError(
                f"device {self.ordinal} ({self.spec.name}) context is "
                f"poisoned by an earlier kernel fault: {sticky}; call "
                f"ompx_device_reset()/cudaDeviceReset() to recover",
                device=self.ordinal,
                original=sticky,
            ) from sticky

    def add_reset_hook(self, hook) -> None:
        """Register a callable run at the *start* of :meth:`reset`.

        Hooks run before any state is torn down, outside the device lock,
        in registration order.  The :class:`~repro.sched.DevicePool` uses
        one to quiesce its worker: queued-but-unstarted jobs fail with
        :class:`~repro.errors.CancelledError` and the in-flight job (if
        any) is allowed to finish, so the teardown below never races
        live work.
        """
        with self._lock:
            self._reset_hooks.append(hook)

    def remove_reset_hook(self, hook) -> None:
        """Unregister a hook added by :meth:`add_reset_hook` (idempotent)."""
        with self._lock:
            if hook in self._reset_hooks:
                self._reset_hooks.remove(hook)

    def reset(self) -> None:
        """Tear down and re-arm this context (``cudaDeviceReset`` analogue).

        Closes every stream (shutting down worker threads), drops all
        allocations and constant symbols, and clears the sticky error.
        Outstanding DevicePointers become invalid, exactly as after a real
        device reset.  If the device belongs to a :class:`DevicePool`,
        the pool's reset hook runs first: queued jobs are failed with
        :class:`~repro.errors.CancelledError` and the worker is drained,
        so pooled resets are deterministic rather than racing the worker.
        """
        with self._lock:
            hooks = list(self._reset_hooks)
        # Hooks quiesce concurrent users (pool workers) and must run
        # before teardown, outside the lock — they join/wait on threads
        # that themselves touch this device.
        for hook in hooks:
            hook(self)
        with self._lock:
            streams = list(self._streams)
            default = self._default_stream
            self._streams = []
            self._default_stream = None
            self._allocator = None
            self._constants = {}
            self._constant_bytes = 0
            self._sticky = None
            self._peer_enabled = set()
        # Stream teardown joins worker threads — do it outside the lock so
        # in-flight work that touches the device cannot deadlock against us.
        for stream in streams:
            stream.close()
        if default is not None:
            default.close()

    # --- peer access (cudaDeviceEnablePeerAccess semantics) -----------------
    def can_access_peer(self, peer: "Placement") -> bool:
        """Whether a direct interconnect to ``peer`` exists (never to self).

        The simulated topology is fully connected — every distinct device
        pair can enable peer access — which matches a single-node system
        like the paper's A100 or MI250 hosts.
        """
        return resolve_placement(peer).ordinal != self.ordinal

    def enable_peer_access(self, peer: "Placement") -> None:
        """Allow direct access to ``peer``'s memory from this context.

        Directional, like ``cudaDeviceEnablePeerAccess``: enabling here
        does not enable the reverse direction.  Enabling twice or enabling
        access to self is an error, as on real hardware.
        """
        self.check_poison()
        target = resolve_placement(peer)
        if target.ordinal == self.ordinal:
            raise GpuError(
                f"device {self.ordinal} cannot enable peer access to itself"
            )
        with self._lock:
            if target.ordinal in self._peer_enabled:
                raise GpuError(
                    f"peer access {self.ordinal}->{target.ordinal} is "
                    f"already enabled"
                )
            self._peer_enabled.add(target.ordinal)

    def disable_peer_access(self, peer: "Placement") -> None:
        """Revoke direct access to ``peer``'s memory."""
        self.check_poison()
        target = resolve_placement(peer)
        with self._lock:
            if target.ordinal not in self._peer_enabled:
                raise GpuError(
                    f"peer access {self.ordinal}->{target.ordinal} is not "
                    f"enabled"
                )
            self._peer_enabled.discard(target.ordinal)

    def has_peer_access(self, peer: "Placement") -> bool:
        """Whether peer access from this device to ``peer`` is enabled."""
        ordinal = resolve_placement(peer).ordinal
        with self._lock:
            return ordinal in self._peer_enabled

    # --- constant memory (§2.5's fourth memory space) -----------------------
    def write_constant(self, name: str, data) -> None:
        """Upload a named ``__constant__`` symbol (``cudaMemcpyToSymbol``)."""
        import numpy as np

        array = np.ascontiguousarray(data).copy()
        with self._lock:
            old = self._constants.get(name)
            new_total = self._constant_bytes - (old.nbytes if old is not None else 0) + array.nbytes
            if new_total > self.spec.constant_mem_bytes:
                raise GpuError(
                    f"constant memory overflow on {self.spec.name!r}: symbol "
                    f"{name!r} needs {array.nbytes} B, bank holds "
                    f"{self.spec.constant_mem_bytes} B "
                    f"({self._constant_bytes} B in use)"
                )
            array.flags.writeable = False
            self._constants[name] = array
            self._constant_bytes = new_total

    def read_constant(self, name: str):
        """Device-side view of a constant symbol (read-only)."""
        with self._lock:
            try:
                return self._constants[name]
            except KeyError:
                raise GpuError(
                    f"no constant symbol {name!r} on {self.spec.name!r}; "
                    f"upload it with cudaMemcpyToSymbol/ompx_memcpy_to_symbol"
                ) from None

    @property
    def constant_bytes_in_use(self) -> int:
        with self._lock:
            return self._constant_bytes

    # --- memory ------------------------------------------------------------
    @property
    def allocator(self):
        """The device's global-memory allocator (created on first use)."""
        with self._lock:
            if self._allocator is None:
                from .memory import GlobalAllocator

                self._allocator = GlobalAllocator(self)
            return self._allocator

    # --- streams -----------------------------------------------------------
    @property
    def default_stream(self):
        """The device's default (NULL) stream."""
        with self._lock:
            if self._default_stream is None:
                from .stream import Stream

                # Device-qualified name so each device's NULL stream gets
                # its own trace track (multi-device runs would otherwise
                # merge every default stream into one Perfetto row).
                self._default_stream = Stream(
                    self, name=f"default@dev{self.ordinal}", register=False
                )
            return self._default_stream

    def register_stream(self, stream) -> None:
        """Track a stream so device-wide synchronize can drain it."""
        with self._lock:
            self._streams.append(stream)

    def synchronize(self) -> None:
        """Block until all work queued on every stream of this device is done.

        Like ``cudaDeviceSynchronize``, this is where a poisoned context
        reports its sticky error, and where any stream's sticky error
        surfaces at device scope.
        """
        self.check_poison()
        with self._lock:
            streams = list(self._streams)
            default = self._default_stream
        if default is not None:
            default.synchronize()
        for stream in streams:
            stream.synchronize()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Device {self.ordinal}: {self.spec.name}>"


# --- registry ---------------------------------------------------------------
#
# The default registry mirrors the paper's two systems plus the third
# vendor, with one twist the paper's AMD users will recognize: an MI250
# is two GCDs, and the ROCm/LLVM stack exposes EACH GCD as its own
# device.  Ordinal 0 is the A100, ordinals 1 and 2 are the MI250's two
# GCDs (1 is the conventional default AMD target throughout this
# library), and ordinal 3 is the Intel XeHPC stack.

_registry_lock = threading.RLock()
_devices: Dict[int, Device] = {}
_current: Optional[int] = None
_DEFAULT_SPECS = (A100_SPEC, MI250_SPEC, MI250_SPEC, XEHPC_SPEC)


def _ensure_defaults() -> None:
    with _registry_lock:
        if not _devices:
            for i, spec in enumerate(_DEFAULT_SPECS):
                _devices[i] = Device(spec, i)
        global _current
        if _current is None:
            _current = 0


def get_device(ordinal: int) -> Device:
    """Return the device with the given ordinal (0 = A100, 1 = MI250,
    3 = XeHPC)."""
    _ensure_defaults()
    with _registry_lock:
        try:
            return _devices[ordinal]
        except KeyError:
            raise GpuError(f"no device with ordinal {ordinal}") from None


#: What every ``device=`` parameter in the library accepts: a registry
#: ordinal, a live :class:`Device`, or ``None`` for the thread's current
#: device.  :func:`resolve_placement` is the single resolution path.
Placement = Union[int, Device, None]


def resolve_placement(placement: Placement, *, default=None) -> Device:
    """Resolve a ``device=`` argument to a live :class:`Device`.

    The one placement-resolution path for the whole library (every host
    API, every front end, the launcher and the scheduler):

    - ``None`` resolves to the thread's current device, or to ``default``
      (a Device or zero-argument callable) when one is supplied;
    - a :class:`Device` resolves to itself;
    - anything indexable as an integer (``int``, ``numpy.int64``, ...)
      resolves through the registry like ``cudaSetDevice`` ordinals do.
    """
    if placement is None:
        if default is None:
            return current_device()
        return default() if callable(default) else default
    if isinstance(placement, Device):
        return placement
    try:
        ordinal = operator.index(placement)
    except TypeError:
        raise GpuError(
            f"device= must be an int ordinal, a Device, or None; got "
            f"{type(placement).__name__}"
        ) from None
    return get_device(ordinal)


def add_device(spec: DeviceSpec) -> Device:
    """Register a new device after the defaults (used by DevicePool).

    The default devices (Figure 7 plus the XeHPC stack) keep ordinals
    0-3; new devices take the next free ordinal so existing pointers and
    fault selectors stay valid.
    """
    _ensure_defaults()
    with _registry_lock:
        ordinal = max(_devices) + 1
        device = Device(spec, ordinal)
        _devices[ordinal] = device
        return device


def remove_device(ordinal: int) -> None:
    """Unregister and reset a device added by :func:`add_device`.

    The default devices (ordinals 0-3) cannot be removed — the library's
    front ends assume they exist.
    """
    if ordinal < len(_DEFAULT_SPECS):
        raise GpuError(f"cannot remove default device {ordinal}")
    with _registry_lock:
        device = _devices.pop(ordinal, None)
        global _current
        if _current == ordinal:
            _current = 0
    if device is None:
        raise GpuError(f"no device with ordinal {ordinal}")
    device.reset()


def registered_devices() -> Dict[int, Device]:
    """A snapshot of the registry (ordinal -> Device)."""
    _ensure_defaults()
    with _registry_lock:
        return dict(_devices)


def set_current_device(ordinal: "Placement") -> Device:
    """Select the calling context's current device (like ``cudaSetDevice``).

    Accepts anything :func:`resolve_placement` does (ordinal or Device).
    """
    device = resolve_placement(ordinal)
    global _current
    with _registry_lock:
        _current = device.ordinal
    return device


def current_device() -> Device:
    """Return the current device (defaults to ordinal 0)."""
    _ensure_defaults()
    with _registry_lock:
        assert _current is not None
        return _devices[_current]


def reset_devices() -> None:
    """Drop all device state.  Intended for test isolation."""
    global _current
    with _registry_lock:
        _devices.clear()
        _current = None
