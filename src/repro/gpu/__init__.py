"""The SIMT virtual GPU substrate.

Everything the kernel-language layers (:mod:`repro.cuda`, :mod:`repro.hip`,
:mod:`repro.ompx`) and the OpenMP runtime model (:mod:`repro.openmp`) need
from "hardware": devices, global/shared memory, warps, barriers, atomics,
streams and kernel launch.

The paper's evaluation hardware (Figure 7) is available as device presets:
``get_device(0)`` is the NVIDIA A100 (40 GB), ``get_device(1)`` the AMD
MI250 (one GCD, 64-wide wavefronts), and ``get_device(3)`` an Intel
XeHPC-class stack; :data:`PRESETS`/:func:`get_spec` select the same
specs by name.
"""

from .atomics import AtomicDomain
from .context import BlockState, ThreadCtx
from .device import (
    A100_SPEC,
    MI250_SPEC,
    PRESETS,
    XEHPC_SPEC,
    Device,
    DeviceSpec,
    Placement,
    Vendor,
    add_device,
    current_device,
    get_device,
    get_spec,
    registered_devices,
    remove_device,
    reset_devices,
    resolve_placement,
    set_current_device,
)
from .dim import Dim3, as_dim3, delinearize, linearize
from .engine import (
    BlockThreadEngine,
    Engine,
    KernelStats,
    MapEngine,
    WaveVectorEngine,
    clear_engine_plans,
    select_engine,
)
from .launch import LaunchConfig, launch_kernel
from .memory import DevicePointer, GlobalAllocator, MemcpyKind, memcpy_peer, peer_copy
from .shared import SharedMemory
from .stream import Event, Stream
from .vector import VecDim3, VectorThreadCtx
from .warp import full_mask, mask_to_lanes

__all__ = [
    "AtomicDomain",
    "BlockState",
    "ThreadCtx",
    "A100_SPEC",
    "MI250_SPEC",
    "XEHPC_SPEC",
    "PRESETS",
    "get_spec",
    "Device",
    "DeviceSpec",
    "Placement",
    "Vendor",
    "add_device",
    "current_device",
    "get_device",
    "registered_devices",
    "remove_device",
    "reset_devices",
    "resolve_placement",
    "set_current_device",
    "Dim3",
    "as_dim3",
    "delinearize",
    "linearize",
    "BlockThreadEngine",
    "Engine",
    "KernelStats",
    "MapEngine",
    "WaveVectorEngine",
    "clear_engine_plans",
    "select_engine",
    "LaunchConfig",
    "launch_kernel",
    "VecDim3",
    "VectorThreadCtx",
    "DevicePointer",
    "GlobalAllocator",
    "MemcpyKind",
    "memcpy_peer",
    "peer_copy",
    "SharedMemory",
    "Event",
    "Stream",
    "full_mask",
    "mask_to_lanes",
]
