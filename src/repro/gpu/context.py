"""Per-thread kernel execution context.

A kernel in this library is a Python callable ``kernel(ctx, *args)``.
``ctx`` is the :class:`ThreadCtx` of one simulated GPU thread: it carries
the thread/block indices, shared memory, the block barrier, the thread's
warp, atomics, and global-memory dereferencing.  The CUDA, HIP and ompx
layers are thin façades over this one object — which is precisely the
paper's point: the underlying SIMT machine is the same, only the spelling
differs.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import SyncError
from ..faults.memcheck import get_memcheck as _get_memcheck
from .atomics import AtomicDomain
from .dim import Dim3, linearize
from .memory import DevicePointer
from .shared import SharedMemory
from .warp import CooperativeBarrier, LiveSet, WarpCollectives, full_mask, mask_to_lanes

__all__ = ["BlockState", "ThreadCtx"]


class BlockState:
    """State shared by all threads of one block: barrier, shared memory, warps."""

    def __init__(
        self,
        block_idx: Dim3,
        block_dim: Dim3,
        grid_dim: Dim3,
        device,
        shared_bytes: int,
        atomics: AtomicDomain,
    ) -> None:
        self.block_idx = block_idx
        self.block_dim = block_dim
        self.grid_dim = grid_dim
        self.device = device
        self.atomics = atomics
        self.shared = SharedMemory(device.spec.shared_mem_per_block, shared_bytes)
        nthreads = block_dim.volume
        self.live = LiveSet(range(nthreads))
        self.barrier = CooperativeBarrier(self.live)
        warp_size = device.spec.warp_size
        self.warps: Dict[int, WarpCollectives] = {}
        for warp_index in range((nthreads + warp_size - 1) // warp_size):
            first = warp_index * warp_size
            lanes = {
                lane: first + lane
                for lane in range(min(warp_size, nthreads - first))
            }
            self.warps[warp_index] = WarpCollectives(warp_index, lanes, self.live)


class ThreadCtx:
    """Everything one simulated GPU thread can see and do.

    The index properties mirror CUDA's built-ins (§3.3.1 of the paper);
    ``sync_threads``/``sync_warp``/``shfl_*`` mirror §3.3.2.  Language
    layers rename these, they do not re-implement them.
    """

    __slots__ = (
        "_block", "thread_idx", "_flat", "_warp", "_lane", "_sync_free",
        "n_barriers", "n_warp_collectives", "n_global_derefs", "n_shared_decls",
    )

    def __init__(self, block: BlockState, thread_idx: Dim3, *, sync_free: bool = False) -> None:
        self._block = block
        self.thread_idx = thread_idx
        self._flat = linearize(thread_idx, block.block_dim)
        warp_size = block.device.spec.warp_size
        self._warp = self._flat // warp_size
        self._lane = self._flat % warp_size
        self._sync_free = sync_free
        # Behavioural counters, harvested into KernelStats by the engines.
        self.n_barriers = 0
        self.n_warp_collectives = 0
        self.n_global_derefs = 0
        self.n_shared_decls = 0

    # --- indexing ------------------------------------------------------------
    @property
    def block_idx(self) -> Dim3:
        return self._block.block_idx

    @property
    def block_dim(self) -> Dim3:
        """Team extent in the given dimension (C++ ``ompx::block_dim``)."""
        return self._block.block_dim

    @property
    def grid_dim(self) -> Dim3:
        """Grid extent in the given dimension (C++ ``ompx::grid_dim``)."""
        return self._block.grid_dim

    @property
    def flat_thread_id(self) -> int:
        """Flat thread id within the block (x fastest)."""
        return self._flat

    @property
    def flat_block_id(self) -> int:
        return linearize(self._block.block_idx, self._block.grid_dim)

    @property
    def global_id_x(self) -> int:
        """``blockIdx.x * blockDim.x + threadIdx.x`` — the idiom in Figure 1."""
        return self.block_idx.x * self.block_dim.x + self.thread_idx.x

    @property
    def global_id_y(self) -> int:
        return self.block_idx.y * self.block_dim.y + self.thread_idx.y

    @property
    def global_id_z(self) -> int:
        return self.block_idx.z * self.block_dim.z + self.thread_idx.z

    @property
    def global_flat_id(self) -> int:
        """Flat id across the whole launch (block-major, x fastest)."""
        return self.flat_block_id * self._block.block_dim.volume + self._flat

    @property
    def lane_id(self) -> int:
        """Lane index of this thread within its warp."""
        return self._lane

    @property
    def warp_id(self) -> int:
        """Warp index within the block."""
        return self._warp

    @property
    def warp_size(self) -> int:
        """Lanes per warp/wavefront on this device (32 or 64)."""
        return self._block.device.spec.warp_size

    @property
    def num_threads(self) -> int:
        """Threads per block (``blockDim`` volume)."""
        return self._block.block_dim.volume

    @property
    def num_blocks(self) -> int:
        return self._block.grid_dim.volume

    @property
    def device(self):
        return self._block.device

    # --- memory ----------------------------------------------------------------
    def deref(self, ptr: DevicePointer, shape, dtype) -> np.ndarray:
        """View global memory at ``ptr`` as an array (the kernel's pointers)."""
        self.n_global_derefs += 1
        return self._block.device.allocator.view(ptr, shape, dtype)

    def shared_array(self, name: str, shape, dtype) -> np.ndarray:
        """Declare/get a ``__shared__`` array for this block."""
        self.n_shared_decls += 1
        return self._block.shared.array(name, shape, dtype)

    def dynamic_shared(self, dtype) -> np.ndarray:
        """The dynamic (``extern __shared__``) region, viewed as ``dtype``."""
        return self._block.shared.dynamic(dtype)

    def constant(self, name: str) -> np.ndarray:
        """Read a ``__constant__`` symbol (read-only device view)."""
        return self._block.device.read_constant(name)

    # --- synchronization --------------------------------------------------------
    def _require_sync(self, what: str) -> None:
        if self._sync_free:
            raise SyncError(
                f"{what} called from a kernel launched on the sync-free MapEngine; "
                f"launch it cooperatively (sync_free=False) instead"
            )

    def sync_threads(self) -> None:
        """Block-level barrier (``__syncthreads`` / ``ompx_sync_thread_block``)."""
        self._require_sync("sync_threads")
        self.n_barriers += 1
        self._block.barrier.wait(self._flat)

    def sync_warp(self, mask: Optional[int] = None) -> None:
        """Warp-level barrier (``__syncwarp`` / ``ompx_sync_warp``)."""
        self._require_sync("sync_warp")
        warp = self._block.warps[self._warp]
        lanes = self._decode_mask(warp, mask)
        warp.sync(lanes, self._lane)

    def _decode_mask(self, warp: WarpCollectives, mask: Optional[int]):
        self.n_warp_collectives += 1
        if mask is None:
            return mask_to_lanes(full_mask(warp.width), warp.width)
        return mask_to_lanes(mask, self.warp_size) & frozenset(range(warp.width))

    # --- warp collectives ---------------------------------------------------------
    def shfl_sync(self, value, src_lane: int, mask: Optional[int] = None):
        """``__shfl_sync`` / ``ompx_shfl_sync``: read ``var`` from ``src_lane``."""
        self._require_sync("shfl_sync")
        warp = self._block.warps[self._warp]
        return warp.shfl(self._decode_mask(warp, mask), self._lane, value, src_lane)

    def shfl_up_sync(self, value, delta: int, mask: Optional[int] = None):
        """``__shfl_up_sync``: read from the lane ``delta`` below."""
        self._require_sync("shfl_up_sync")
        warp = self._block.warps[self._warp]
        return warp.shfl_up(self._decode_mask(warp, mask), self._lane, value, delta)

    def shfl_down_sync(self, value, delta: int, mask: Optional[int] = None):
        """``__shfl_down_sync``: read from the lane ``delta`` above."""
        self._require_sync("shfl_down_sync")
        warp = self._block.warps[self._warp]
        return warp.shfl_down(self._decode_mask(warp, mask), self._lane, value, delta)

    def shfl_xor_sync(self, value, lane_mask: int, mask: Optional[int] = None):
        """``__shfl_xor_sync``: butterfly exchange with lane ``lane_id ^ lane_mask``."""
        self._require_sync("shfl_xor_sync")
        warp = self._block.warps[self._warp]
        return warp.shfl_xor(self._decode_mask(warp, mask), self._lane, value, lane_mask)

    def ballot_sync(self, predicate: bool, mask: Optional[int] = None) -> int:
        """``__ballot_sync``: bitmask of lanes whose predicate is true."""
        self._require_sync("ballot_sync")
        warp = self._block.warps[self._warp]
        return warp.ballot(self._decode_mask(warp, mask), self._lane, predicate)

    def any_sync(self, predicate: bool, mask: Optional[int] = None) -> bool:
        """``__any_sync``: true iff any participating lane's predicate is true."""
        self._require_sync("any_sync")
        warp = self._block.warps[self._warp]
        return warp.any(self._decode_mask(warp, mask), self._lane, predicate)

    def all_sync(self, predicate: bool, mask: Optional[int] = None) -> bool:
        """``__all_sync``: true iff every participating lane's predicate is true."""
        self._require_sync("all_sync")
        warp = self._block.warps[self._warp]
        return warp.all(self._decode_mask(warp, mask), self._lane, predicate)

    def warp_reduce(self, value, op, mask: Optional[int] = None):
        """Warp-wide reduction with ``op``; every lane receives the result."""
        self._require_sync("warp_reduce")
        warp = self._block.warps[self._warp]
        return warp.reduce(self._decode_mask(warp, mask), self._lane, value, op)

    def match_any_sync(self, value, mask: Optional[int] = None) -> int:
        """Mask of lanes in the warp holding the same ``value``."""
        self._require_sync("match_any_sync")
        warp = self._block.warps[self._warp]
        return warp.match_any(self._decode_mask(warp, mask), self._lane, value)

    def match_all_sync(self, value, mask: Optional[int] = None):
        """(mask, predicate): full participating mask iff all values equal."""
        self._require_sync("match_all_sync")
        warp = self._block.warps[self._warp]
        return warp.match_all(self._decode_mask(warp, mask), self._lane, value)

    # --- atomics -------------------------------------------------------------------
    @property
    def atomic(self) -> AtomicDomain:
        return self._block.atomics

    # --- portable vector intrinsics ---------------------------------------------
    # Scalar counterparts of the VectorThreadCtx intrinsics: a kernel written
    # against select/load/store/loop_max runs unchanged under every engine.
    def select(self, cond, a, b):
        """Branch-free conditional: ``a if cond else b``."""
        return a if cond else b

    def load(self, view, index, fill=0):
        """Bounds-guarded read: ``view[index]`` if in range, else ``fill``."""
        checker = _get_memcheck()
        if checker is not None:
            checker.check_load(view, index)
        idx = int(index)
        if 0 <= idx < view.shape[0]:
            return view[idx]
        return view.dtype.type(fill)

    def store(self, view, index, value, mask=True) -> None:
        """Bounds-guarded masked write: ``view[index] = value`` if allowed.

        Without the sanitizer an out-of-bounds masked-in store is silently
        dropped (real hardware would silently corrupt); under
        :func:`repro.faults.memcheck` it raises :class:`MemcheckError`.
        """
        checker = _get_memcheck()
        if checker is not None:
            checker.check_store(view, index, mask)
        if not mask:
            return
        idx = int(index)
        if 0 <= idx < view.shape[0]:
            view[idx] = value

    def loop_max(self, count) -> int:
        """Upper trip-count bound for a lane-varying loop (identity here)."""
        return int(count)
