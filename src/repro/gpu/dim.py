"""Three-dimensional index arithmetic for grids and blocks.

CUDA and HIP describe launch geometry with ``dim3``; the paper's §3.2
extension lets OpenMP's ``num_teams``/``thread_limit`` clauses take the same
multi-dimensional lists.  :class:`Dim3` is the common currency used by the
virtual GPU, the kernel-language layers and the ompx layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple, Union

from ..errors import LaunchError

__all__ = ["Dim3", "as_dim3", "linearize", "delinearize"]

DimLike = Union["Dim3", int, Tuple[int, ...], Iterable[int]]


@dataclass(frozen=True)
class Dim3:
    """An ``(x, y, z)`` extent or index triple.

    All components must be non-negative; extents used for launches must be
    strictly positive (validated at launch time, not here, so that ``Dim3``
    can also represent indices that may legitimately be zero).
    """

    x: int = 1
    y: int = 1
    z: int = 1

    def __post_init__(self) -> None:
        for name in ("x", "y", "z"):
            value = getattr(self, name)
            if not isinstance(value, (int,)) or isinstance(value, bool):
                raise TypeError(f"Dim3.{name} must be an int, got {value!r}")
            if value < 0:
                raise ValueError(f"Dim3.{name} must be >= 0, got {value}")

    @property
    def volume(self) -> int:
        """Total number of elements covered by this extent."""
        return self.x * self.y * self.z

    @property
    def ndim(self) -> int:
        """Number of trailing dimensions that are not 1 (at least 1)."""
        if self.z != 1:
            return 3
        if self.y != 1:
            return 2
        return 1

    def as_tuple(self) -> Tuple[int, int, int]:
        """The ``(x, y, z)`` components as a plain tuple."""
        return (self.x, self.y, self.z)

    def __iter__(self) -> Iterator[int]:
        return iter(self.as_tuple())

    def __getitem__(self, axis: int) -> int:
        return self.as_tuple()[axis]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.x}, {self.y}, {self.z})"


def as_dim3(value: DimLike) -> Dim3:
    """Coerce an int, tuple or :class:`Dim3` into a :class:`Dim3`.

    This mirrors CUDA's implicit ``int -> dim3`` conversion and the paper's
    list-valued ``num_teams(128, 64, 32)`` syntax.
    """
    if isinstance(value, Dim3):
        return value
    if isinstance(value, bool):
        raise TypeError("bool is not a valid dimension")
    if isinstance(value, int):
        return Dim3(value, 1, 1)
    parts = tuple(int(v) for v in value)
    if not 1 <= len(parts) <= 3:
        raise LaunchError(
            f"dimension list must have 1-3 entries, got {len(parts)}: {parts!r}"
        )
    padded = parts + (1,) * (3 - len(parts))
    return Dim3(*padded)


def linearize(index: Dim3, extent: Dim3) -> int:
    """Map a 3-D index within ``extent`` to a flat id, x fastest.

    This matches the CUDA convention where ``threadIdx.x`` is the fastest
    varying component (consecutive ``x`` form a warp).
    """
    if not (0 <= index.x < extent.x and 0 <= index.y < extent.y and 0 <= index.z < extent.z):
        raise IndexError(f"index {index} out of extent {extent}")
    return index.x + extent.x * (index.y + extent.y * index.z)


def delinearize(flat: int, extent: Dim3) -> Dim3:
    """Inverse of :func:`linearize`."""
    if not 0 <= flat < extent.volume:
        raise IndexError(f"flat index {flat} out of extent {extent} (volume {extent.volume})")
    x = flat % extent.x
    rest = flat // extent.x
    y = rest % extent.y
    z = rest // extent.y
    return Dim3(x, y, z)
