"""Block- and warp-level collective algorithms built on the primitives.

Kernel languages ship these as libraries (CUB's ``BlockReduce``, HIP's
rocPRIM); the paper's extensions make them expressible in OpenMP because
§3.3.2 provides the missing shuffle/barrier granularity.  The functions
here are written *against the kernel façades* — the same calls work from
a CUDA kernel (``t``), an ompx bare kernel (``x``), or a raw
:class:`~repro.gpu.context.ThreadCtx` — and they are exactly the
textbook shuffle-tree + shared-scratch algorithms.

All functions are block-collective: every live thread of the block must
call them (they contain barriers and warp collectives).
"""

from __future__ import annotations

import operator
from typing import Callable

import numpy as np

from .context import ThreadCtx

__all__ = ["block_reduce", "warp_inclusive_scan", "block_inclusive_scan"]


def _ctx(thread) -> ThreadCtx:
    """Accept a façade (CudaThread/OmpxThread) or a raw ThreadCtx."""
    return thread.ctx if hasattr(thread, "ctx") else thread


def warp_inclusive_scan(thread, value, op: Callable = operator.add):
    """Inclusive scan across the calling thread's warp (shuffle tree).

    Lane ``i`` receives ``op(value_0, ..., value_i)``.  Every lane of the
    warp must call.
    """
    ctx = _ctx(thread)
    lane = ctx.lane_id
    offset = 1
    while offset < ctx.warp_size:
        neighbour = ctx.shfl_up_sync(value, offset)
        if lane >= offset:
            value = op(value, neighbour)
        offset *= 2
    return value


def block_reduce(thread, value, op: Callable = operator.add, *,
                 scratch_dtype=np.float64, name: str = "__block_reduce"):
    """Block-wide reduction; every thread receives the combined value.

    Warp-level shuffle reduction, then one value per warp through shared
    memory, combined by thread 0 and broadcast back.  ``scratch_dtype``
    must be able to hold the values being reduced.
    """
    ctx = _ctx(thread)
    warp_total = ctx.warp_reduce(value, op)
    n_warps = (ctx.num_threads + ctx.warp_size - 1) // ctx.warp_size
    scratch = ctx.shared_array(name, n_warps + 1, scratch_dtype)
    if ctx.lane_id == 0:
        scratch[ctx.warp_id] = warp_total
    ctx.sync_threads()
    if ctx.flat_thread_id == 0:
        total = scratch[0]
        for w in range(1, n_warps):
            total = op(total, scratch[w])
        scratch[n_warps] = total
    ctx.sync_threads()
    result = scratch[n_warps]
    # Reuse across calls: reset happens naturally because every slot is
    # rewritten before it is read on the next invocation.
    ctx.sync_threads()
    return result


def block_inclusive_scan(thread, value, op: Callable = operator.add, *,
                         scratch_dtype=np.float64, name: str = "__block_scan"):
    """Block-wide inclusive scan over flat thread ids.

    Warp-local shuffle scan, then an exclusive scan of the warp totals in
    shared memory, added back as each warp's offset.
    """
    ctx = _ctx(thread)
    scanned = warp_inclusive_scan(thread, value, op)
    n_warps = (ctx.num_threads + ctx.warp_size - 1) // ctx.warp_size
    totals = ctx.shared_array(name, n_warps, scratch_dtype)
    warp_lanes = min(ctx.warp_size, ctx.num_threads - ctx.warp_id * ctx.warp_size)
    if ctx.lane_id == warp_lanes - 1:
        totals[ctx.warp_id] = scanned
    ctx.sync_threads()
    if ctx.flat_thread_id == 0:
        # in-place exclusive scan of the warp totals
        running = totals[0]
        totals[0] = 0
        for w in range(1, n_warps):
            running, totals[w] = op(running, totals[w]), running
    ctx.sync_threads()
    if ctx.warp_id > 0:
        scanned = op(scanned, totals[ctx.warp_id])
    ctx.sync_threads()
    return scanned
