"""Streams and events — ordered asynchronous work queues.

§2.4 of the paper: a stream is "an ordered queue of operations"; work in
one stream is sequential, work across streams may overlap.  The extended
``depend(interopobj: obj)`` clause (§3.5) ultimately enqueues target
regions onto one of these.

Each :class:`Stream` owns a worker thread draining a FIFO of closures.
``synchronize`` blocks until the queue is empty *and* the worker is idle —
the same contract as ``cudaStreamSynchronize``.  Exceptions raised by
queued work are captured and re-raised on the next synchronization point,
mirroring CUDA's sticky-error behaviour.
"""

from __future__ import annotations

import itertools
import queue
import threading
from typing import Callable, List, Optional

from ..errors import GpuError

__all__ = ["Stream", "Event"]

_stream_ids = itertools.count(1)


class Event:
    """A marker that becomes set once the stream reaches it (``cudaEvent_t``)."""

    def __init__(self, name: str = "") -> None:
        self.name = name or f"event-{next(_stream_ids)}"
        self._flag = threading.Event()

    def _record(self) -> None:
        self._flag.set()

    @property
    def is_complete(self) -> bool:
        return self._flag.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Host-side wait (``cudaEventSynchronize``)."""
        return self._flag.wait(timeout)


class Stream:
    """An ordered asynchronous queue of device operations."""

    def __init__(self, device, name: str = "") -> None:
        self.device = device
        self.name = name or f"stream-{next(_stream_ids)}"
        self._queue: "queue.Queue[Optional[Callable[[], None]]]" = queue.Queue()
        self._idle = threading.Event()
        self._idle.set()
        self._pending = 0
        self._lock = threading.Lock()
        self._errors: List[BaseException] = []
        self._closed = False
        self._worker = threading.Thread(
            target=self._drain, name=f"{self.name}-worker", daemon=True
        )
        self._worker.start()
        if name != "default":
            device.register_stream(self)

    # --- queue management -------------------------------------------------
    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                break
            try:
                item()
            except BaseException as exc:  # noqa: BLE001 - reported at sync
                with self._lock:
                    self._errors.append(exc)
            finally:
                with self._lock:
                    self._pending -= 1
                    if self._pending == 0:
                        self._idle.set()

    def enqueue(self, fn: Callable[[], None]) -> None:
        """Append an operation; it runs after everything already queued."""
        with self._lock:
            if self._closed:
                raise GpuError(f"stream {self.name!r} is closed")
            self._pending += 1
            self._idle.clear()
        self._queue.put(fn)

    def record_event(self, event: Optional[Event] = None) -> Event:
        """Enqueue an event record (``cudaEventRecord``)."""
        event = event or Event()
        self.enqueue(event._record)
        return event

    def wait_event(self, event: Event) -> None:
        """Make later work in this stream wait for ``event`` (``cudaStreamWaitEvent``)."""
        self.enqueue(lambda: event._flag.wait())

    def synchronize(self) -> None:
        """Block until all queued work has run; re-raise any captured error."""
        self._idle.wait()
        with self._lock:
            if self._errors:
                first = self._errors[0]
                self._errors.clear()
                raise GpuError(f"stream {self.name!r}: queued work failed") from first

    @property
    def is_idle(self) -> bool:
        return self._idle.is_set()

    def close(self) -> None:
        """Stop the worker (used by tests; streams are normally immortal)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(None)
        self._worker.join(timeout=5)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Stream {self.name} on {self.device.spec.name}>"
