"""Streams and events — ordered asynchronous work queues.

§2.4 of the paper: a stream is "an ordered queue of operations"; work in
one stream is sequential, work across streams may overlap.  The extended
``depend(interopobj: obj)`` clause (§3.5) ultimately enqueues target
regions onto one of these.

Each :class:`Stream` owns a worker thread draining a FIFO of closures.
``synchronize`` blocks until the queue is empty *and* the worker is idle —
the same contract as ``cudaStreamSynchronize``.  Exceptions raised by
queued work are captured and re-raised at the next synchronization point,
mirroring CUDA's sticky-error behaviour: that means
``Stream.synchronize``, ``Event.synchronize`` on an event recorded on the
stream, *and* any subsequent ``enqueue`` — like CUDA, once a stream is in
error every later API call on it reports the error.  Synchronization
clears the sticky state; a refused ``enqueue`` leaves it set so the error
is still reported at the eventual sync.

Tracing: when :func:`repro.trace.get_tracer` returns a tracer, every
enqueued operation records a ``queued:<op>`` span (time spent waiting in
the FIFO) followed by an ``exec:<op>`` span (the execution itself) on the
stream's own track — which is what makes cross-stream overlap visible in
a Chrome trace.  With tracing disabled the only cost is one global read
per enqueue.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from ..errors import GpuError
from ..faults.inject import active_plan as _fault_plan
from ..trace import get_tracer

__all__ = ["Stream", "Event"]

_stream_ids = itertools.count(1)


class Event:
    """A marker that becomes set once the stream reaches it (``cudaEvent_t``)."""

    def __init__(self, name: str = "") -> None:
        self.name = name or f"event-{next(_stream_ids)}"
        self._flag = threading.Event()
        self._stream: Optional["Stream"] = None

    def _record(self) -> None:
        self._flag.set()

    @property
    def is_complete(self) -> bool:
        return self._flag.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Host-side wait (``cudaEventSynchronize`` without error reporting)."""
        return self._flag.wait(timeout)

    def synchronize(self, timeout: Optional[float] = None) -> bool:
        """Wait for the event, then re-raise the recording stream's sticky error.

        The full ``cudaEventSynchronize`` contract: it is a
        synchronization point, so an exception captured by earlier work
        on the stream that recorded this event is re-raised here (and the
        sticky state is cleared, as at ``Stream.synchronize``).
        """
        reached = self._flag.wait(timeout)
        if self._stream is not None:
            self._stream._raise_sticky(clear=True)
        return reached

    # Context-manager form: ``with Event() as done:`` synchronizes on exit,
    # so the block cannot leak un-awaited device work.
    def __enter__(self) -> "Event":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        # An event never recorded on a stream completes trivially, like
        # cudaEventSynchronize on a fresh event.  If the body is already
        # unwinding with an exception, wait without raising so the sticky
        # stream error cannot mask the in-flight one.
        if self._stream is not None:
            if exc_type is None:
                self.synchronize()
            else:
                self._flag.wait()
        return False


def _label_for(fn: Callable[[], None]) -> str:
    return getattr(fn, "__qualname__", None) or getattr(fn, "__name__", "op")


class Stream:
    """An ordered asynchronous queue of device operations."""

    def __init__(self, device, name: str = "", *, register: bool = True) -> None:
        self.device = device
        self.name = name or f"stream-{next(_stream_ids)}"
        self._queue: "queue.Queue[Optional[Callable[[], None]]]" = queue.Queue()
        self._idle = threading.Event()
        self._idle.set()
        self._pending = 0
        self._lock = threading.Lock()
        self._errors: List[BaseException] = []
        self._closed = False
        self._worker = threading.Thread(
            target=self._drain, name=f"{self.name}-worker", daemon=True
        )
        self._worker.start()
        # The default (NULL) stream is torn down by Device.reset directly
        # and passes register=False to stay out of the registered list.
        if register:
            device.register_stream(self)

    # --- queue management -------------------------------------------------
    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                break
            try:
                item()
            except BaseException as exc:  # noqa: BLE001 - reported at sync
                with self._lock:
                    self._errors.append(exc)
            finally:
                with self._lock:
                    self._pending -= 1
                    if self._pending == 0:
                        self._idle.set()

    def _traced(
        self,
        tracer,
        fn: Callable[[], None],
        label: Optional[str],
        trace_cat: str,
        trace_args: Optional[Dict[str, Any]],
    ) -> Callable[[], None]:
        """Wrap ``fn`` so its queue wait and execution record as spans."""
        op = label or _label_for(fn)
        track = f"stream:{self.name}"
        enqueued_us = tracer.now_us()
        args = dict(trace_args or {})
        args["stream"] = self.name

        def wrapped() -> None:
            start_us = tracer.now_us()
            tracer.add_span(f"queued:{op}", "queue", track, enqueued_us,
                            start_us - enqueued_us, args)
            with tracer.on_track(track):
                with tracer.span(f"exec:{op}", cat=trace_cat, track=track, **args):
                    fn()

        return wrapped

    def enqueue(
        self,
        fn: Callable[[], None],
        *,
        label: Optional[str] = None,
        trace_cat: str = "stream",
        trace_args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Append an operation; it runs after everything already queued.

        If the stream is in the sticky-error state the enqueue is refused
        by re-raising the captured error (without clearing it — only a
        synchronization point clears).  ``label``/``trace_cat``/
        ``trace_args`` name and annotate the operation's trace spans and
        are ignored when tracing is disabled.
        """
        plan = _fault_plan()
        if plan is not None:
            # Raise-type rules (enqueue:abort) refuse the enqueue here on
            # the host thread; delay effects run on the worker so they
            # occupy the stream like a real slow transfer would.
            effects = plan.fire(
                "enqueue",
                stream=self.name,
                device=self.device.ordinal,
                op=label or _label_for(fn),
            )
            delay_s = effects.get("delay_s")
            if delay_s:
                inner = fn

                def fn() -> None:  # noqa: F811 - deliberate shadow
                    time.sleep(delay_s)
                    inner()

        tracer = get_tracer()
        if tracer is not None:
            fn = self._traced(tracer, fn, label, trace_cat, trace_args)
        with self._lock:
            if self._closed:
                raise GpuError(f"stream {self.name!r} is closed")
            if self._errors:
                raise GpuError(
                    f"stream {self.name!r}: queued work failed (sticky error; "
                    f"synchronize the stream to clear it)"
                ) from self._errors[0]
            self._pending += 1
            self._idle.clear()
        self._queue.put(fn)

    def record_event(self, event: Optional[Event] = None) -> Event:
        """Enqueue an event record (``cudaEventRecord``)."""
        event = event or Event()
        event._stream = self
        self.enqueue(event._record, label=f"event-record:{event.name}")
        return event

    def wait_event(self, event: Event) -> None:
        """Make later work in this stream wait for ``event`` (``cudaStreamWaitEvent``)."""
        self.enqueue(lambda: event._flag.wait(), label=f"wait-event:{event.name}")

    def _raise_sticky(self, *, clear: bool) -> None:
        """Re-raise the first captured error, optionally clearing the state."""
        with self._lock:
            if not self._errors:
                return
            first = self._errors[0]
            if clear:
                self._errors.clear()
        raise GpuError(f"stream {self.name!r}: queued work failed") from first

    def synchronize(self) -> None:
        """Block until all queued work has run; re-raise any captured error."""
        self._idle.wait()
        self._raise_sticky(clear=True)

    @property
    def is_idle(self) -> bool:
        return self._idle.is_set()

    # Context-manager form: ``with Stream(device) as s:`` synchronizes on
    # exit, mirroring the CUDA idiom of a stream that is drained before
    # the enclosing scope returns.  The stream stays usable afterwards.
    def __enter__(self) -> "Stream":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.synchronize()
        else:
            # The body is unwinding: drain quietly so a sticky stream
            # error cannot mask the exception already in flight.
            self._idle.wait()
        return False

    def close(self) -> None:
        """Stop the worker (used by tests; streams are normally immortal)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(None)
        self._worker.join(timeout=5)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Stream {self.name} on {self.device.spec.name}>"
