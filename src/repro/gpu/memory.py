"""Virtual device global memory: allocator, typed pointers, memcpy.

Device memory is a set of NumPy-backed allocations indexed by virtual
addresses.  A :class:`DevicePointer` is a (address) handle supporting
pointer arithmetic, exactly like the ``int*`` values flowing through the
paper's CUDA example (Figure 1) and through ``ompx_malloc`` (§3.4).
"""

from __future__ import annotations

import os
import sys
import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import InvalidPointerError, OutOfMemoryError
from ..faults.inject import active_plan as _fault_plan
from ..faults.memcheck import get_memcheck as _get_memcheck

__all__ = [
    "MemcpyKind",
    "DevicePointer",
    "Allocation",
    "GlobalAllocator",
    "memcpy_peer",
    "peer_copy",
]


class MemcpyKind:
    """Direction tags mirroring ``cudaMemcpyKind``."""

    HOST_TO_DEVICE = "host_to_device"
    DEVICE_TO_HOST = "device_to_host"
    DEVICE_TO_DEVICE = "device_to_device"
    HOST_TO_HOST = "host_to_host"


_ALIGNMENT = 256  # bytes; matches CUDA's minimum allocation alignment

_REPRO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_GPU_DIR = os.path.dirname(os.path.abspath(__file__))


def _call_site() -> str:
    """``file:line`` of the frame that caused an allocator call.

    Prefers the first frame outside the repro library (the user's code);
    falls back to the first frame outside the gpu package (the language
    layer, e.g. ``host.py:75``) for library-internal allocations.  Used
    to attribute double-frees and leaks to their original malloc.
    """
    frame = sys._getframe(1)
    outside_gpu: Optional[str] = None
    for _ in range(32):
        if frame is None:
            break
        filename = frame.f_code.co_filename
        if not filename.startswith(_REPRO_ROOT):
            return f"{os.path.basename(filename)}:{frame.f_lineno}"
        if outside_gpu is None and not filename.startswith(_GPU_DIR):
            outside_gpu = f"{os.path.basename(filename)}:{frame.f_lineno}"
        frame = frame.f_back
    return outside_gpu or "<repro internal>"


@dataclass(frozen=True)
class DevicePointer:
    """An address in a device's virtual global address space.

    Supports ``ptr + n`` / ``ptr - n`` byte arithmetic so that kernels and
    host code can index into the middle of allocations; dereferencing is
    done through the owning :class:`GlobalAllocator`.
    """

    device_ordinal: int
    address: int

    def __add__(self, offset: int) -> "DevicePointer":
        return DevicePointer(self.device_ordinal, self.address + int(offset))

    def __sub__(self, offset: int) -> "DevicePointer":
        return DevicePointer(self.device_ordinal, self.address - int(offset))

    def offset_elements(self, count: int, dtype: np.dtype) -> "DevicePointer":
        """Advance by ``count`` elements of ``dtype``."""
        return self + int(count) * np.dtype(dtype).itemsize

    @property
    def is_null(self) -> bool:
        return self.address == 0

    def __bool__(self) -> bool:
        return not self.is_null

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DevicePointer(dev={self.device_ordinal}, 0x{self.address:x})"


NULL_ADDRESS = 0


@dataclass
class Allocation:
    """One live allocation: base address plus raw byte storage."""

    base: int
    data: np.ndarray  # uint8 buffer of len size

    @property
    def size(self) -> int:
        return self.data.nbytes

    @property
    def end(self) -> int:
        return self.base + self.size


class GlobalAllocator:
    """Bump allocator with a free list over a device's global memory.

    The virtual address space starts above zero so that the null pointer is
    always invalid.  Freed ranges are not recycled (addresses are never
    reused), which turns use-after-free into a deterministic
    :class:`InvalidPointerError` rather than silent corruption — valuable in
    a simulator whose main job is catching porting bugs.
    """

    _BASE = 0x1000

    def __init__(self, device) -> None:
        self._device = device
        self._lock = threading.RLock()
        self._next = self._BASE
        self._allocations: Dict[int, Allocation] = {}
        self._bytes_in_use = 0
        # Diagnostics: where each live allocation was made (base -> site),
        # and every freed range (base -> (size, alloc site, free site)) so
        # double-frees and use-after-free name the original allocation.
        self._alloc_sites: Dict[int, str] = {}
        self._freed: Dict[int, Tuple[int, str, str]] = {}

    # --- allocation --------------------------------------------------------
    def malloc(self, size: int) -> DevicePointer:
        """Allocate ``size`` bytes of zero-initialized global memory."""
        if size < 0:
            raise ValueError(f"allocation size must be >= 0, got {size}")
        size = max(int(size), 1)
        self._device.check_poison()
        plan = _fault_plan()
        if plan is not None:
            plan.fire("malloc", device=self._device.ordinal, size=size)
        site = _call_site()
        with self._lock:
            if self._bytes_in_use + size > self._device.spec.global_mem_bytes:
                raise OutOfMemoryError(
                    f"device {self._device.spec.name!r}: requested {size} B, "
                    f"{self._device.spec.global_mem_bytes - self._bytes_in_use} B free"
                )
            base = self._next
            aligned = (size + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT
            self._next = base + aligned
            self._allocations[base] = Allocation(base, np.zeros(size, dtype=np.uint8))
            self._alloc_sites[base] = site
            self._bytes_in_use += size
        return DevicePointer(self._device.ordinal, base)

    def free(self, ptr: DevicePointer) -> None:
        """Release an allocation.  Freeing the null pointer is a no-op.

        Double-frees, frees of pointers into the *middle* of a live
        allocation, and frees of never-allocated addresses are three
        distinct bugs; each gets its own diagnosis (naming the original
        allocation site where one exists) instead of one generic error.
        """
        if ptr.is_null:
            return
        self._device.check_poison()
        plan = _fault_plan()
        if plan is not None:
            plan.fire("free", device=self._device.ordinal,
                      ptr=f"0x{ptr.address:x}")
        with self._lock:
            alloc = self._allocations.pop(ptr.address, None)
            if alloc is None:
                raise self._bad_free(ptr)
            self._bytes_in_use -= alloc.size
            self._freed[ptr.address] = (
                alloc.size,
                self._alloc_sites.pop(ptr.address, "<unknown>"),
                _call_site(),
            )

    def _bad_free(self, ptr: DevicePointer) -> InvalidPointerError:
        """Diagnose a free() that did not hit a live allocation base.

        Caller holds ``self._lock``.
        """
        checker = _get_memcheck()
        freed = self._freed.get(ptr.address)
        if freed is not None:
            size, alloc_site, free_site = freed
            message = (
                f"double free of {ptr!r}: {size} B allocation (allocated at "
                f"{alloc_site}) was already freed at {free_site}"
            )
            if checker is not None:
                checker.note_double_free(message)
            return InvalidPointerError(message)
        for base, alloc in self._allocations.items():
            if alloc.base < ptr.address < alloc.end:
                message = (
                    f"free of {ptr!r}: points {ptr.address - alloc.base} B "
                    f"into a live {alloc.size} B allocation at "
                    f"0x{alloc.base:x} (allocated at "
                    f"{self._alloc_sites.get(base, '<unknown>')}); free the "
                    f"base pointer instead"
                )
                if checker is not None:
                    checker.note_bad_free(message)
                return InvalidPointerError(message)
        for base, (size, alloc_site, free_site) in self._freed.items():
            if base < ptr.address < base + size:
                message = (
                    f"free of {ptr!r}: points into a {size} B allocation "
                    f"(allocated at {alloc_site}) already freed at {free_site}"
                )
                if checker is not None:
                    checker.note_double_free(message)
                return InvalidPointerError(message)
        message = f"free of {ptr!r}: not the base of a live allocation"
        if checker is not None:
            checker.note_bad_free(message)
        return InvalidPointerError(message)

    # --- state capture ------------------------------------------------------
    def snapshot(self) -> Dict[int, np.ndarray]:
        """Copy the contents of every live allocation (base -> bytes).

        The autotuner brackets candidate-measurement launches with
        :meth:`snapshot`/:meth:`restore` so probing a non-idempotent
        kernel leaves device memory untouched.  Only contents are
        captured — the allocation table itself is not rolled back, so a
        probe that mallocs/frees is outside the contract (kernels cannot
        allocate; only host code can).
        """
        with self._lock:
            return {base: alloc.data.copy()
                    for base, alloc in self._allocations.items()}

    def restore(self, snap: Dict[int, np.ndarray]) -> None:
        """Write a :meth:`snapshot` back **in place**.

        Contents are restored into the existing buffers (``data[:] =``),
        never by replacing them, so NumPy views handed out by
        :meth:`view` before the snapshot stay valid afterwards.
        Allocations that appeared after the snapshot are left alone.
        """
        with self._lock:
            for base, data in snap.items():
                alloc = self._allocations.get(base)
                if alloc is not None:
                    alloc.data[:] = data

    @property
    def bytes_in_use(self) -> int:
        with self._lock:
            return self._bytes_in_use

    @property
    def live_allocations(self) -> int:
        with self._lock:
            return len(self._allocations)

    # --- dereference -------------------------------------------------------
    def _resolve(self, ptr: DevicePointer, nbytes: int) -> Tuple[Allocation, int]:
        """Find the allocation containing [ptr, ptr+nbytes)."""
        if ptr.is_null:
            raise InvalidPointerError("null pointer dereference")
        if ptr.device_ordinal != self._device.ordinal:
            raise InvalidPointerError(
                f"pointer for device {ptr.device_ordinal} used on device "
                f"{self._device.ordinal}"
            )
        with self._lock:
            # Allocations are sparse; find the one whose range contains ptr.
            # The dict is keyed by base address; do a fast path exact hit
            # first, then a scan (allocation count is small in practice).
            alloc = self._allocations.get(ptr.address)
            if alloc is None:
                for candidate in self._allocations.values():
                    if candidate.base <= ptr.address < candidate.end:
                        alloc = candidate
                        break
            if alloc is None:
                for base, (size, alloc_site, free_site) in self._freed.items():
                    if base <= ptr.address < base + size:
                        raise InvalidPointerError(
                            f"use after free: {ptr!r} points into a {size} B "
                            f"allocation (allocated at {alloc_site}) freed at "
                            f"{free_site}"
                        )
                raise InvalidPointerError(f"{ptr!r} does not point into a live allocation")
            offset = ptr.address - alloc.base
            if offset + nbytes > alloc.size:
                raise InvalidPointerError(
                    f"access of {nbytes} B at offset {offset} overruns allocation "
                    f"of {alloc.size} B"
                )
            return alloc, offset

    def view(self, ptr: DevicePointer, shape, dtype) -> np.ndarray:
        """Return a writable NumPy view of device memory at ``ptr``.

        This is the simulator's core primitive: kernels and memcpy both go
        through views so that all reads/writes hit the single backing
        buffer (no copies — see the hpc guide's "views, not copies" rule).
        """
        dtype = np.dtype(dtype)
        shape = (int(shape),) if np.isscalar(shape) else tuple(int(s) for s in shape)
        count = int(np.prod(shape)) if shape else 1
        nbytes = count * dtype.itemsize
        alloc, offset = self._resolve(ptr, nbytes)
        flat = alloc.data[offset : offset + nbytes]
        return flat.view(dtype).reshape(shape)

    def locate_buffer(self, start: int, nbytes: int) -> Optional[Tuple[Allocation, int]]:
        """Find the live allocation whose NumPy buffer contains ``start``.

        ``start`` is a host memory address (``__array_interface__``'s
        ``data`` pointer of some view).  Returns ``(allocation, byte
        offset)`` or ``None``.  The memcheck sanitizer uses this to map a
        view a kernel is accessing back to its device allocation.
        """
        with self._lock:
            for alloc in self._allocations.values():
                base = alloc.data.__array_interface__["data"][0]
                if base <= start and start + nbytes <= base + alloc.size:
                    return alloc, start - base
        return None

    # --- transfers ----------------------------------------------------------
    def _transfer_bytes(self, direction: str, nbytes: int) -> int:
        """Poison/fault hooks for one memcpy; returns the bytes to move.

        An injected ``memcpy:truncate`` rule shortens the transfer (the
        classic "partial DMA" failure); otherwise the full ``nbytes``
        move, byte-identically to the un-instrumented path.
        """
        self._device.check_poison()
        plan = _fault_plan()
        if plan is None:
            return nbytes
        effects = plan.fire(
            "memcpy", device=self._device.ordinal, size=nbytes,
            direction=direction,
        )
        keep = effects.get("truncate_bytes")
        return nbytes if keep is None else min(int(keep), nbytes)

    def memcpy_h2d(self, dst: DevicePointer, src: np.ndarray) -> None:
        """Copy a host array into device memory at ``dst``."""
        src = np.ascontiguousarray(src)
        keep = self._transfer_bytes("h2d", src.nbytes)
        alloc, offset = self._resolve(dst, src.nbytes)
        src_bytes = src.reshape(-1).view(np.uint8)
        alloc.data[offset : offset + keep] = src_bytes[:keep]

    def memcpy_d2h(self, dst: np.ndarray, src: DevicePointer) -> None:
        """Copy device memory at ``src`` into a writable host array."""
        if not dst.flags.writeable:
            raise ValueError("destination host array is not writeable")
        if not dst.flags.c_contiguous:
            raise ValueError("destination host array must be C-contiguous")
        keep = self._transfer_bytes("d2h", dst.nbytes)
        alloc, offset = self._resolve(src, dst.nbytes)
        dst.reshape(-1).view(np.uint8)[:keep] = alloc.data[offset : offset + keep]

    def memcpy_d2d(self, dst: DevicePointer, src: DevicePointer, nbytes: int) -> None:
        """Copy ``nbytes`` between two device allocations."""
        keep = self._transfer_bytes("d2d", nbytes)
        dst_alloc, dst_off = self._resolve(dst, nbytes)
        src_alloc, src_off = self._resolve(src, nbytes)
        # np.copyto handles overlapping views incorrectly only for the same
        # buffer; use an explicit copy of the source bytes to be safe.
        data = src_alloc.data[src_off : src_off + keep].copy()
        dst_alloc.data[dst_off : dst_off + keep] = data

    def memset(self, ptr: DevicePointer, value: int, nbytes: int) -> None:
        """Fill ``nbytes`` of device memory with a byte value."""
        self._device.check_poison()
        plan = _fault_plan()
        if plan is not None:
            plan.fire("memset", device=self._device.ordinal, size=nbytes)
        alloc, offset = self._resolve(ptr, nbytes)
        alloc.data[offset : offset + nbytes] = np.uint8(value & 0xFF)


def memcpy_peer(dst: DevicePointer, src: DevicePointer, nbytes: int) -> None:
    """Copy ``nbytes`` between allocations owned by (possibly) different devices.

    The substrate behind ``cudaMemcpyPeer``/``hipMemcpyPeer``/
    ``ompx_memcpy_peer``.  Each pointer is resolved against its *own*
    device's allocator, so cross-device copies work without violating the
    per-device address spaces.  Both contexts must be healthy; fault rules
    for the ``memcpy`` site fire with ``direction=p2p`` against the
    destination device (the one issuing the DMA, as in CUDA).  Whether the
    copy is *modeled* as a direct peer-link transfer or staged through
    host memory is the perf model's concern (:mod:`repro.perf.transfer`)
    — functionally the bytes always arrive.
    """
    from .device import get_device

    dst_dev = get_device(dst.device_ordinal)
    src_dev = get_device(src.device_ordinal)
    src_dev.check_poison()
    keep = dst_dev.allocator._transfer_bytes("p2p", nbytes)
    src_alloc, src_off = src_dev.allocator._resolve(src, nbytes)
    dst_alloc, dst_off = dst_dev.allocator._resolve(dst, nbytes)
    data = src_alloc.data[src_off : src_off + keep].copy()
    dst_alloc.data[dst_off : dst_off + keep] = data


def peer_copy(dst: DevicePointer, src: DevicePointer, nbytes: int,
              *, api: str = "memcpy_peer") -> None:
    """Peer copy with tracing and modeled interconnect cost.

    The shared implementation behind ``cudaMemcpyPeer``,
    ``hipMemcpyPeer`` and ``ompx_memcpy_peer`` (``api`` names the span).
    Same-device pairs degenerate to an ordinary d2d copy.  Cross-device
    pairs record whether the transfer rode a direct peer link (``path=
    "direct"``, peer access enabled in either direction) or was staged
    through host memory, plus the :mod:`repro.perf.transfer` modeled
    microseconds for that path.
    """
    from ..trace import get_tracer

    tracer = get_tracer()
    if dst.device_ordinal == src.device_ordinal:
        from .device import get_device

        allocator = get_device(dst.device_ordinal).allocator
        if tracer is None:
            allocator.memcpy_d2d(dst, src, nbytes)
            return
        with tracer.span(api, cat="memcpy", bytes=int(nbytes),
                         direction="d2d",
                         src_device=src.device_ordinal,
                         dst_device=dst.device_ordinal):
            allocator.memcpy_d2d(dst, src, nbytes)
        return
    if tracer is None:
        memcpy_peer(dst, src, nbytes)
        return
    from .device import get_device
    from ..perf.transfer import peer_link_for, peer_transfer_seconds

    src_dev = get_device(src.device_ordinal)
    dst_dev = get_device(dst.device_ordinal)
    enabled = (
        dst_dev.has_peer_access(src_dev) or src_dev.has_peer_access(dst_dev)
    )
    link = peer_link_for(src_dev.spec, dst_dev.spec, enabled=enabled)
    modeled_s = peer_transfer_seconds(
        nbytes, src_dev.spec, dst_dev.spec, enabled=enabled
    )
    with tracer.span(api, cat="memcpy", bytes=int(nbytes), direction="p2p",
                     src_device=src_dev.ordinal, dst_device=dst_dev.ordinal,
                     path="direct" if enabled else "staged",
                     link=link.name if link is not None else "host-staged",
                     modeled_us=modeled_s * 1e6):
        memcpy_peer(dst, src, nbytes)
