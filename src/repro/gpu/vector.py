"""Vectorized (lane-batched) kernel execution contexts.

The :class:`~repro.gpu.engine.WaveVectorEngine` evaluates many simulated
GPU threads at once: instead of one Python call per thread, a kernel is
called once per *lane batch* with a :class:`VectorThreadCtx` whose index
properties are NumPy arrays (one entry per lane).  Straight-line kernels
written against the portable intrinsics (``select``/``load``/``store``/
``loop_max``) then execute as whole-array operations, which is what makes
paper-scale problem sizes tractable on the simulated substrate.

Two lane-batching modes exist:

* ``"vector"`` — for ``sync_free`` kernels: lanes may span many blocks
  (the batch is a contiguous range of global flat thread ids).  Shared
  memory and barriers are unavailable, exactly like the MapEngine.
* ``"wave"`` — for barrier-only cooperative kernels: one batch is one
  block, executed in lockstep.  Because every NumPy statement completes
  for all lanes before the next begins, ``sync_threads`` is already
  satisfied structurally and only needs to count.

Behavioural counters are kept *exact*: every counted operation increments
its counter by the number of lanes, so a launch reports the same
``barriers``/``global_derefs``/``shared_declarations`` totals the scalar
engines would.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import SyncError
from ..faults.memcheck import get_memcheck as _get_memcheck
from .dim import Dim3, linearize
from .memory import DevicePointer
from .shared import SharedMemory

__all__ = ["VecDim3", "VectorThreadCtx"]


class VecDim3:
    """An ``(x, y, z)`` index triple whose components are per-lane arrays.

    Drop-in stand-in for :class:`~repro.gpu.dim.Dim3` wherever kernels read
    ``.x``/``.y``/``.z`` or index with ``[0..2]`` — but each component is a
    NumPy array with one entry per active lane.
    """

    __slots__ = ("x", "y", "z")

    def __init__(self, x: np.ndarray, y: np.ndarray, z: np.ndarray) -> None:
        self.x = x
        self.y = y
        self.z = z

    def as_tuple(self):
        """The ``(x, y, z)`` component arrays as a plain tuple."""
        return (self.x, self.y, self.z)

    def __getitem__(self, axis: int) -> np.ndarray:
        return self.as_tuple()[axis]

    def __iter__(self):
        return iter(self.as_tuple())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VecDim3(lanes={self.x.shape[0]})"


def _split_flat(flat: np.ndarray, extent: Dim3) -> VecDim3:
    """Vector inverse of :func:`repro.gpu.dim.linearize` (x fastest)."""
    x = flat % extent.x
    rest = flat // extent.x
    return VecDim3(x, rest % extent.y, rest // extent.y)


class VectorThreadCtx:
    """A ThreadCtx-compatible context that stands for a whole batch of lanes.

    Index properties return arrays; memory and counter semantics follow
    :class:`~repro.gpu.context.ThreadCtx` exactly, scaled by lane count.
    """

    __slots__ = (
        "_device", "_mode", "_grid", "_bdim", "block_idx", "thread_idx",
        "_flat", "_gflat", "_lanes", "_shared",
        "n_barriers", "n_warp_collectives", "n_global_derefs", "n_shared_decls",
    )

    def __init__(
        self,
        device,
        grid_dim: Dim3,
        block_dim: Dim3,
        *,
        mode: str,
        block_idx: Optional[Dim3] = None,
        global_flat: Optional[np.ndarray] = None,
        shared_bytes: int = 0,
    ) -> None:
        self._device = device
        self._mode = mode
        self._grid = grid_dim
        self._bdim = block_dim
        if mode == "wave":
            if block_idx is None:
                raise ValueError("wave mode requires a block index")
            self.block_idx = block_idx
            self._flat = np.arange(block_dim.volume, dtype=np.int64)
            base = linearize(block_idx, grid_dim) * block_dim.volume
            self._gflat = base + self._flat
            self._shared: Optional[SharedMemory] = SharedMemory(
                device.spec.shared_mem_per_block, shared_bytes
            )
        elif mode == "vector":
            if global_flat is None:
                raise ValueError("vector mode requires a global flat id range")
            self._gflat = global_flat
            self._flat = global_flat % block_dim.volume
            self.block_idx = _split_flat(global_flat // block_dim.volume, grid_dim)
            self._shared = None
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown vector mode {mode!r}")
        self.thread_idx = _split_flat(self._flat, block_dim)
        self._lanes = int(self._flat.shape[0])
        # Behavioural counters, harvested into KernelStats by the engines.
        # Each counted call adds one per lane so launch totals match the
        # per-thread sums the scalar engines report.
        self.n_barriers = 0
        self.n_warp_collectives = 0
        self.n_global_derefs = 0
        self.n_shared_decls = 0

    # --- indexing ------------------------------------------------------------
    @property
    def mode(self) -> str:
        """Lane-batching mode: ``"vector"`` (fused blocks) or ``"wave"``."""
        return self._mode

    @property
    def lanes(self) -> int:
        """Number of simulated threads evaluated by this batch."""
        return self._lanes

    @property
    def block_dim(self) -> Dim3:
        """Team extent (scalar — identical for every lane)."""
        return self._bdim

    @property
    def grid_dim(self) -> Dim3:
        """Grid extent (scalar — identical for every lane)."""
        return self._grid

    @property
    def flat_thread_id(self) -> np.ndarray:
        """Per-lane flat thread id within the block (x fastest)."""
        return self._flat

    @property
    def flat_block_id(self):
        """Per-lane flat block id (scalar in wave mode)."""
        if self._mode == "wave":
            return linearize(self.block_idx, self._grid)
        return self._gflat // self._bdim.volume

    @property
    def global_id_x(self) -> np.ndarray:
        """``blockIdx.x * blockDim.x + threadIdx.x`` per lane."""
        return self.block_idx.x * self._bdim.x + self.thread_idx.x

    @property
    def global_id_y(self) -> np.ndarray:
        """Per-lane global y index."""
        return self.block_idx.y * self._bdim.y + self.thread_idx.y

    @property
    def global_id_z(self) -> np.ndarray:
        """Per-lane global z index."""
        return self.block_idx.z * self._bdim.z + self.thread_idx.z

    @property
    def global_flat_id(self) -> np.ndarray:
        """Per-lane flat id across the whole launch (block-major, x fastest)."""
        return self._gflat

    @property
    def lane_id(self) -> np.ndarray:
        """Per-lane lane index within its warp."""
        return self._flat % self.warp_size

    @property
    def warp_id(self) -> np.ndarray:
        """Per-lane warp index within the block."""
        return self._flat // self.warp_size

    @property
    def warp_size(self) -> int:
        """Lanes per warp/wavefront on this device (32 or 64)."""
        return self._device.spec.warp_size

    @property
    def num_threads(self) -> int:
        """Threads per block (``blockDim`` volume)."""
        return self._bdim.volume

    @property
    def num_blocks(self) -> int:
        """Blocks in the launch (``gridDim`` volume)."""
        return self._grid.volume

    @property
    def device(self):
        """The device this batch executes on."""
        return self._device

    # --- memory ----------------------------------------------------------------
    def deref(self, ptr: DevicePointer, shape, dtype) -> np.ndarray:
        """View global memory at ``ptr`` (counted once per lane)."""
        self.n_global_derefs += self._lanes
        return self._device.allocator.view(ptr, shape, dtype)

    def shared_array(self, name: str, shape, dtype) -> np.ndarray:
        """Declare/get a ``__shared__`` array for this block (wave mode only)."""
        if self._shared is None:
            raise SyncError(
                "shared memory requested from a kernel launched on the "
                "sync-free vector engine; launch it cooperatively "
                "(sync_free=False) instead"
            )
        self.n_shared_decls += self._lanes
        return self._shared.array(name, shape, dtype)

    def dynamic_shared(self, dtype) -> np.ndarray:
        """The dynamic (``extern __shared__``) region (wave mode only)."""
        if self._shared is None:
            raise SyncError(
                "dynamic shared memory requested from a kernel launched on "
                "the sync-free vector engine; launch it cooperatively "
                "(sync_free=False) instead"
            )
        return self._shared.dynamic(dtype)

    def constant(self, name: str) -> np.ndarray:
        """Read a ``__constant__`` symbol (read-only device view)."""
        return self._device.read_constant(name)

    # --- synchronization --------------------------------------------------------
    def sync_threads(self) -> None:
        """Block barrier: a lockstep no-op in wave mode, an error in vector mode.

        Wave batches evaluate each statement for every lane before the next
        statement runs, so the barrier is structurally satisfied; only the
        behavioural counter needs to advance (once per lane).
        """
        if self._mode != "wave":
            raise SyncError(
                "sync_threads called from a kernel launched on the sync-free "
                "vector engine; launch it cooperatively (sync_free=False) instead"
            )
        self.n_barriers += self._lanes

    def _no_collectives(self, what: str) -> None:
        raise SyncError(
            f"{what} cannot be vectorized; warp collectives need the "
            f"cooperative BlockThreadEngine (declare vectorize=False)"
        )

    def sync_warp(self, mask=None) -> None:
        """Warp barrier — not available under lane-batched execution."""
        self._no_collectives("sync_warp")

    def shfl_sync(self, value, src_lane, mask=None):
        """``__shfl_sync`` — not available under lane-batched execution."""
        self._no_collectives("shfl_sync")

    def shfl_up_sync(self, value, delta, mask=None):
        """``__shfl_up_sync`` — not available under lane-batched execution."""
        self._no_collectives("shfl_up_sync")

    def shfl_down_sync(self, value, delta, mask=None):
        """``__shfl_down_sync`` — not available under lane-batched execution."""
        self._no_collectives("shfl_down_sync")

    def shfl_xor_sync(self, value, lane_mask, mask=None):
        """``__shfl_xor_sync`` — not available under lane-batched execution."""
        self._no_collectives("shfl_xor_sync")

    def ballot_sync(self, predicate, mask=None):
        """``__ballot_sync`` — not available under lane-batched execution."""
        self._no_collectives("ballot_sync")

    def any_sync(self, predicate, mask=None):
        """``__any_sync`` — not available under lane-batched execution."""
        self._no_collectives("any_sync")

    def all_sync(self, predicate, mask=None):
        """``__all_sync`` — not available under lane-batched execution."""
        self._no_collectives("all_sync")

    def warp_reduce(self, value, op, mask=None):
        """Warp reduction — not available under lane-batched execution."""
        self._no_collectives("warp_reduce")

    def match_any_sync(self, value, mask=None):
        """``__match_any_sync`` — not available under lane-batched execution."""
        self._no_collectives("match_any_sync")

    def match_all_sync(self, value, mask=None):
        """``__match_all_sync`` — not available under lane-batched execution."""
        self._no_collectives("match_all_sync")

    # --- atomics -------------------------------------------------------------------
    @property
    def atomic(self):
        """Atomics are inherently scalar — refuse under lane batching."""
        raise SyncError(
            "atomic operations cannot be vectorized; they need the "
            "cooperative BlockThreadEngine (declare vectorize=False)"
        )

    # --- portable vector intrinsics ---------------------------------------------
    def select(self, cond, a, b):
        """Branch-free conditional: per-lane ``a if cond else b``."""
        return np.where(cond, a, b)

    def load(self, view, index, fill=0):
        """Bounds-guarded gather: ``view[index]`` where in range, else ``fill``."""
        checker = _get_memcheck()
        if checker is not None:
            checker.check_load(view, index)
        idx = np.asarray(index)
        n = view.shape[0]
        ok = (idx >= 0) & (idx < n)
        if idx.ndim == 0:
            i = int(idx)
            return view[i] if bool(ok) else view.dtype.type(fill)
        out = view[np.where(ok, idx, 0)]
        okb = ok.reshape(ok.shape + (1,) * (out.ndim - ok.ndim)) if out.ndim > ok.ndim else ok
        return np.where(okb, out, view.dtype.type(fill))

    def store(self, view, index, value, mask=True):
        """Bounds-guarded masked scatter: ``view[index] = value`` where allowed.

        Under :func:`repro.faults.memcheck`, a masked-in lane whose index
        is out of range raises :class:`MemcheckError` instead of being
        silently dropped.
        """
        checker = _get_memcheck()
        if checker is not None:
            checker.check_store(view, index, mask)
        idx = np.asarray(index)
        n = view.shape[0]
        ok = (idx >= 0) & (idx < n) & np.asarray(mask, dtype=bool)
        if idx.ndim == 0 and np.ndim(ok) == 0:
            if bool(ok):
                view[int(idx)] = value
            return
        idx, ok = np.broadcast_arrays(idx, ok)
        vals = np.broadcast_to(np.asarray(value, dtype=view.dtype), idx.shape)
        view[idx[ok]] = vals[ok]

    def loop_max(self, count):
        """Upper trip-count bound for a lane-varying loop (max over lanes)."""
        if np.ndim(count) == 0:
            return int(count)
        return int(np.max(count)) if np.size(count) else 0
