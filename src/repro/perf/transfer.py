"""Host-device transfer timing (the memcpys of the paper's Figure 1).

The paper's benchmarks report device-side execution time, so Figure 8
excludes the ``cudaMemcpy`` traffic around the kernels.  The model can
price it anyway: a transfer costs a fixed submission latency plus bytes
over the host link.  :func:`end_to_end_seconds` composes an application's
measured section with its data movement — the number a user who *doesn't*
exclude transfers would see.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PerfModelError

__all__ = [
    "HostLink",
    "PeerLink",
    "PCIE4_X16",
    "INFINITY_FABRIC_HOST",
    "NVLINK3",
    "INFINITY_FABRIC_PEER",
    "PCIE_P2P",
    "transfer_seconds",
    "host_link_for",
    "peer_link_for",
    "peer_transfer_seconds",
    "TransferPlan",
]


@dataclass(frozen=True)
class HostLink:
    """A host-device interconnect."""

    name: str
    bandwidth_gbs: float       # effective, not headline
    latency_us: float = 10.0   # per-transfer submission + completion cost

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0:
            raise PerfModelError("link bandwidth must be positive")
        if self.latency_us < 0:
            raise PerfModelError("link latency must be >= 0")


#: The A100 system's link (PCIe 4.0 x16, effective ~25 GB/s).
PCIE4_X16 = HostLink(name="PCIe 4.0 x16", bandwidth_gbs=25.0)
#: The MI250 attaches over Infinity Fabric to the host (effective ~36 GB/s).
INFINITY_FABRIC_HOST = HostLink(name="Infinity Fabric (host)", bandwidth_gbs=36.0)


@dataclass(frozen=True)
class PeerLink:
    """A direct device-to-device interconnect (NVLink / xGMI).

    Structurally a :class:`HostLink` twin so :func:`transfer_seconds`
    prices both; kept a separate type because a peer link is only usable
    once peer access is enabled, which the cost model must respect.
    """

    name: str
    bandwidth_gbs: float       # effective, not headline
    latency_us: float = 5.0    # peer DMA submission is cheaper than host

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0:
            raise PerfModelError("link bandwidth must be positive")
        if self.latency_us < 0:
            raise PerfModelError("link latency must be >= 0")


#: NVLink 3.0 between two A100s (12 links, effective ~240 GB/s).
NVLINK3 = PeerLink(name="NVLink 3.0", bandwidth_gbs=240.0, latency_us=5.0)
#: Infinity Fabric / xGMI between MI250 GCDs (effective ~150 GB/s).
INFINITY_FABRIC_PEER = PeerLink(name="Infinity Fabric (peer)", bandwidth_gbs=150.0, latency_us=6.0)
#: Cross-vendor (or NVLink-less) P2P falls back to PCIe DMA.
PCIE_P2P = PeerLink(name="PCIe 4.0 P2P", bandwidth_gbs=22.0, latency_us=12.0)


def host_link_for(spec) -> HostLink:
    """The host link a device spec attaches over (by vendor)."""
    return PCIE4_X16 if getattr(spec, "vendor", None) == "nvidia" else INFINITY_FABRIC_HOST


def peer_link_for(src_spec, dst_spec, *, enabled: bool = True):
    """The direct interconnect between two device specs, or ``None``.

    With peer access disabled there is no direct path (``None``): the
    copy is staged through host memory, priced by
    :func:`peer_transfer_seconds`.  Same-vendor pairs ride the vendor
    fabric (NVLink / Infinity Fabric); mixed pairs fall back to PCIe P2P.
    """
    if not enabled:
        return None
    src_vendor = getattr(src_spec, "vendor", None)
    dst_vendor = getattr(dst_spec, "vendor", None)
    if src_vendor == dst_vendor == "nvidia":
        return NVLINK3
    if src_vendor == dst_vendor == "amd":
        return INFINITY_FABRIC_PEER
    return PCIE_P2P


def peer_transfer_seconds(
    nbytes: float,
    src_spec,
    dst_spec,
    *,
    enabled: bool = True,
    transfers: int = 1,
) -> float:
    """Seconds to move ``nbytes`` from ``src_spec``'s to ``dst_spec``'s memory.

    Peer access enabled: one DMA over the direct link.  Disabled: the
    copy is staged through host memory — a device-to-host hop on the
    source's host link plus a host-to-device hop on the destination's,
    which is why enabling peer access matters even though the functional
    simulator always delivers the bytes.
    """
    link = peer_link_for(src_spec, dst_spec, enabled=enabled)
    if link is not None:
        return transfer_seconds(nbytes, link, transfers=transfers)
    return (
        transfer_seconds(nbytes, host_link_for(src_spec), transfers=transfers)
        + transfer_seconds(nbytes, host_link_for(dst_spec), transfers=transfers)
    )


def transfer_seconds(nbytes: float, link: HostLink, *, transfers: int = 1) -> float:
    """Seconds to move ``nbytes`` over ``link`` in ``transfers`` memcpys."""
    if nbytes < 0:
        raise PerfModelError("transfer size must be >= 0")
    if transfers < 0:
        raise PerfModelError("transfer count must be >= 0")
    if nbytes == 0 and transfers == 0:
        return 0.0
    return transfers * link.latency_us * 1e-6 + nbytes / (link.bandwidth_gbs * 1e9)


@dataclass(frozen=True)
class TransferPlan:
    """An application's host<->device data movement."""

    h2d_bytes: float
    d2h_bytes: float
    h2d_transfers: int = 1
    d2h_transfers: int = 1

    def seconds(self, link: HostLink) -> float:
        """Total time for the plan's uploads plus downloads."""
        return (
            transfer_seconds(self.h2d_bytes, link, transfers=self.h2d_transfers)
            + transfer_seconds(self.d2h_bytes, link, transfers=self.d2h_transfers)
        )
