"""Host-device transfer timing (the memcpys of the paper's Figure 1).

The paper's benchmarks report device-side execution time, so Figure 8
excludes the ``cudaMemcpy`` traffic around the kernels.  The model can
price it anyway: a transfer costs a fixed submission latency plus bytes
over the host link.  :func:`end_to_end_seconds` composes an application's
measured section with its data movement — the number a user who *doesn't*
exclude transfers would see.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PerfModelError

__all__ = ["HostLink", "PCIE4_X16", "INFINITY_FABRIC_HOST", "transfer_seconds", "TransferPlan"]


@dataclass(frozen=True)
class HostLink:
    """A host-device interconnect."""

    name: str
    bandwidth_gbs: float       # effective, not headline
    latency_us: float = 10.0   # per-transfer submission + completion cost

    def __post_init__(self) -> None:
        if self.bandwidth_gbs <= 0:
            raise PerfModelError("link bandwidth must be positive")
        if self.latency_us < 0:
            raise PerfModelError("link latency must be >= 0")


#: The A100 system's link (PCIe 4.0 x16, effective ~25 GB/s).
PCIE4_X16 = HostLink(name="PCIe 4.0 x16", bandwidth_gbs=25.0)
#: The MI250 attaches over Infinity Fabric to the host (effective ~36 GB/s).
INFINITY_FABRIC_HOST = HostLink(name="Infinity Fabric (host)", bandwidth_gbs=36.0)


def transfer_seconds(nbytes: float, link: HostLink, *, transfers: int = 1) -> float:
    """Seconds to move ``nbytes`` over ``link`` in ``transfers`` memcpys."""
    if nbytes < 0:
        raise PerfModelError("transfer size must be >= 0")
    if transfers < 0:
        raise PerfModelError("transfer count must be >= 0")
    if nbytes == 0 and transfers == 0:
        return 0.0
    return transfers * link.latency_us * 1e-6 + nbytes / (link.bandwidth_gbs * 1e9)


@dataclass(frozen=True)
class TransferPlan:
    """An application's host<->device data movement."""

    h2d_bytes: float
    d2h_bytes: float
    h2d_transfers: int = 1
    d2h_transfers: int = 1

    def seconds(self, link: HostLink) -> float:
        """Total time for the plan's uploads plus downloads."""
        return (
            transfer_seconds(self.h2d_bytes, link, transfers=self.h2d_transfers)
            + transfer_seconds(self.d2h_bytes, link, transfers=self.d2h_transfers)
        )
