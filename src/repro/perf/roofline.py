"""Roofline timing: a kernel is bounded by memory or compute, whichever
is slower at its achieved occupancy.

:class:`Footprint` is the workload side of the model: how many bytes and
flops one kernel launch moves/executes.  Each application derives its
footprint analytically from its command-line parameters (the same
arithmetic one does on paper when sanity-checking measured GPU numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import PerfModelError
from ..gpu.device import DeviceSpec

__all__ = ["Footprint", "saturation", "roofline_seconds"]

#: Occupancy at which throughput saturates.  Memory latency on modern GPUs
#: is hidden with roughly a third of maximum residency; beyond that, more
#: warps add nothing (the standard "enough warps" rule of thumb).
SATURATION_OCCUPANCY = 0.35


@dataclass(frozen=True)
class Footprint:
    """Work moved/executed by ONE kernel launch."""

    flops_fp64: float = 0.0
    flops_fp32: float = 0.0
    int_ops: float = 0.0
    #: Special-function operations (pow/exp/sqrt/sin) — priced against the
    #: device's SFU throughput, which differs sharply between vendors.
    special_ops: float = 0.0
    global_read_bytes: float = 0.0
    global_write_bytes: float = 0.0
    shared_bytes: float = 0.0
    #: Latency-bound extra: dependent global round trips on the critical
    #: path of a typical thread (e.g. pointer chasing in table lookups).
    dependent_accesses: float = 0.0
    #: Fraction of warp lanes doing useful work (control divergence).
    #: Monte Carlo material lookups sit well below 1.0; wider wavefronts
    #: diverge harder (the roofline derates AMD's 64-wide waves further).
    warp_efficiency: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.warp_efficiency <= 1:
            raise PerfModelError(
                f"Footprint.warp_efficiency must be in (0, 1], got {self.warp_efficiency}"
            )
        for name in (
            "flops_fp64", "flops_fp32", "int_ops", "special_ops",
            "global_read_bytes", "global_write_bytes", "shared_bytes",
            "dependent_accesses",
        ):
            if getattr(self, name) < 0:
                raise PerfModelError(f"Footprint.{name} must be >= 0")

    @property
    def global_bytes(self) -> float:
        return self.global_read_bytes + self.global_write_bytes

    def scaled(self, factor: float) -> "Footprint":
        """Uniformly scale the workload (e.g. problem-size sweeps)."""
        return replace(
            self,
            flops_fp64=self.flops_fp64 * factor,
            flops_fp32=self.flops_fp32 * factor,
            int_ops=self.int_ops * factor,
            special_ops=self.special_ops * factor,
            global_read_bytes=self.global_read_bytes * factor,
            global_write_bytes=self.global_write_bytes * factor,
            shared_bytes=self.shared_bytes * factor,
            dependent_accesses=self.dependent_accesses * factor,
        )

    def with_extra_global_bytes(self, extra: float) -> "Footprint":
        """Add traffic (e.g. globalization spill) split evenly read/write."""
        return replace(
            self,
            global_read_bytes=self.global_read_bytes + extra / 2,
            global_write_bytes=self.global_write_bytes + extra / 2,
        )


def saturation(occupancy: float, knee: float = SATURATION_OCCUPANCY) -> float:
    """Fraction of peak throughput achieved at a given occupancy."""
    if not 0 < occupancy <= 1:
        raise PerfModelError(f"occupancy must be in (0, 1], got {occupancy}")
    return min(1.0, occupancy / knee)


#: DRAM latency per dependent access (seconds); ~500 cycles at ~1.4 GHz.
_DRAM_LATENCY_S = 350e-9


def roofline_seconds(
    footprint: Footprint,
    spec: DeviceSpec,
    *,
    occupancy: float,
    efficiency: float = 1.0,
    throughput_scale: float = 1.0,
) -> float:
    """Seconds for one launch of this footprint on this device.

    ``efficiency`` is the toolchain's instruction-stream quality;
    ``throughput_scale`` carries structural parallelism losses (state
    machine serialization, thread-limit bugs) as a multiplier in (0, 1].
    """
    if efficiency <= 0:
        raise PerfModelError(f"efficiency must be positive, got {efficiency}")
    if not 0 < throughput_scale <= 1:
        raise PerfModelError(f"throughput_scale must be in (0, 1], got {throughput_scale}")
    # Divergence derating: lanes off the active path do no useful work, and
    # a 64-wide wavefront keeps more lanes idle than a 32-wide warp for the
    # same branchy code.
    divergence = footprint.warp_efficiency * (32.0 / spec.warp_size) ** 0.25 \
        if footprint.warp_efficiency < 1.0 else 1.0
    sat = saturation(occupancy) * efficiency * throughput_scale * divergence

    t_mem = footprint.global_bytes / (spec.peak_bandwidth_gbs * 1e9 * sat)
    t_shared = footprint.shared_bytes / (spec.shared_bandwidth_gbs * 1e9 * sat)
    t_fp64 = footprint.flops_fp64 / (spec.peak_fp64_gflops * 1e9 * sat)
    t_fp32 = footprint.flops_fp32 / (spec.peak_fp32_gflops * 1e9 * sat)
    t_int = footprint.int_ops / (spec.peak_int_gops * 1e9 * sat)
    t_special = footprint.special_ops / (spec.peak_special_gops * 1e9 * sat)
    t_compute = t_fp64 + t_fp32 + t_int + t_special

    # Dependent accesses are latency-bound: warps in flight hide part of
    # the chain, but the remainder serializes on DRAM latency.
    t_latency = footprint.dependent_accesses * _DRAM_LATENCY_S / max(sat, 1e-9) / (
        spec.num_sms * spec.max_threads_per_sm / spec.warp_size
    )

    return max(t_mem, t_compute, t_shared) + t_latency
