"""End-to-end kernel timing: compile artifact + footprint -> seconds.

Combines occupancy (from the compiled kernel's resources), the roofline
(from the workload footprint), and the structural overheads (from the
OpenMP codegen facts).  The Figure 8 harness calls :func:`estimate_time`
once per (application, version, system) cell.

Also defines the two evaluation systems of the paper's Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compiler.compile import CompiledKernel
from ..errors import PerfModelError
from ..gpu.device import A100_SPEC, MI250_SPEC, DeviceSpec
from ..trace import get_tracer
from .occupancy import OccupancyInfo, compute_occupancy
from .overheads import (
    globalization_extra_bytes,
    launch_overhead_seconds,
    throughput_scale,
)
from .roofline import Footprint, roofline_seconds
from .transfer import INFINITY_FABRIC_HOST, PCIE4_X16, HostLink

__all__ = [
    "SystemConfig",
    "NVIDIA_SYSTEM",
    "AMD_SYSTEM",
    "TimeBreakdown",
    "estimate_time",
    "estimate_time_for_config",
]


@dataclass(frozen=True)
class SystemConfig:
    """One evaluation system from the paper's Figure 7."""

    name: str
    gpu: DeviceSpec
    cpu: str
    memory_gb: int
    sdk: str
    native_language: str       # 'cuda' on NVIDIA, 'hip' on AMD
    vendor_compiler: str       # 'nvcc' / 'hipcc'
    host_link: HostLink = PCIE4_X16


NVIDIA_SYSTEM = SystemConfig(
    name="NVIDIA",
    gpu=A100_SPEC,
    cpu="AMD EPYC 7532",
    memory_gb=512,
    sdk="CUDA 11.8",
    native_language="cuda",
    vendor_compiler="nvcc",
    host_link=PCIE4_X16,
)

AMD_SYSTEM = SystemConfig(
    name="AMD",
    gpu=MI250_SPEC,
    cpu="AMD EPYC 7532",
    memory_gb=256,
    sdk="ROCm 5.5",
    native_language="hip",
    vendor_compiler="hipcc",
    host_link=INFINITY_FABRIC_HOST,
)


@dataclass(frozen=True)
class TimeBreakdown:
    """Where the estimated time went (all seconds, for the whole run)."""

    total_s: float
    kernel_s: float
    overhead_s: float
    launches: int
    occupancy: OccupancyInfo
    throughput_scale: float

    @property
    def per_launch_s(self) -> float:
        return self.total_s / max(self.launches, 1)


def estimate_time(
    compiled: CompiledKernel,
    footprint: Footprint,
    *,
    block_threads: int,
    teams: int,
    launches: int = 1,
) -> TimeBreakdown:
    """Estimate the measured-section time of a benchmark.

    ``footprint`` describes ONE launch; ``launches`` is how many the
    benchmark's timed section performs (e.g. Stencil-1D iterates 1000
    times).  ``block_threads``/``teams`` are the *requested* geometry; the
    codegen facts may shrink what actually runs (the Adam bug).
    """
    if launches < 1:
        raise PerfModelError(f"launches must be >= 1, got {launches}")
    if teams < 1:
        raise PerfModelError(f"teams must be >= 1, got {teams}")

    codegen = compiled.codegen
    effective_block = block_threads
    if codegen.effective_thread_limit is not None:
        effective_block = min(block_threads, codegen.effective_thread_limit)

    occ = compute_occupancy(
        compiled.device,
        effective_block,
        compiled.registers,
        compiled.effective_shared_bytes,
    )
    scale = throughput_scale(
        codegen, requested_block_threads=block_threads, spec=compiled.device
    )
    fp = footprint.with_extra_global_bytes(globalization_extra_bytes(codegen, teams))
    kernel_s = roofline_seconds(
        fp,
        compiled.device,
        occupancy=occ.occupancy,
        efficiency=compiled.efficiency,
        throughput_scale=scale,
    )
    overhead_s = launch_overhead_seconds(codegen, compiled.device)
    total = launches * (kernel_s + overhead_s)
    tracer = get_tracer()
    if tracer is not None:
        # Record the prediction under the kernel's name so exporters can
        # join it onto the matching observed kernel spans
        # (predicted-vs-observed, per Figure 8 cell).
        tracer.prediction(
            compiled.name,
            device=compiled.device.name,
            language=compiled.language,
            total_s=total,
            kernel_s=launches * kernel_s,
            overhead_s=launches * overhead_s,
            launches=launches,
            per_launch_s=kernel_s + overhead_s,
        )
    return TimeBreakdown(
        total_s=total,
        kernel_s=launches * kernel_s,
        overhead_s=launches * overhead_s,
        launches=launches,
        occupancy=occ,
        throughput_scale=scale,
    )


def estimate_time_for_config(
    compiled: CompiledKernel,
    footprint: Footprint,
    config,
    *,
    launches: int = 1,
) -> TimeBreakdown:
    """:func:`estimate_time` fed directly from a :class:`LaunchConfig`.

    The geometry the perf model needs (threads per block, team count) is
    exactly what a :class:`~repro.gpu.launch.LaunchConfig` carries; this
    wrapper keeps benchmark harnesses from unpacking it by hand.
    """
    return estimate_time(
        compiled,
        footprint,
        block_threads=config.block.volume,
        teams=config.grid.volume,
        launches=launches,
    )
