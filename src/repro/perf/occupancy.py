"""GPU occupancy: how many blocks fit on an SM/CU at once.

Occupancy is the hinge between the compiler model and timing: the paper's
SU3 analysis (§4.2.3) is exactly "two more registers -> fewer resident
warps -> 9% slower on the A100".  The calculation below is the standard
one hardware vendors document: resident blocks per SM are limited by the
block slots, the thread slots, the register file and the shared-memory
budget; occupancy is resident warps over the maximum.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PerfModelError
from ..gpu.device import DeviceSpec

__all__ = ["OccupancyInfo", "compute_occupancy"]


@dataclass(frozen=True)
class OccupancyInfo:
    """Resident-work numbers for one kernel configuration on one device."""

    blocks_per_sm: int
    active_threads_per_sm: int
    occupancy: float  # resident warps / max warps, in (0, 1]
    limiter: str      # which resource capped residency

    @property
    def is_register_limited(self) -> bool:
        return self.limiter == "registers"


def compute_occupancy(
    spec: DeviceSpec,
    block_threads: int,
    registers_per_thread: int,
    shared_bytes_per_block: int = 0,
) -> OccupancyInfo:
    """Resident blocks/warps for a (block size, registers, shared) triple."""
    if block_threads <= 0:
        raise PerfModelError(f"block_threads must be positive, got {block_threads}")
    if block_threads > spec.max_threads_per_block:
        raise PerfModelError(
            f"block of {block_threads} threads exceeds the device limit "
            f"{spec.max_threads_per_block}"
        )
    if registers_per_thread <= 0:
        raise PerfModelError("registers_per_thread must be positive")
    if shared_bytes_per_block < 0:
        raise PerfModelError("shared_bytes_per_block must be >= 0")

    limits = {
        "blocks": spec.max_blocks_per_sm,
        "threads": spec.max_threads_per_sm // block_threads,
        "registers": spec.registers_per_sm // (registers_per_thread * block_threads),
    }
    if shared_bytes_per_block > 0:
        limits["shared"] = spec.shared_mem_per_sm // shared_bytes_per_block

    limiter, blocks = min(limits.items(), key=lambda item: item[1])
    if blocks == 0:
        raise PerfModelError(
            f"kernel cannot be resident: one block needs "
            f"{registers_per_thread * block_threads} registers / "
            f"{shared_bytes_per_block} B shared, device offers "
            f"{spec.registers_per_sm} / {spec.shared_mem_per_sm}"
        )
    active_threads = blocks * block_threads
    max_warps = spec.max_threads_per_sm // spec.warp_size
    resident_warps = active_threads // spec.warp_size
    resident_warps = max(resident_warps, 1)
    return OccupancyInfo(
        blocks_per_sm=blocks,
        active_threads_per_sm=active_threads,
        occupancy=min(1.0, resident_warps / max_warps),
        limiter=limiter,
    )
