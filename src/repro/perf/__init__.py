"""Analytic GPU performance model.

Absolute GPU timings cannot be reproduced without the paper's hardware,
so the harness prices each (application, version, system) cell with a
standard occupancy + roofline + overhead model whose inputs come from the
compiler model (:mod:`repro.compiler`) and from each application's
analytically derived workload footprint.  The paper's qualitative results
— who wins, by roughly what factor, and why — fall out of the modelled
mechanisms; see EXPERIMENTS.md for the paper-vs-model comparison.
"""

from .occupancy import OccupancyInfo, compute_occupancy
from .overheads import (
    globalization_extra_bytes,
    launch_overhead_seconds,
    throughput_scale,
)
from .roofline import SATURATION_OCCUPANCY, Footprint, roofline_seconds, saturation
from .timing import (
    AMD_SYSTEM,
    NVIDIA_SYSTEM,
    SystemConfig,
    TimeBreakdown,
    estimate_time,
    estimate_time_for_config,
)
from .transfer import (
    INFINITY_FABRIC_HOST,
    INFINITY_FABRIC_PEER,
    NVLINK3,
    PCIE4_X16,
    PCIE_P2P,
    HostLink,
    PeerLink,
    TransferPlan,
    host_link_for,
    peer_link_for,
    peer_transfer_seconds,
    transfer_seconds,
)

__all__ = [
    "OccupancyInfo",
    "compute_occupancy",
    "globalization_extra_bytes",
    "launch_overhead_seconds",
    "throughput_scale",
    "SATURATION_OCCUPANCY",
    "Footprint",
    "roofline_seconds",
    "saturation",
    "AMD_SYSTEM",
    "NVIDIA_SYSTEM",
    "SystemConfig",
    "TimeBreakdown",
    "estimate_time",
    "estimate_time_for_config",
    "INFINITY_FABRIC_HOST",
    "INFINITY_FABRIC_PEER",
    "NVLINK3",
    "PCIE4_X16",
    "PCIE_P2P",
    "HostLink",
    "PeerLink",
    "TransferPlan",
    "host_link_for",
    "peer_link_for",
    "peer_transfer_seconds",
    "transfer_seconds",
]
