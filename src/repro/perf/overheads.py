"""Per-launch overheads and structural throughput losses.

These terms carry the ``omp``-vs-``ompx`` differences that the paper's
§3.1 motivates and §4.2 measures:

* every kernel pays the driver's **launch latency**;
* classic OpenMP kernels additionally pay **device runtime
  initialization** at kernel start — the cost ``ompx_bare`` deletes;
* a **generic-mode state machine that could not be rewritten** parks the
  worker warps: only the main warp makes progress through team code and
  region dispatch, so throughput drops by roughly the warps-per-block
  factor (Stencil's ~100x collapse, §4.2.6);
* the **thread-limit bug** launches the grid computed for a full block
  with one warp per block, losing parallelism by the requested/effective
  ratio (Adam's 8x, §4.2.5);
* **globalized locals** that stayed on the heap turn register traffic
  into global-memory traffic.
"""

from __future__ import annotations

from ..errors import PerfModelError
from ..gpu.device import DeviceSpec
from ..openmp.codegen import CodegenInfo

__all__ = [
    "launch_overhead_seconds",
    "throughput_scale",
    "globalization_extra_bytes",
]

#: Runtime-initialization costs at kernel start (seconds), from the
#: near-zero-overhead analysis in Doerfert et al. (IPDPS'22): SPMD kernels
#: keep a slim prologue, generic kernels set up the full state machine.
_RUNTIME_INIT_SPMD_S = 1.5e-6
_RUNTIME_INIT_GENERIC_S = 4.0e-6

#: How often a globalized local is touched over a team's lifetime; heap
#: locals are reloaded/stored around every parallel region boundary.
_GLOBALIZED_REUSE = 4.0


def launch_overhead_seconds(codegen: CodegenInfo, spec: DeviceSpec) -> float:
    """Fixed cost of one kernel launch under this codegen."""
    overhead = spec.kernel_launch_latency_us * 1e-6
    if codegen.runtime_init:
        overhead += (
            _RUNTIME_INIT_GENERIC_S if codegen.mode == "generic" else _RUNTIME_INIT_SPMD_S
        )
    return overhead


def throughput_scale(
    codegen: CodegenInfo,
    *,
    requested_block_threads: int,
    spec: DeviceSpec,
) -> float:
    """Structural parallelism retained, in (0, 1].

    Composes the state-machine serialization and the thread-limit bug;
    both are mechanisms, so a kernel suffering both multiplies the losses.
    """
    if requested_block_threads <= 0:
        raise PerfModelError("requested_block_threads must be positive")
    scale = 1.0
    effective_block = requested_block_threads
    if codegen.effective_thread_limit is not None:
        effective_block = min(requested_block_threads, codegen.effective_thread_limit)
        scale *= effective_block / requested_block_threads
    if codegen.state_machine:
        warps_per_block = max(1, effective_block // spec.warp_size)
        scale /= warps_per_block
    return max(scale, 1e-6)


def globalization_extra_bytes(codegen: CodegenInfo, teams: int) -> float:
    """Extra global-memory traffic from heap-globalized locals."""
    if teams < 0:
        raise PerfModelError("teams must be >= 0")
    return codegen.globalized_heap_bytes * teams * _GLOBALIZED_REUSE
