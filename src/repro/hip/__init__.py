"""HIP kernel-language layer — the paper's "native" baseline on AMD.

HIP deliberately mirrors CUDA's API one-for-one (that is its pitch), so
this layer renames the CUDA layer and re-targets it at the MI250 preset
(device ordinal 1, 64-wide wavefronts).  Kernels use the same
:class:`~repro.cuda.CudaThread` façade — ``threadIdx`` etc. are spelled
identically in HIP source.

``hipLaunchKernelGGL`` is provided alongside the chevron-equivalent
:func:`launch` because HeCBench's HIP ports use both styles.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

import numpy as np

from ..cuda.builtins import FULL_MASK, CudaThread
from ..cuda.kernel import KernelFunction
from ..cuda.runtime import _TRACE_DIRECTION, _do_memcpy, _validate_peer_args
from ..errors import LaunchError
from ..gpu.device import Device, Placement, get_device, resolve_placement
from ..gpu.dim import DimLike
from ..gpu.launch import LaunchConfig, launch_kernel
from ..gpu.memory import DevicePointer, MemcpyKind, peer_copy
from ..gpu.stream import Event, Stream

__all__ = [
    "FULL_MASK",
    "HipThread",
    "kernel",
    "launch",
    "hipLaunchKernelGGL",
    "hipMalloc",
    "hipFree",
    "hipMemcpy",
    "hipMemcpyAsync",
    "hipMemcpyPeer",
    "hipMemcpyPeerAsync",
    "hipDeviceCanAccessPeer",
    "hipDeviceEnablePeerAccess",
    "hipDeviceDisablePeerAccess",
    "hipMemset",
    "hipDeviceSynchronize",
    "hipDeviceReset",
    "hipSetDevice",
    "hipGetDevice",
    "hipStreamCreate",
    "hipStreamDestroy",
    "hipStreamSynchronize",
    "hipEventCreate",
    "hipEventRecord",
    "hipEventSynchronize",
    "hipMemcpyHostToDevice",
    "hipMemcpyDeviceToHost",
    "hipMemcpyDeviceToDevice",
    "current_hip_device",
]

# HIP device code is textually CUDA device code; the façade is shared.
HipThread = CudaThread

hipMemcpyHostToDevice = MemcpyKind.HOST_TO_DEVICE
hipMemcpyDeviceToHost = MemcpyKind.DEVICE_TO_HOST
hipMemcpyDeviceToDevice = MemcpyKind.DEVICE_TO_DEVICE

_state = threading.local()
_DEFAULT_ORDINAL = 1  # the AMD MI250 preset


def current_hip_device() -> Device:
    """The calling thread's current HIP device (default: MI250)."""
    return get_device(getattr(_state, "ordinal", _DEFAULT_ORDINAL))


def hipSetDevice(device: Placement) -> None:  # noqa: N802 - HIP spelling
    """``hipSetDevice``: select this thread's current HIP device.

    Accepts an ordinal, a :class:`Device`, or ``None`` (reset to the
    default HIP ordinal) — the library-wide placement contract.
    """
    if device is None:
        _state.ordinal = _DEFAULT_ORDINAL
        return
    _state.ordinal = resolve_placement(device).ordinal


def hipGetDevice() -> int:  # noqa: N802
    """``hipGetDevice``: ordinal of the current HIP device."""
    return getattr(_state, "ordinal", _DEFAULT_ORDINAL)


def kernel(fn=None, *, sync_free: bool = False, vectorize: Optional[bool] = None):
    """``__global__`` for HIP; same semantics as :func:`repro.cuda.kernel`."""
    from ..cuda.kernel import kernel as cuda_kernel

    return cuda_kernel(fn, sync_free=sync_free, language="hip", vectorize=vectorize)


def launch(
    kern: KernelFunction,
    grid: DimLike,
    block: DimLike,
    args: Sequence = (),
    *,
    device: Placement = None,
    shared_bytes: int = 0,
    stream: Optional[Stream] = None,
    engine: Optional[str] = None,
) -> None:
    """Chevron-style launch targeting the current HIP device by default."""
    if not isinstance(kern, KernelFunction):
        raise LaunchError(f"launch() needs a @kernel-decorated function, got {kern!r}")
    device = resolve_placement(device, default=current_hip_device)
    config = LaunchConfig.create(
        grid, block, shared_bytes,
        stream=stream if stream is not None else device.default_stream,
        engine=engine,
    )
    launch_kernel(config, kern.entry, tuple(args), device, synchronous=False)


def hipLaunchKernelGGL(  # noqa: N802
    kern: KernelFunction,
    grid: DimLike,
    block: DimLike,
    shared_bytes: int,
    stream: Optional[Stream],
    *args,
) -> None:
    """HIP's macro-style launch: geometry first, then kernel arguments."""
    launch(kern, grid, block, args, shared_bytes=shared_bytes, stream=stream)


def hipMalloc(size: int) -> DevicePointer:  # noqa: N802
    """``hipMalloc``: allocate device global memory."""
    return current_hip_device().allocator.malloc(size)


def hipFree(ptr: DevicePointer) -> None:  # noqa: N802
    """``hipFree``: release device memory."""
    current_hip_device().allocator.free(ptr)


def hipMemcpy(dst, src, count: int, kind: str) -> None:  # noqa: N802
    """``hipMemcpy``: synchronous byte copy (kind selects direction)."""
    device = current_hip_device()
    device.default_stream.synchronize()
    _do_memcpy(device, dst, src, count, kind)


def hipMemcpyAsync(dst, src, count: int, kind: str, stream: Stream) -> None:  # noqa: N802
    """``hipMemcpyAsync``: enqueue a copy on a stream."""
    device = current_hip_device()
    stream.enqueue(
        lambda: _do_memcpy(device, dst, src, count, kind),
        label="hipMemcpyAsync",
        trace_cat="memcpy",
        trace_args={"bytes": int(count),
                    "direction": _TRACE_DIRECTION.get(kind, str(kind))},
    )


def hipMemcpyPeer(  # noqa: N802
    dst: DevicePointer,
    dst_device: Placement,
    src: DevicePointer,
    src_device: Placement,
    count: int,
) -> None:
    """``hipMemcpyPeer``: copy ``count`` bytes between two devices."""
    _validate_peer_args("hipMemcpyPeer", dst, dst_device, src, src_device)
    peer_copy(dst, src, count, api="hipMemcpyPeer")


def hipMemcpyPeerAsync(  # noqa: N802
    dst: DevicePointer,
    dst_device: Placement,
    src: DevicePointer,
    src_device: Placement,
    count: int,
    stream: Stream,
) -> None:
    """``hipMemcpyPeerAsync``: enqueue a peer copy on ``stream``."""
    _validate_peer_args("hipMemcpyPeerAsync", dst, dst_device, src, src_device)
    stream.enqueue(
        lambda: peer_copy(dst, src, count, api="hipMemcpyPeerAsync"),
        label="hipMemcpyPeerAsync",
        trace_cat="memcpy",
        trace_args={"bytes": int(count), "direction": "p2p",
                    "src_device": src.device_ordinal,
                    "dst_device": dst.device_ordinal},
    )


def hipDeviceCanAccessPeer(device: Placement, peer: Placement) -> bool:  # noqa: N802
    """``hipDeviceCanAccessPeer``: does a direct interconnect exist?"""
    return resolve_placement(device).can_access_peer(peer)


def hipDeviceEnablePeerAccess(peer: Placement) -> None:  # noqa: N802
    """``hipDeviceEnablePeerAccess``: map ``peer``'s memory into the
    current HIP device's address space (directional, like ROCm)."""
    current_hip_device().enable_peer_access(peer)


def hipDeviceDisablePeerAccess(peer: Placement) -> None:  # noqa: N802
    """``hipDeviceDisablePeerAccess``: unmap ``peer``'s memory."""
    current_hip_device().disable_peer_access(peer)


def hipMemset(ptr: DevicePointer, value: int, count: int) -> None:  # noqa: N802
    """``hipMemset``: fill device memory with a byte value."""
    device = current_hip_device()
    device.default_stream.synchronize()
    device.allocator.memset(ptr, value, count)


def hipDeviceSynchronize() -> None:  # noqa: N802
    """``hipDeviceSynchronize``: drain all streams of the device."""
    current_hip_device().synchronize()


def hipDeviceReset() -> None:  # noqa: N802
    """``hipDeviceReset``: destroy and re-arm the current device's context."""
    current_hip_device().reset()


def hipStreamCreate(name: str = "") -> Stream:  # noqa: N802
    """``hipStreamCreate``: new asynchronous work queue."""
    return Stream(current_hip_device(), name=name)


def hipStreamDestroy(stream: Stream) -> None:  # noqa: N802
    """``hipStreamDestroy``: drain and close a stream."""
    stream.synchronize()
    stream.close()


def hipStreamSynchronize(stream: Stream) -> None:  # noqa: N802
    """``hipStreamSynchronize``: wait for a stream to drain."""
    stream.synchronize()


def hipEventCreate(name: str = "") -> Event:  # noqa: N802
    """``hipEventCreate``: new event marker."""
    return Event(name)


def hipEventRecord(event: Event, stream: Optional[Stream] = None) -> None:  # noqa: N802
    """``hipEventRecord``: enqueue an event record on a stream."""
    (stream or current_hip_device().default_stream).record_event(event)


def hipEventSynchronize(event: Event) -> None:  # noqa: N802
    """``hipEventSynchronize``: host-wait for an event.

    A synchronization point: re-raises (and clears) a sticky error
    captured by earlier work on the stream that recorded the event.
    """
    event.synchronize()
