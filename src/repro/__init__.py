"""repro — a reproduction of *OpenMP Kernel Language Extensions for
Performance Portable GPU Codes* (Tian, Scogland, Chapman, Doerfert;
SC-W 2023) on a simulated SIMT substrate.

Layer map (bottom to top):

* :mod:`repro.gpu`      — the virtual GPU: devices, memory, warps, streams.
* :mod:`repro.cuda` / :mod:`repro.hip` — the native kernel-language layers.
* :mod:`repro.openmp`   — the classic OpenMP runtime + codegen model.
* :mod:`repro.ompx`     — **the paper's contribution**: bare regions,
  device/host APIs, multi-dim launches, ``depend(interopobj:)``, vendor
  wrappers.
* :mod:`repro.compiler` — the toolchain model (registers, binaries, codegen).
* :mod:`repro.perf`     — occupancy + roofline + overhead timing model.
* :mod:`repro.apps`     — the six evaluated applications (Figure 6).
* :mod:`repro.port`     — the CUDA -> ompx source rewriting tools.
* :mod:`repro.harness`  — regenerates Figures 6, 7 and 8.
* :mod:`repro.trace`    — nvprof/rocprof-style profiling & tracing of the
  whole stack (Chrome/Perfetto export, text summaries).
* :mod:`repro.tune`     — trace-guided autotuning with a persistent
  compiled-plan cache consulted by the launch fast path.

Execution engines
-----------------

Every front end (CUDA chevron, HIP, ``target teams``, ``ompx_bare``)
launches through :func:`repro.gpu.launch_kernel` with a config-first
signature — ``launch_kernel(LaunchConfig.create(grid, block), kernel,
args, dev)``.  Three engines execute kernels on the virtual GPU, chosen
per launch by :func:`repro.gpu.engine.select_engine`:

* ``"block-thread"`` — one cooperative OS thread per GPU thread; the
  full-SIMT reference for barriers, warp collectives and atomics.
* ``"map"`` — ``sync_free`` kernels as a sequential per-thread loop.
* ``"vector"`` / ``"wave"`` — the lane-batched
  :class:`~repro.gpu.engine.WaveVectorEngine`: straight-line kernels
  written against the portable ``select``/``load``/``store``/``loop_max``
  intrinsics run as whole NumPy arrays, either fused across blocks
  (sync-free ``"vector"`` mode) or one block per lockstep batch with real
  shared memory (barrier-only ``"wave"`` mode).  This is what makes
  paper-scale launch sizes tractable.

An explicit ``LaunchConfig(engine=...)`` hint overrides the analysis;
``vectorize=False`` on a kernel pins the legacy engines.  All engines
produce bit-identical outputs and identical
:class:`~repro.gpu.engine.KernelStats` for any kernel they can run.

The pre-1.0 kernel-first ``launch_kernel(kernel, config, ...)`` order
still works behind a ``DeprecationWarning`` shim; it will be removed in
release 1.2 (see the README's deprecation timeline).

Quickstart::

    import numpy as np
    from repro.gpu import get_device
    from repro import ompx

    dev = get_device(0)                     # the A100 preset
    n = 1 << 10
    d_a = ompx.ompx_malloc(n * 8, dev)      # §3.4 host API
    ompx.ompx_memcpy(d_a, np.arange(n, dtype=np.float64), n * 8, dev)

    @ompx.bare_kernel                        # §3.1 ompx_bare
    def scale(x, a, n):
        i = x.global_thread_id_x()           # §3.3 device API
        if i < n:
            x.array(a, n, np.float64)[i] *= 2.0

    ompx.target_teams_bare(dev, (n + 255) // 256, 256, scale, (d_a, n))
"""

# __version__ must precede the subpackage imports: repro.tune.key reads
# it at import time to stamp plan-cache toolchain versions.
__version__ = "1.0.0"

from . import apps, compiler, cuda, gpu, harness, hip, openmp, ompx, perf, port, trace, tune
from .errors import ReproError

__all__ = [
    "apps",
    "compiler",
    "cuda",
    "gpu",
    "harness",
    "hip",
    "openmp",
    "ompx",
    "perf",
    "port",
    "trace",
    "tune",
    "ReproError",
    "__version__",
]
