"""repro — a reproduction of *OpenMP Kernel Language Extensions for
Performance Portable GPU Codes* (Tian, Scogland, Chapman, Doerfert;
SC-W 2023) on a simulated SIMT substrate.

Layer map (bottom to top):

* :mod:`repro.gpu`      — the virtual GPU: devices, memory, warps, streams.
* :mod:`repro.cuda` / :mod:`repro.hip` — the native kernel-language layers.
* :mod:`repro.openmp`   — the classic OpenMP runtime + codegen model.
* :mod:`repro.ompx`     — **the paper's contribution**: bare regions,
  device/host APIs, multi-dim launches, ``depend(interopobj:)``, vendor
  wrappers.
* :mod:`repro.compiler` — the toolchain model (registers, binaries, codegen).
* :mod:`repro.perf`     — occupancy + roofline + overhead timing model.
* :mod:`repro.apps`     — the six evaluated applications (Figure 6).
* :mod:`repro.port`     — the CUDA -> ompx source rewriting tools.
* :mod:`repro.harness`  — regenerates Figures 6, 7 and 8.

Quickstart::

    import numpy as np
    from repro.gpu import get_device
    from repro import ompx

    dev = get_device(0)                     # the A100 preset
    n = 1 << 10
    d_a = ompx.ompx_malloc(n * 8, dev)      # §3.4 host API
    ompx.ompx_memcpy(d_a, np.arange(n, dtype=np.float64), n * 8, dev)

    @ompx.bare_kernel                        # §3.1 ompx_bare
    def scale(x, a, n):
        i = x.global_thread_id_x()           # §3.3 device API
        if i < n:
            x.array(a, n, np.float64)[i] *= 2.0

    ompx.target_teams_bare(dev, (n + 255) // 256, 256, scale, (d_a, n))
"""

from . import apps, compiler, cuda, gpu, harness, hip, openmp, ompx, perf, port
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "apps",
    "compiler",
    "cuda",
    "gpu",
    "harness",
    "hip",
    "openmp",
    "ompx",
    "perf",
    "port",
    "ReproError",
    "__version__",
]
