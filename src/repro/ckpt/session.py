"""Checkpoint sessions: a bounded snapshot chain with corruption fallback.

A :class:`CheckpointSession` owns one checkpoint directory and the
policy around it — how often to snapshot (``every``), how many published
snapshots to keep (``keep``), and what a resuming process may trust.
The session is deliberately ignorant of *what* is being checkpointed:
the runner hands it opaque state dicts, the session guarantees the
durability story.

Three rules make the whole stack crash-consistent:

* **Commit failures never kill the run.**  A snapshot that cannot be
  written (full disk, injected ``checkpoint_write:error``) is a
  :class:`RuntimeWarning` plus a counter — the run continues and the
  next cadence point tries again.  Checkpointing is an optimization of
  recovery, and an optimization must not introduce new failure modes.
* **Corrupt snapshots fall back, they do not fail.**  On resume, the
  newest snapshot is validated first; a corrupt one is warned about,
  counted (``ckpt_fallbacks``), and the next-older one is tried.  Only
  when the entire chain is exhausted does the run restart from step
  zero (which is exactly what it would have done without checkpoints).
* **Identity mismatches are errors.**  Resuming a chain written by a
  different run (other app/variant/params/shard-count/fault-plan) would
  silently compute garbage; that raises
  :class:`~repro.errors.CheckpointError` instead.
"""

from __future__ import annotations

import os
import warnings
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import CheckpointError, CorruptCheckpointError, ReproError
from . import format as fmt

__all__ = ["CheckpointSession"]


class CheckpointSession:
    """Policy + chain management for one checkpoint directory."""

    def __init__(
        self,
        directory: str,
        *,
        every: int = 1,
        keep: int = 3,
        on_commit: Optional[Callable[[int, str], None]] = None,
    ) -> None:
        if every < 1:
            raise CheckpointError(
                f"checkpoint_every must be >= 1, got {every}", path=directory
            )
        if keep < 1:
            raise CheckpointError(
                f"checkpoint keep must be >= 1, got {keep}", path=directory
            )
        self.directory = os.path.abspath(directory)
        if os.path.exists(self.directory) and not os.path.isdir(self.directory):
            raise CheckpointError(
                "checkpoint path exists and is not a directory",
                path=self.directory,
            )
        self.every = int(every)
        self.keep = int(keep)
        #: Test/ops hook called after each successful publication with
        #: ``(step, path)``.  Exceptions propagate — chaos tests use this
        #: to SIGKILL the process at a precise point in the chain.
        self.on_commit = on_commit
        self.stats: Dict[str, int] = {
            "writes": 0,
            "write_failures": 0,
            "fallbacks": 0,
            "resumed_step": -1,
            "steps_skipped": 0,
        }
        #: True once :meth:`begin` has opened the chain.  A re-entry on
        #: the same session (a resilient retry of the whole run body)
        #: must restore the latest snapshot even when the original call
        #: was a fresh run — the retry is a continuation, not a restart.
        self.began = False

    # --- writing ----------------------------------------------------------
    def commit(self, step: int, payload: Dict[str, Any]) -> Optional[str]:
        """Publish ``payload`` as step ``step`` and prune the chain.

        Returns the published path, or ``None`` when the write failed
        (warned + counted, never raised).
        """
        try:
            path = fmt.write_snapshot(self.directory, step, payload)
        except (ReproError, OSError) as exc:
            self.stats["write_failures"] += 1
            self._count("ckpt_write_failures")
            warnings.warn(
                f"checkpoint write for step {step} failed ({exc}); "
                "continuing without it",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        self.stats["writes"] += 1
        self._prune()
        if self.on_commit is not None:
            self.on_commit(step, path)
        return path

    def _prune(self) -> None:
        """Drop the oldest published snapshots beyond ``keep``.

        Pruning runs *after* a successful publication, so the chain
        never shrinks below its newest valid member; unlink failures are
        ignored (a stale extra snapshot is harmless).
        """
        chain = fmt.list_snapshots(self.directory)
        for _, path in chain[: max(0, len(chain) - self.keep)]:
            try:
                os.unlink(path)
            except OSError:
                pass

    # --- reading ----------------------------------------------------------
    def load_latest(self) -> Optional[Tuple[int, Dict[str, Any]]]:
        """The newest *valid* snapshot, walking back through corruption.

        Returns ``(step, payload)`` or ``None`` when no snapshot in the
        chain validates.  Corrupt members are warned about and counted,
        never raised: an unreadable chain degrades to a from-scratch run.
        """
        for step, path in reversed(fmt.list_snapshots(self.directory)):
            try:
                return fmt.read_snapshot(path)
            except CorruptCheckpointError as exc:
                self.stats["fallbacks"] += 1
                self._count("ckpt_fallbacks")
                warnings.warn(
                    f"snapshot {os.path.basename(path)} failed validation "
                    f"({exc}); falling back to an older snapshot",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return None

    def begin(
        self, identity: Dict[str, Any], *, resume: bool = False
    ) -> Optional[Dict[str, Any]]:
        """Open the chain for a run with ``identity``; maybe restore state.

        With ``resume=True``, returns the newest valid snapshot's state
        after checking that its recorded identity matches — a mismatch
        raises :class:`CheckpointError`, because those snapshots belong
        to a different run.  With ``resume=False`` (a fresh run), any
        existing chain is deleted so stale snapshots can never be
        resumed into a later, different invocation by accident.
        """
        if not resume:
            self.began = True
            for _, path in fmt.list_snapshots(self.directory):
                try:
                    os.unlink(path)
                except OSError:
                    pass
            return None
        self.began = True
        loaded = self.load_latest()
        if loaded is None:
            return None
        step, payload = loaded
        recorded = payload.get("meta", {}).get("identity")
        if recorded != identity:
            raise CheckpointError(
                "refusing to resume: checkpoint chain was written by a "
                f"different run (recorded identity {recorded!r}, this run "
                f"{identity!r})",
                path=self.directory,
            )
        self.stats["resumed_step"] = step
        self._count("ckpt_resumes")
        return payload

    # --- misc -------------------------------------------------------------
    def _count(self, name: str) -> None:
        from ..trace import get_tracer

        tracer = get_tracer()
        if tracer is not None:
            tracer.counter(name)

    def note_skipped(self, count: int) -> None:
        """Record that ``count`` completed steps were not re-executed."""
        if count:
            self.stats["steps_skipped"] += count
            from ..trace import get_tracer

            tracer = get_tracer()
            if tracer is not None:
                tracer.counter("ckpt_steps_skipped", float(count))

    def summary(self) -> str:
        """One-line human rendering of the session's counters."""
        s = self.stats
        bits = [f"writes={s['writes']}"]
        if s["write_failures"]:
            bits.append(f"write_failures={s['write_failures']}")
        if s["fallbacks"]:
            bits.append(f"fallbacks={s['fallbacks']}")
        if s["resumed_step"] >= 0:
            bits.append(f"resumed_step={s['resumed_step']}")
            bits.append(f"steps_skipped={s['steps_skipped']}")
        return f"checkpoint[{self.directory}]: " + " ".join(bits)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CheckpointSession(dir={self.directory!r}, every={self.every}, "
            f"keep={self.keep})"
        )
