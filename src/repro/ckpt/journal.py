"""The serving tier's submission journal: effectively-once re-admission.

A :class:`SubmissionJournal` is an append-only line-JSON file
(``journal.jsonl``) recording two events per app submission the
:class:`~repro.serve.KernelService` *accepted*:

* ``accepted`` — the submission cleared admission control, with enough
  of a descriptor (app identity, variant, JSON-able params, tenant, and
  the coalescing digest) to rebuild it in a fresh process;
* ``done`` — the submission's execution finished (successfully or not;
  either way the service will never run it again on its own).

A service that crashes between the two leaves an ``accepted`` line with
no matching ``done`` — exactly the submissions a restarted service must
re-admit.  :meth:`pending` returns them **deduplicated by coalescing
digest**: entries that would have coalesced onto one execution in the
original process are re-admitted as one, and the service's normal
request coalescing handles waiters — together giving effectively-once
semantics rather than at-least-once re-execution of every accepted line.

Crash-consistency is append-only discipline: every line is flushed when
written, a SIGKILL can tear at most the final line, and the reader
ignores a trailing line that does not parse.  No rewrite, no compaction
— a journal is per-service-incarnation scratch, reset with
:meth:`reset` once recovery has drained it.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, List

from ..errors import CheckpointError

__all__ = ["SubmissionJournal"]

_FILENAME = "journal.jsonl"


class SubmissionJournal:
    """Append-only accepted/done journal under one directory."""

    def __init__(self, directory: str) -> None:
        self.directory = os.path.abspath(directory)
        if os.path.exists(self.directory) and not os.path.isdir(self.directory):
            raise CheckpointError(
                "journal path exists and is not a directory",
                path=self.directory,
            )
        try:
            os.makedirs(self.directory, exist_ok=True)
        except OSError as exc:
            raise CheckpointError(
                f"cannot create journal directory: {exc}", path=self.directory
            ) from exc
        self.path = os.path.join(self.directory, _FILENAME)
        self._lock = threading.Lock()
        self._next_id = self._scan_next_id()
        self._handle = None

    def _scan_next_id(self) -> int:
        last = 0
        for entry in self._read_entries():
            last = max(last, int(entry.get("id", 0)))
        return last + 1

    def _read_entries(self) -> List[Dict[str, Any]]:
        """Every parseable line; a torn trailing line is silently dropped."""
        entries: List[Dict[str, Any]] = []
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.read().split("\n")
        except OSError:
            return entries
        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except ValueError:
                if index >= len(lines) - 2:
                    continue  # torn tail from a mid-write crash
                raise CheckpointError(
                    f"journal line {index + 1} is corrupt mid-file",
                    path=self.path,
                )
            entries.append(obj)
        return entries

    # --- writing ----------------------------------------------------------
    def _append(self, obj: Dict[str, Any]) -> None:
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(json.dumps(obj, sort_keys=True) + "\n")
            self._handle.flush()

    def record_accepted(self, descriptor: Dict[str, Any]) -> int:
        """Journal one accepted submission; returns its journal id.

        ``descriptor`` must be JSON-serializable (the service skips
        journaling for submissions it cannot describe, e.g. prebuilt
        ndarray params) and should carry a ``"key"`` — the stringified
        coalescing digest — for :meth:`pending`'s dedupe.
        """
        with self._lock:
            entry_id = self._next_id
            self._next_id += 1
        self._append({"id": entry_id, "event": "accepted", **descriptor})
        return entry_id

    def record_done(self, entry_id: int) -> None:
        """Journal that submission ``entry_id`` finished (either way)."""
        self._append({"id": int(entry_id), "event": "done"})

    # --- recovery ---------------------------------------------------------
    def pending(self, *, dedupe: bool = True) -> List[Dict[str, Any]]:
        """Accepted-but-unfinished entries, deduped by coalescing key.

        Ordered by journal id; of entries sharing a ``"key"`` only the
        first survives (they would have coalesced onto one execution).
        Keyless entries are never deduped against each other.
        ``dedupe=False`` returns every pending entry — recovery uses it
        to retire the duplicates it is *not* re-admitting.
        """
        accepted: Dict[int, Dict[str, Any]] = {}
        finished = set()
        for entry in self._read_entries():
            if entry.get("event") == "accepted":
                accepted[int(entry["id"])] = entry
            elif entry.get("event") == "done":
                finished.add(int(entry["id"]))
        seen_keys = set()
        out: List[Dict[str, Any]] = []
        for entry_id in sorted(accepted):
            if entry_id in finished:
                continue
            entry = accepted[entry_id]
            key = entry.get("key")
            if dedupe and key is not None:
                if key in seen_keys:
                    continue
                seen_keys.add(key)
            out.append(entry)
        return out

    def reset(self) -> None:
        """Truncate the journal (recovery drained, fresh incarnation)."""
        self.close()
        try:
            os.unlink(self.path)
        except OSError:
            pass
        self._next_id = 1

    def close(self) -> None:
        """Release the append handle (the file itself is kept)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SubmissionJournal({self.path!r})"
