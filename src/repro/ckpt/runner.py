"""Checkpoint-aware sharded execution: waves, cursors, deterministic resume.

:func:`run_checkpointed` is the execution strategy behind
``run(app, checkpoint_dir=...)``.  It reuses the app sharding contract
(:meth:`~repro.apps.BenchmarkApp.shard_functional_params` builds the
full problem once and slices it, so concatenating per-shard outputs in
order reproduces the single-device output bit-exactly for *any* shard
count) but executes the shards in **waves** of ``checkpoint_every``
shards, snapshotting after each wave:

* the outputs of every completed shard,
* the step index (completed-shard count), and
* the deterministic-replay cursor of the active
  :class:`~repro.faults.FaultPlan` (counters + RNG state), so a resumed
  run fires the *remaining* fault triggers exactly as the uninterrupted
  run would have.

The wave barrier is what makes the cut crash-consistent: at every
snapshot, no shard is half-run, so "resume" is simply "skip the shards
the snapshot already holds".  Resumed output is built from restored +
freshly computed shards in shard order — bit-identical to an
uninterrupted run because the shards themselves are.

The run **identity** (app, variant, params digest, shard count, fault
plan fingerprint) is recorded in every snapshot; resuming under a
different identity is a :class:`~repro.errors.CheckpointError`, never a
silent wrong answer.
"""

from __future__ import annotations

import functools
from typing import Any, Dict, Mapping, Optional

import numpy as np

from ..errors import AppError
from .session import CheckpointSession

__all__ = ["run_checkpointed", "run_identity"]


def run_identity(
    app, variant: str, params: Mapping[str, object], nshards: int
) -> Dict[str, Any]:
    """The resume-compatibility fingerprint recorded in every snapshot.

    Two runs may share a checkpoint chain only when they would compute
    the same shards in the same order: same app class, variant,
    parameter digest, shard count, and — because snapshots carry the
    fault-plan cursor — the same fault plan (seed + rules).  The
    parameter digest reuses the serving tier's structural
    :func:`~repro.serve.coalesce.digest`; parameters it cannot digest
    weaken the check to presence-only rather than blocking
    checkpointing.
    """
    from ..faults import active_plan
    from ..serve.coalesce import digest

    plan = active_plan()
    return {
        "app": (type(app).__module__, type(app).__qualname__, app.name),
        "variant": variant,
        "params": digest(params),
        "nshards": int(nshards),
        "fault_plan": None
        if plan is None
        else (plan.seed, tuple(rule.key for rule in plan.rules)),
    }


def run_checkpointed(
    app,
    variant: str,
    params: Mapping[str, object],
    pool,
    session: CheckpointSession,
    *,
    resume: bool = False,
    shards: Optional[int] = None,
):
    """Run ``app`` sharded over ``pool`` with wave checkpoints.

    ``shards`` fixes the shard count (default: ``max(len(pool), 4)``, so
    even a narrow pool gets a multi-wave chain worth resuming).  On
    resume the shard count recorded in the chain wins — it is part of
    the identity, and re-sharding differently would orphan the restored
    outputs.

    Re-entry on the *same session* (a resilient
    ``run_to_completion`` retry after a mid-run fault) always restores
    the latest snapshot, so retries replay only the unfinished tail —
    this is what turns "retry from step zero" into "retry from the last
    checkpoint".
    """
    from ..faults import active_plan
    from ..sched import gather
    from ..trace import get_tracer

    if variant == "omp":
        raise AppError(
            "the classic-OpenMP variant offloads through host mapping "
            "tables and cannot be sharded, so it cannot be checkpointed; "
            "use the ompx or native variant"
        )

    nshards = int(shards) if shards else max(len(pool), 4)
    resume = resume or session.began
    plan = active_plan()

    # Peek at the chain before computing identity: the recorded shard
    # count wins on resume (see docstring), and identity must agree with
    # it or begin() would reject every resume with a non-default pool.
    restored = None
    if resume:
        loaded = session.load_latest()
        if loaded is not None:
            recorded = loaded[1].get("meta", {}).get("identity", {})
            if isinstance(recorded, dict) and recorded.get("nshards"):
                nshards = int(recorded["nshards"])
    identity = run_identity(app, variant, params, nshards)
    restored = session.begin(identity, resume=resume)

    done: Dict[int, np.ndarray] = {}
    if restored is not None:
        state = restored["state"]
        done = {int(k): v for k, v in state["done"].items()}
        if plan is not None and state.get("fault_cursor") is not None:
            plan.restore_cursor(state["fault_cursor"])
        session.note_skipped(len(done))

    sub_params = app.shard_functional_params(params, nshards)
    # Empty chunks are dropped by repro.sched.shard, so the realized
    # shard list can be shorter than requested on tiny problems.
    nshards_real = len(sub_params)
    pending = [i for i in range(nshards_real) if i not in done]

    tracer = get_tracer()

    def payload(complete: bool) -> Dict[str, Any]:
        return {
            "meta": {
                "identity": identity,
                "nshards": nshards,
                "complete": complete,
            },
            "state": {
                "done": dict(done),
                "fault_cursor": None if plan is None else plan.snapshot_cursor(),
                "next": len(done),
            },
        }

    for start in range(0, len(pending), session.every):
        wave = pending[start : start + session.every]
        futures = [
            pool.submit_call(
                functools.partial(app.run_single, variant, sub_params[i]),
                label=f"{app.name}:shard{i}",
                shard=True,
            )
            for i in wave
        ]
        for i, result in zip(wave, gather(futures)):
            done[i] = result.output
            if tracer is not None:
                tracer.counter("ckpt_steps_executed")
        session.commit(len(done), payload(len(done) == nshards_real))

    if not pending:
        # A fully restored run re-publishes its terminal snapshot so
        # `--resume` of a finished run is idempotent (and observable:
        # zero ckpt_steps_executed, every shard counted as skipped).
        session.commit(len(done), payload(True))

    output = np.concatenate([done[i] for i in range(nshards_real)])
    from ..apps.common import FunctionalResult

    return FunctionalResult(
        variant=variant,
        output=output,
        checksum=app.result_checksum(output),
        valid=False,
    )
