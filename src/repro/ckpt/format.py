"""The crash-consistent on-disk snapshot format.

One snapshot is one file::

    ckpt-00000007.ckpt
    ├── header, one JSON line:  {"schema": 1, "step": 7,
    │                            "length": <payload bytes>,
    │                            "digest": "<sha256 of payload>"}
    └── payload: pickled {"meta": ..., "state": ...}

Durability contract (shared with the :mod:`repro.tune` plan cache):

* **Versioned schema.**  The header carries ``schema``; unknown versions
  are rejected as corrupt, never half-interpreted.
* **Atomic publication.**  Writes land in a sibling temp file in the
  *same directory* and are ``os.replace``-d into place, so a reader (or
  a resuming process after SIGKILL) never observes a half-written
  snapshot under the published name.
* **Self-validating reads.**  The payload length and a per-snapshot
  SHA-256 content digest are checked on every read; any mismatch —
  truncation, bit-rot, garbage header, unknown schema — raises
  :class:`~repro.errors.CorruptCheckpointError` with the failing stage
  named, and the session layer falls back to an older snapshot.

Both operations are fault-injection sites (``checkpoint_write`` /
``checkpoint_read``, see :mod:`repro.faults.plan`): the write site can
tear or flip bytes of the *published* file — modeling media corruption
that strikes after a perfectly atomic rename — and the read site damages
the bytes as read, leaving the disk intact.  Both emit ``ckpt:*`` trace
spans and counters when tracing is enabled.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import tempfile
import time
from typing import Any, Dict, List, Tuple

from ..errors import CheckpointError, CorruptCheckpointError
from ..faults.inject import fire as _fire

__all__ = [
    "SCHEMA_VERSION",
    "snapshot_path",
    "list_snapshots",
    "write_snapshot",
    "read_snapshot",
]

#: Bump when the on-disk layout changes; mismatched snapshots are
#: treated as corrupt (→ chain fallback), never migrated.
SCHEMA_VERSION = 1

_NAME_RE = re.compile(r"^ckpt-(\d{8})\.ckpt$")


def snapshot_path(directory: str, step: int) -> str:
    """The published filename for step ``step``'s snapshot."""
    return os.path.join(directory, f"ckpt-{step:08d}.ckpt")


def list_snapshots(directory: str) -> List[Tuple[int, str]]:
    """All published snapshots under ``directory``, oldest first.

    Only files matching the ``ckpt-<step>.ckpt`` naming scheme are
    considered; stray temp files from a crashed write are invisible here
    (and harmless — they were never published).
    """
    found: List[Tuple[int, str]] = []
    try:
        names = os.listdir(directory)
    except OSError:
        return found
    for name in names:
        m = _NAME_RE.match(name)
        if m:
            found.append((int(m.group(1)), os.path.join(directory, name)))
    found.sort()
    return found


def _tracer():
    from ..trace import get_tracer

    return get_tracer()


def write_snapshot(directory: str, step: int, payload: Dict[str, Any]) -> str:
    """Serialize ``payload`` and atomically publish it as step ``step``.

    Returns the published path.  Raises :class:`CheckpointError` for a
    directory that cannot be created/written; injected ``error`` faults
    surface as the plan's tagged error (the session layer downgrades
    commit failures to warnings).
    """
    try:
        os.makedirs(directory, exist_ok=True)
    except OSError as exc:
        raise CheckpointError(
            f"cannot create checkpoint directory: {exc}", path=directory
        ) from exc
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    header = json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "step": int(step),
            "length": len(body),
            "digest": hashlib.sha256(body).hexdigest(),
        },
        sort_keys=True,
    ).encode("ascii")
    blob = header + b"\n" + body
    path = snapshot_path(directory, step)

    tracer = _tracer()
    start = tracer.now_us() if tracer is not None else 0.0
    effects = _fire(
        "checkpoint_write", path=path, step=step, size=len(blob)
    )
    if effects.get("delay_s"):
        time.sleep(effects["delay_s"])

    # Same-directory temp file + os.replace: the snapshot appears under
    # its published name all-at-once or not at all, even across SIGKILL.
    fd, tmp_path = tempfile.mkstemp(
        prefix=f".ckpt-{step:08d}-", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise

    # Injected post-publish damage: a torn tail or flipped bytes in the
    # *published* file, modeling storage that lies after a clean rename.
    if effects.get("truncate_bytes") is not None:
        keep = max(0, min(int(effects["truncate_bytes"]), len(blob)))
        with open(path, "r+b") as handle:
            handle.truncate(keep)
    if effects.get("corrupt_bytes"):
        _flip_tail_bytes(path, int(effects["corrupt_bytes"]))

    if tracer is not None:
        tracer.add_span(
            "ckpt:write", "ckpt", "ckpt", start, tracer.now_us() - start,
            {"path": path, "step": step, "bytes": len(blob)},
        )
        tracer.counter("ckpt_writes")
        tracer.counter("ckpt_bytes_written", float(len(blob)))
    return path


def _flip_tail_bytes(path: str, count: int) -> None:
    """XOR the last ``count`` payload bytes of the file on disk."""
    size = os.path.getsize(path)
    count = max(1, min(count, size))
    with open(path, "r+b") as handle:
        handle.seek(size - count)
        tail = handle.read(count)
        handle.seek(size - count)
        handle.write(bytes(b ^ 0xFF for b in tail))


def read_snapshot(path: str) -> Tuple[int, Dict[str, Any]]:
    """Read and validate one snapshot; return ``(step, payload)``.

    Every validation failure raises
    :class:`~repro.errors.CorruptCheckpointError` naming the stage that
    failed (``missing``/``empty``/``header``/``schema``/``truncated``/
    ``digest``/``unpickle``); the session layer catches it and falls
    back along the chain.
    """
    tracer = _tracer()
    start = tracer.now_us() if tracer is not None else 0.0
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        raise CorruptCheckpointError(
            f"cannot read snapshot: {exc}", path=path, reason="missing"
        ) from exc

    effects = _fire(
        "checkpoint_read", path=path, size=len(blob)
    )
    if effects.get("delay_s"):
        time.sleep(effects["delay_s"])
    if effects.get("truncate_bytes") is not None:
        blob = blob[: max(0, min(int(effects["truncate_bytes"]), len(blob)))]
    if effects.get("corrupt_bytes"):
        count = max(1, min(int(effects["corrupt_bytes"]), len(blob) or 1))
        blob = blob[: len(blob) - count] + bytes(
            b ^ 0xFF for b in blob[len(blob) - count:]
        )

    header_bytes, sep, body = blob.partition(b"\n")
    if not sep:
        raise CorruptCheckpointError(
            "snapshot has no header line", path=path, reason="empty"
        )
    try:
        header = json.loads(header_bytes.decode("ascii"))
        schema = int(header["schema"])
        step = int(header["step"])
        length = int(header["length"])
        digest = str(header["digest"])
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
        raise CorruptCheckpointError(
            f"snapshot header is unreadable: {exc}", path=path, reason="header"
        ) from exc
    if schema != SCHEMA_VERSION:
        raise CorruptCheckpointError(
            f"snapshot schema {schema} != supported {SCHEMA_VERSION}",
            path=path, step=step, reason="schema",
        )
    if len(body) != length:
        raise CorruptCheckpointError(
            f"snapshot payload is {len(body)}B, header promised {length}B",
            path=path, step=step, reason="truncated",
        )
    actual = hashlib.sha256(body).hexdigest()
    if actual != digest:
        raise CorruptCheckpointError(
            "snapshot digest mismatch", path=path, step=step,
            reason="digest", expected_digest=digest, actual_digest=actual,
        )
    try:
        payload = pickle.loads(body)
    except Exception as exc:
        raise CorruptCheckpointError(
            f"snapshot payload does not unpickle: {exc}",
            path=path, step=step, reason="unpickle",
        ) from exc

    if tracer is not None:
        tracer.add_span(
            "ckpt:read", "ckpt", "ckpt", start, tracer.now_us() - start,
            {"path": path, "step": step, "bytes": len(blob)},
        )
        tracer.counter("ckpt_reads")
    return step, payload
