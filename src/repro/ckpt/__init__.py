"""repro.ckpt — crash-consistent checkpoint/restart with deterministic resume.

The durable-state layer under every recovery path in the stack:

* :mod:`~repro.ckpt.format` — the schema-versioned, digest-validated,
  atomically published snapshot file format (and its
  ``checkpoint_write``/``checkpoint_read`` fault-injection sites);
* :mod:`~repro.ckpt.session` — :class:`CheckpointSession`: cadence,
  bounded snapshot chains, fallback past corrupt snapshots, and the
  resume-identity check;
* :mod:`~repro.ckpt.runner` — :func:`run_checkpointed`: wave-sharded app
  execution that snapshots completed shards plus the fault-plan replay
  cursor, so a resumed run is bit-identical to an uninterrupted one;
* :mod:`~repro.ckpt.journal` — :class:`SubmissionJournal`: the serving
  tier's accepted/done journal for effectively-once re-admission.

Wired in through ``run(app, checkpoint_dir=...)`` /
``python -m repro.apps --checkpoint DIR [--resume]`` and
``KernelService(journal_dir=...)``.
"""

from .format import SCHEMA_VERSION, list_snapshots, read_snapshot, write_snapshot
from .journal import SubmissionJournal
from .runner import run_checkpointed, run_identity
from .session import CheckpointSession

__all__ = [
    "SCHEMA_VERSION",
    "CheckpointSession",
    "SubmissionJournal",
    "run_checkpointed",
    "run_identity",
    "list_snapshots",
    "read_snapshot",
    "write_snapshot",
]
